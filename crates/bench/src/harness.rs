//! Shared experiment harness: runs one benchmark through every reporting
//! architecture of Table 4.

use sunder_arch::{SunderConfig, SunderMachine};
use sunder_automata::InputView;
use sunder_baselines::ap::{ApParams, ApReportingModel};
use sunder_sim::{NullSink, Simulator};
use sunder_transform::{transform_to_rate, Rate};
use sunder_workloads::Workload;

/// Table 4 numbers for one benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Table4Row {
    /// Sunder without the FIFO strategy: region-fill flushes.
    pub sunder_flushes: u64,
    /// Sunder without FIFO: reporting overhead (slowdown ≥ 1).
    pub sunder_overhead: f64,
    /// Sunder with FIFO: residual fills.
    pub fifo_flushes: u64,
    /// Sunder with FIFO: reporting overhead.
    pub fifo_overhead: f64,
    /// The AP's reporting overhead (8-bit rate).
    pub ap_overhead: f64,
    /// AP + RAD reporting overhead.
    pub rad_overhead: f64,
}

/// Runs the four reporting architectures of Table 4 on one workload.
///
/// Sunder executes the 4-nibble (16-bit) transformed automaton on the
/// cycle-level machine; the AP models consume the byte-level report stream
/// from the functional simulator, exactly mirroring the paper's
/// methodology (Section 7.1).
///
/// # Panics
///
/// Panics if the workload's automaton cannot be transformed or placed
/// (cannot happen for the bundled benchmarks).
pub fn run_table4(workload: &Workload) -> Table4Row {
    // Sunder at the 16-bit rate, with and without FIFO.
    let strided = transform_to_rate(&workload.nfa, Rate::Nibble4).expect("transform");
    let view4 = InputView::new(&workload.input, 4, 4).expect("nibble view");

    let run_sunder = |fifo: bool| {
        let config = SunderConfig::with_rate(Rate::Nibble4).fifo(fifo);
        let mut machine = SunderMachine::new(&strided, config).expect("place");
        let stats = machine.run(&view4, &mut NullSink);
        // Two configs per benchmark: label them as separate dimensions so
        // stall attribution stays per-config in the artifact.
        if sunder_telemetry::enabled() {
            let suffix = if fifo { "fifo" } else { "flush" };
            machine.export_telemetry(&format!("{}/{suffix}", workload.benchmark.name()));
        }
        stats
    };
    let plain = run_sunder(false);
    let fifo = run_sunder(true);

    // AP / AP+RAD on the byte-level report stream.
    let view8 = InputView::new(&workload.input, 8, 1).expect("byte view");
    let run_ap = |params: ApParams| {
        let mut sim = Simulator::new(&workload.nfa);
        let mut model = ApReportingModel::new(&workload.nfa, params);
        sim.run(&view8, &mut model);
        model.stats().reporting_overhead()
    };

    Table4Row {
        sunder_flushes: plain.flushes,
        sunder_overhead: plain.reporting_overhead(),
        fifo_flushes: fifo.flushes,
        fifo_overhead: fifo.reporting_overhead(),
        ap_overhead: run_ap(ApParams::ap()),
        rad_overhead: run_ap(ApParams::ap_rad()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sunder_workloads::{Benchmark, Scale};

    #[test]
    fn quiet_benchmark_has_no_overhead_anywhere() {
        let w = Benchmark::ClamAv.build(Scale::tiny());
        let row = run_table4(&w);
        assert_eq!(row.sunder_flushes, 0);
        assert_eq!(row.sunder_overhead, 1.0);
        assert_eq!(row.ap_overhead, 1.0);
        assert_eq!(row.rad_overhead, 1.0);
    }

    #[test]
    fn snort_orders_architectures_correctly() {
        // Needs enough input volume to fill the AP's L1 buffers.
        let w = Benchmark::Snort.build(Scale::small());
        let row = run_table4(&w);
        assert!(row.sunder_overhead < row.ap_overhead);
        assert!(row.rad_overhead < row.ap_overhead);
        assert!(
            row.ap_overhead > 5.0,
            "AP must melt on Snort: {}",
            row.ap_overhead
        );
        assert!(row.fifo_overhead <= row.sunder_overhead);
        assert_eq!(row.fifo_overhead, 1.0);
    }
}
