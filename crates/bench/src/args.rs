//! Shared command-line parsing for the bench binaries.
//!
//! Every table/figure binary used to hand-roll its own `--flag value`
//! scanning; this module hoists one parser so `--workers`, `--telemetry`,
//! and `--quiet` mean the same thing everywhere. Unrecognized arguments
//! are collected in [`BenchArgs::rest`] for binaries with positional
//! inputs (e.g. `fig8`'s override ratios).
//!
//! Telemetry lifecycle: [`BenchArgs::init_telemetry`] right after parsing,
//! [`BenchArgs::finish_telemetry`] right before exiting. `--telemetry
//! PATH` (or the `SUNDER_TELEMETRY` environment variable, which the flag
//! overrides) enables span + metric recording and writes the JSON-lines
//! artifact to `PATH`; without it both calls are no-ops beyond honoring
//! `--quiet`.

use std::time::Duration;

use sunder_resilience::FaultPlan;
use sunder_workloads::Scale;

use crate::error::{BenchError, Context};
use crate::parallel::{default_workers, workers_from_args};

/// The flag set shared by the bench binaries. Individual binaries ignore
/// the fields they have no use for (e.g. the static table generators
/// never look at `workers`).
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// `--small`: force the small workload scale.
    pub small: bool,
    /// `--paper`: force the full paper workload scale.
    pub paper: bool,
    /// `--workers N` (default: available parallelism).
    pub workers: usize,
    /// `--runs N`: timing passes; binaries pick their own default.
    pub runs: Option<u32>,
    /// `--out PATH`: machine-readable output path.
    pub out: Option<String>,
    /// `--deadline-ms N`: per-job wall-clock deadline.
    pub deadline: Option<Duration>,
    /// `--fault-plan FILE`: injected faults (parsed at startup so a bad
    /// plan fails before any benchmark runs).
    pub plan: FaultPlan,
    /// `--telemetry PATH` or `SUNDER_TELEMETRY`: JSON-lines artifact path.
    pub telemetry: Option<String>,
    /// `--quiet`: suppress progress chatter on stderr.
    pub quiet: bool,
    /// `--only A,B,...`: benchmark name filter (case-insensitive).
    pub only: Vec<String>,
    /// Arguments the shared parser did not recognize, in order.
    pub rest: Vec<String>,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            small: false,
            paper: false,
            workers: default_workers(),
            runs: None,
            out: None,
            deadline: None,
            plan: FaultPlan::none(),
            telemetry: None,
            quiet: false,
            only: Vec::new(),
            rest: Vec::new(),
        }
    }
}

impl BenchArgs {
    /// Parses the process arguments plus the `SUNDER_TELEMETRY`
    /// environment fallback.
    pub fn from_env() -> Result<BenchArgs, BenchError> {
        let raw: Vec<String> = std::env::args().skip(1).collect();
        let env = std::env::var("SUNDER_TELEMETRY").ok();
        BenchArgs::parse(&raw, env.as_deref())
    }

    /// Parses an explicit argument list; `env_telemetry` is the
    /// `SUNDER_TELEMETRY` value, used only when `--telemetry` is absent.
    pub fn parse(args: &[String], env_telemetry: Option<&str>) -> Result<BenchArgs, BenchError> {
        let mut out = BenchArgs::default();
        let mut i = 0;
        while i < args.len() {
            let flag = args[i].as_str();
            match flag {
                "--small" => out.small = true,
                "--paper" => out.paper = true,
                "--quiet" => out.quiet = true,
                "--workers" | "--runs" | "--out" | "--deadline-ms" | "--fault-plan"
                | "--telemetry" | "--only" => {
                    let value = args
                        .get(i + 1)
                        .with_context(|| format!("{flag} requires a value"))?
                        .clone();
                    i += 1;
                    match flag {
                        "--workers" => {
                            out.workers = workers_from_args(&[flag, value.as_str()])
                                .map_err(BenchError::msg)?;
                        }
                        "--runs" => {
                            out.runs = Some(value.parse::<u32>().with_context(|| {
                                format!("invalid --runs value {value:?}: expected an integer")
                            })?);
                        }
                        "--out" => out.out = Some(value),
                        "--deadline-ms" => {
                            out.deadline = Some(
                                value
                                    .parse::<u64>()
                                    .map(Duration::from_millis)
                                    .with_context(|| {
                                        format!(
                                            "invalid --deadline-ms value {value:?}: \
                                             expected milliseconds"
                                        )
                                    })?,
                            );
                        }
                        "--fault-plan" => {
                            let text = std::fs::read_to_string(&value)
                                .with_context(|| format!("read fault plan {value:?}"))?;
                            out.plan = FaultPlan::from_text(&text)
                                .map_err(BenchError::msg)
                                .with_context(|| format!("parse fault plan {value:?}"))?;
                        }
                        "--telemetry" => out.telemetry = Some(value),
                        "--only" => out.only.extend(
                            value
                                .split(',')
                                .map(str::trim)
                                .filter(|s| !s.is_empty())
                                .map(String::from),
                        ),
                        _ => unreachable!(),
                    }
                }
                other => out.rest.push(other.to_string()),
            }
            i += 1;
        }
        if out.telemetry.is_none() {
            if let Some(path) = env_telemetry.filter(|p| !p.is_empty()) {
                out.telemetry = Some(path.to_string());
            }
        }
        Ok(out)
    }

    /// The workload scale for binaries that default to `--small`
    /// (`--paper` opts up). Returns the scale and its name.
    pub fn scale_small_default(&self) -> (Scale, &'static str) {
        if self.paper {
            (Scale::paper(), "paper")
        } else {
            (Scale::small(), "small")
        }
    }

    /// The workload scale for binaries that default to `--paper`
    /// (`--small` opts down). Returns the scale and its name.
    pub fn scale_paper_default(&self) -> (Scale, &'static str) {
        if self.small {
            (Scale::small(), "small")
        } else {
            (Scale::paper(), "paper")
        }
    }

    /// Starts telemetry recording when `--telemetry`/`SUNDER_TELEMETRY`
    /// asked for it, and applies `--quiet` either way.
    pub fn init_telemetry(&self) {
        sunder_telemetry::set_quiet(self.quiet);
        if self.telemetry.is_some() {
            sunder_telemetry::init(sunder_telemetry::Config::spans());
        }
    }

    /// Stops recording and writes the JSON-lines artifact, if a session
    /// is active. Safe to call when telemetry was never enabled.
    pub fn finish_telemetry(&self) -> Result<(), BenchError> {
        let Some(dump) = sunder_telemetry::finish() else {
            return Ok(());
        };
        if let Some(path) = &self.telemetry {
            dump.write_jsonl(std::path::Path::new(path))
                .with_context(|| format!("write telemetry artifact {path:?}"))?;
            sunder_telemetry::progress(&format!(
                "telemetry: {} events ({} dropped), {} metrics -> {path}",
                dump.events.len(),
                dump.dropped,
                dump.metrics.entries.len(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_are_empty() {
        let a = BenchArgs::parse(&[], None).unwrap();
        assert!(!a.small && !a.paper && !a.quiet);
        assert_eq!(a.workers, default_workers());
        assert_eq!(a.runs, None);
        assert!(a.plan.is_empty());
        assert!(a.telemetry.is_none());
        assert!(a.only.is_empty() && a.rest.is_empty());
    }

    #[test]
    fn parses_the_full_shared_flag_set() {
        let a = BenchArgs::parse(
            &argv(&[
                "--paper",
                "--workers",
                "3",
                "--runs",
                "2",
                "--out",
                "x.json",
                "--deadline-ms",
                "1500",
                "--telemetry",
                "t.jsonl",
                "--quiet",
                "--only",
                "Snort, Brill",
                "--only",
                "SPM",
            ]),
            None,
        )
        .unwrap();
        assert!(a.paper && a.quiet);
        assert_eq!(a.workers, 3);
        assert_eq!(a.runs, Some(2));
        assert_eq!(a.out.as_deref(), Some("x.json"));
        assert_eq!(a.deadline, Some(Duration::from_millis(1500)));
        assert_eq!(a.telemetry.as_deref(), Some("t.jsonl"));
        assert_eq!(a.only, ["Snort", "Brill", "SPM"]);
    }

    #[test]
    fn env_telemetry_is_a_fallback_the_flag_overrides() {
        let a = BenchArgs::parse(&[], Some("env.jsonl")).unwrap();
        assert_eq!(a.telemetry.as_deref(), Some("env.jsonl"));
        let a = BenchArgs::parse(&argv(&["--telemetry", "flag.jsonl"]), Some("env.jsonl")).unwrap();
        assert_eq!(a.telemetry.as_deref(), Some("flag.jsonl"));
        let a = BenchArgs::parse(&[], Some("")).unwrap();
        assert!(a.telemetry.is_none(), "empty env value means off");
    }

    #[test]
    fn unknown_arguments_pass_through_in_order() {
        let a = BenchArgs::parse(&argv(&["0.5", "--small", "--weird", "2.2"]), None).unwrap();
        assert!(a.small);
        assert_eq!(a.rest, ["0.5", "--weird", "2.2"]);
    }

    #[test]
    fn value_flags_without_values_are_hard_errors() {
        for flag in [
            "--workers",
            "--runs",
            "--deadline-ms",
            "--telemetry",
            "--only",
        ] {
            let e = BenchArgs::parse(&argv(&[flag]), None).unwrap_err();
            assert!(e.to_string().contains("requires a value"), "{flag}: {e}");
        }
        let e = BenchArgs::parse(&argv(&["--runs", "x"]), None).unwrap_err();
        assert!(e.to_string().contains("invalid --runs"), "{e}");
        let e = BenchArgs::parse(&argv(&["--workers", "0"]), None).unwrap_err();
        assert!(e.to_string().contains("at least 1"), "{e}");
    }

    #[test]
    fn scale_defaults_follow_the_binary_convention() {
        let a = BenchArgs::parse(&[], None).unwrap();
        assert_eq!(a.scale_small_default().1, "small");
        assert_eq!(a.scale_paper_default().1, "paper");
        let a = BenchArgs::parse(&argv(&["--paper"]), None).unwrap();
        assert_eq!(a.scale_small_default().1, "paper");
        let a = BenchArgs::parse(&argv(&["--small"]), None).unwrap();
        assert_eq!(a.scale_paper_default().1, "small");
    }
}
