//! Shared command-line parsing for the bench binaries.
//!
//! Every table/figure binary used to hand-roll its own `--flag value`
//! scanning; this module hoists one parser so `--workers`, `--telemetry`,
//! and `--quiet` mean the same thing everywhere. Unrecognized arguments
//! are collected in [`BenchArgs::rest`] for binaries with positional
//! inputs (e.g. `fig8`'s override ratios).
//!
//! Telemetry lifecycle: [`BenchArgs::init_telemetry`] right after parsing,
//! [`BenchArgs::finish_telemetry`] right before exiting. `--telemetry
//! PATH` (or the `SUNDER_TELEMETRY` environment variable, which the flag
//! overrides) enables span + metric recording and writes the JSON-lines
//! artifact to `PATH`; without it both calls are no-ops beyond honoring
//! `--quiet`.

use std::time::Duration;

use sunder_resilience::FaultPlan;
use sunder_workloads::Scale;

use crate::error::{BenchError, Context};
use crate::parallel::{default_workers, workers_from_args};

/// One `--only` selector. The flag has two modes:
///
/// * **exact** — `--only NAME[,NAME...]` or the inline `--only=NAME`:
///   case-insensitive full benchmark names;
/// * **substring** — `--only~=SUB[,SUB...]`: selects every benchmark
///   whose name contains `SUB`, case-insensitively (`--only~=dotstar`
///   picks all three Dotstar variants).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OnlyFilter {
    /// Case-insensitive exact benchmark name.
    Exact(String),
    /// Case-insensitive substring of a benchmark name.
    Substring(String),
}

impl OnlyFilter {
    /// An exact-name selector.
    pub fn exact(name: impl Into<String>) -> OnlyFilter {
        OnlyFilter::Exact(name.into())
    }

    /// A substring selector.
    pub fn substring(sub: impl Into<String>) -> OnlyFilter {
        OnlyFilter::Substring(sub.into())
    }

    /// Whether this selector picks the benchmark called `name`.
    pub fn matches(&self, name: &str) -> bool {
        match self {
            OnlyFilter::Exact(want) => name.eq_ignore_ascii_case(want),
            OnlyFilter::Substring(sub) => name
                .to_ascii_lowercase()
                .contains(&sub.to_ascii_lowercase()),
        }
    }

    /// Parses a comma-separated flag value into selectors of one mode.
    fn extend_parsed(list: &mut Vec<OnlyFilter>, value: &str, substring: bool) {
        list.extend(
            value
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(|s| {
                    if substring {
                        OnlyFilter::substring(s)
                    } else {
                        OnlyFilter::exact(s)
                    }
                }),
        );
    }
}

impl std::fmt::Display for OnlyFilter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OnlyFilter::Exact(name) => write!(f, "{name}"),
            OnlyFilter::Substring(sub) => write!(f, "~{sub}"),
        }
    }
}

/// The shared `--help` text: one summary line from the binary followed by
/// the flag set every bench binary understands.
pub fn usage(bin: &str, summary: &str) -> String {
    format!(
        "{summary}\n\n\
         Usage: cargo run -p sunder-bench --release --bin {bin} -- [FLAGS]\n\n\
         Shared flags (binaries ignore the ones they have no use for):\n\
           --small | --paper   workload scale (each binary picks its default)\n\
           --workers N         worker threads (default: available parallelism)\n\
           --runs N            timing passes\n\
           --out PATH          machine-readable output path\n\
           --deadline-ms N     per-job wall-clock deadline\n\
           --fault-plan FILE   inject the faults described in FILE\n\
           --telemetry PATH    JSON-lines telemetry artifact (or SUNDER_TELEMETRY)\n\
           --only NAMES        exact benchmark names, comma-separated,\n\
                               case-insensitive (inline form: --only=NAME)\n\
           --only~=SUB         every benchmark whose name contains SUB\n\
           --quiet             suppress progress chatter on stderr\n\
           --help, -h          print this help and exit\n"
    )
}

/// The flag set shared by the bench binaries. Individual binaries ignore
/// the fields they have no use for (e.g. the static table generators
/// never look at `workers`).
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// `--small`: force the small workload scale.
    pub small: bool,
    /// `--paper`: force the full paper workload scale.
    pub paper: bool,
    /// `--workers N` (default: available parallelism).
    pub workers: usize,
    /// `--runs N`: timing passes; binaries pick their own default.
    pub runs: Option<u32>,
    /// `--out PATH`: machine-readable output path.
    pub out: Option<String>,
    /// `--deadline-ms N`: per-job wall-clock deadline.
    pub deadline: Option<Duration>,
    /// `--fault-plan FILE`: injected faults (parsed at startup so a bad
    /// plan fails before any benchmark runs).
    pub plan: FaultPlan,
    /// `--telemetry PATH` or `SUNDER_TELEMETRY`: JSON-lines artifact path.
    pub telemetry: Option<String>,
    /// `--quiet`: suppress progress chatter on stderr.
    pub quiet: bool,
    /// `--help`/`-h`: the binary should print [`usage`] and exit 0.
    pub help: bool,
    /// `--only NAMES` / `--only=NAME` / `--only~=SUB`: benchmark filter.
    pub only: Vec<OnlyFilter>,
    /// Arguments the shared parser did not recognize, in order.
    pub rest: Vec<String>,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            small: false,
            paper: false,
            workers: default_workers(),
            runs: None,
            out: None,
            deadline: None,
            plan: FaultPlan::none(),
            telemetry: None,
            quiet: false,
            help: false,
            only: Vec::new(),
            rest: Vec::new(),
        }
    }
}

impl BenchArgs {
    /// Parses the process arguments plus the `SUNDER_TELEMETRY`
    /// environment fallback.
    pub fn from_env() -> Result<BenchArgs, BenchError> {
        let raw: Vec<String> = std::env::args().skip(1).collect();
        let env = std::env::var("SUNDER_TELEMETRY").ok();
        BenchArgs::parse(&raw, env.as_deref())
    }

    /// Parses an explicit argument list; `env_telemetry` is the
    /// `SUNDER_TELEMETRY` value, used only when `--telemetry` is absent.
    pub fn parse(args: &[String], env_telemetry: Option<&str>) -> Result<BenchArgs, BenchError> {
        let mut out = BenchArgs::default();
        let mut i = 0;
        while i < args.len() {
            let flag = args[i].as_str();
            match flag {
                "--small" => out.small = true,
                "--paper" => out.paper = true,
                "--quiet" => out.quiet = true,
                "--help" | "-h" => out.help = true,
                "--workers" | "--runs" | "--out" | "--deadline-ms" | "--fault-plan"
                | "--telemetry" | "--only" => {
                    let value = args
                        .get(i + 1)
                        .with_context(|| format!("{flag} requires a value"))?
                        .clone();
                    i += 1;
                    match flag {
                        "--workers" => {
                            out.workers = workers_from_args(&[flag, value.as_str()])
                                .map_err(BenchError::msg)?;
                        }
                        "--runs" => {
                            out.runs = Some(value.parse::<u32>().with_context(|| {
                                format!("invalid --runs value {value:?}: expected an integer")
                            })?);
                        }
                        "--out" => out.out = Some(value),
                        "--deadline-ms" => {
                            out.deadline = Some(
                                value
                                    .parse::<u64>()
                                    .map(Duration::from_millis)
                                    .with_context(|| {
                                        format!(
                                            "invalid --deadline-ms value {value:?}: \
                                             expected milliseconds"
                                        )
                                    })?,
                            );
                        }
                        "--fault-plan" => {
                            let text = std::fs::read_to_string(&value)
                                .with_context(|| format!("read fault plan {value:?}"))?;
                            out.plan = FaultPlan::from_text(&text)
                                .map_err(BenchError::msg)
                                .with_context(|| format!("parse fault plan {value:?}"))?;
                        }
                        "--telemetry" => out.telemetry = Some(value),
                        "--only" => OnlyFilter::extend_parsed(&mut out.only, &value, false),
                        _ => unreachable!(),
                    }
                }
                other => {
                    if let Some(v) = other.strip_prefix("--only~=") {
                        OnlyFilter::extend_parsed(&mut out.only, v, true);
                    } else if let Some(v) = other.strip_prefix("--only=") {
                        OnlyFilter::extend_parsed(&mut out.only, v, false);
                    } else {
                        out.rest.push(other.to_string());
                    }
                }
            }
            i += 1;
        }
        if out.telemetry.is_none() {
            if let Some(path) = env_telemetry.filter(|p| !p.is_empty()) {
                out.telemetry = Some(path.to_string());
            }
        }
        Ok(out)
    }

    /// The workload scale for binaries that default to `--small`
    /// (`--paper` opts up). Returns the scale and its name.
    pub fn scale_small_default(&self) -> (Scale, &'static str) {
        if self.paper {
            (Scale::paper(), "paper")
        } else {
            (Scale::small(), "small")
        }
    }

    /// The workload scale for binaries that default to `--paper`
    /// (`--small` opts down). Returns the scale and its name.
    pub fn scale_paper_default(&self) -> (Scale, &'static str) {
        if self.small {
            (Scale::small(), "small")
        } else {
            (Scale::paper(), "paper")
        }
    }

    /// If `--help`/`-h` was passed, prints the shared [`usage`] text
    /// (with the binary's one-line summary) and returns `true`; the
    /// binary should then exit 0 without running anything.
    pub fn print_help(&self, bin: &str, summary: &str) -> bool {
        if self.help {
            print!("{}", usage(bin, summary));
        }
        self.help
    }

    /// Starts telemetry recording when `--telemetry`/`SUNDER_TELEMETRY`
    /// asked for it, and applies `--quiet` either way.
    pub fn init_telemetry(&self) {
        sunder_telemetry::set_quiet(self.quiet);
        if self.telemetry.is_some() {
            sunder_telemetry::init(sunder_telemetry::Config::spans());
        }
    }

    /// Stops recording and writes the JSON-lines artifact, if a session
    /// is active. Safe to call when telemetry was never enabled.
    pub fn finish_telemetry(&self) -> Result<(), BenchError> {
        let Some(dump) = sunder_telemetry::finish() else {
            return Ok(());
        };
        if let Some(path) = &self.telemetry {
            dump.write_jsonl(std::path::Path::new(path))
                .with_context(|| format!("write telemetry artifact {path:?}"))?;
            sunder_telemetry::progress(&format!(
                "telemetry: {} events ({} dropped), {} metrics -> {path}",
                dump.events.len(),
                dump.dropped,
                dump.metrics.entries.len(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_are_empty() {
        let a = BenchArgs::parse(&[], None).unwrap();
        assert!(!a.small && !a.paper && !a.quiet);
        assert_eq!(a.workers, default_workers());
        assert_eq!(a.runs, None);
        assert!(a.plan.is_empty());
        assert!(a.telemetry.is_none());
        assert!(a.only.is_empty() && a.rest.is_empty());
    }

    #[test]
    fn parses_the_full_shared_flag_set() {
        let a = BenchArgs::parse(
            &argv(&[
                "--paper",
                "--workers",
                "3",
                "--runs",
                "2",
                "--out",
                "x.json",
                "--deadline-ms",
                "1500",
                "--telemetry",
                "t.jsonl",
                "--quiet",
                "--only",
                "Snort, Brill",
                "--only",
                "SPM",
            ]),
            None,
        )
        .unwrap();
        assert!(a.paper && a.quiet);
        assert_eq!(a.workers, 3);
        assert_eq!(a.runs, Some(2));
        assert_eq!(a.out.as_deref(), Some("x.json"));
        assert_eq!(a.deadline, Some(Duration::from_millis(1500)));
        assert_eq!(a.telemetry.as_deref(), Some("t.jsonl"));
        assert_eq!(
            a.only,
            [
                OnlyFilter::exact("Snort"),
                OnlyFilter::exact("Brill"),
                OnlyFilter::exact("SPM"),
            ]
        );
    }

    #[test]
    fn only_supports_exact_inline_and_substring_modes() {
        let a = BenchArgs::parse(
            &argv(&[
                "--only=Snort,Brill",
                "--only~=dotstar, ranges",
                "--only",
                "TCP",
            ]),
            None,
        )
        .unwrap();
        assert_eq!(
            a.only,
            [
                OnlyFilter::exact("Snort"),
                OnlyFilter::exact("Brill"),
                OnlyFilter::substring("dotstar"),
                OnlyFilter::substring("ranges"),
                OnlyFilter::exact("TCP"),
            ]
        );
        assert!(
            a.rest.is_empty(),
            "inline --only forms must not leak into rest"
        );

        // Matching semantics: exact is whole-name, substring is contains,
        // both case-insensitive.
        assert!(OnlyFilter::exact("snort").matches("Snort"));
        assert!(!OnlyFilter::exact("Snort").matches("Snort2"));
        assert!(OnlyFilter::substring("OTSTAR").matches("Dotstar03"));
        assert!(!OnlyFilter::substring("xyz").matches("Dotstar03"));
    }

    #[test]
    fn help_flag_is_recognized_in_both_spellings() {
        assert!(BenchArgs::parse(&argv(&["--help"]), None).unwrap().help);
        assert!(BenchArgs::parse(&argv(&["-h"]), None).unwrap().help);
        let a = BenchArgs::parse(&[], None).unwrap();
        assert!(!a.help && !a.print_help("suite", "x"));
        let text = usage("throughput", "Sharded multi-stream throughput sweep.");
        assert!(text.contains("--bin throughput"), "{text}");
        assert!(text.contains("--only~=SUB"), "{text}");
    }

    #[test]
    fn env_telemetry_is_a_fallback_the_flag_overrides() {
        let a = BenchArgs::parse(&[], Some("env.jsonl")).unwrap();
        assert_eq!(a.telemetry.as_deref(), Some("env.jsonl"));
        let a = BenchArgs::parse(&argv(&["--telemetry", "flag.jsonl"]), Some("env.jsonl")).unwrap();
        assert_eq!(a.telemetry.as_deref(), Some("flag.jsonl"));
        let a = BenchArgs::parse(&[], Some("")).unwrap();
        assert!(a.telemetry.is_none(), "empty env value means off");
    }

    #[test]
    fn unknown_arguments_pass_through_in_order() {
        let a = BenchArgs::parse(&argv(&["0.5", "--small", "--weird", "2.2"]), None).unwrap();
        assert!(a.small);
        assert_eq!(a.rest, ["0.5", "--weird", "2.2"]);
    }

    #[test]
    fn value_flags_without_values_are_hard_errors() {
        for flag in [
            "--workers",
            "--runs",
            "--deadline-ms",
            "--telemetry",
            "--only",
        ] {
            let e = BenchArgs::parse(&argv(&[flag]), None).unwrap_err();
            assert!(e.to_string().contains("requires a value"), "{flag}: {e}");
        }
        let e = BenchArgs::parse(&argv(&["--runs", "x"]), None).unwrap_err();
        assert!(e.to_string().contains("invalid --runs"), "{e}");
        let e = BenchArgs::parse(&argv(&["--workers", "0"]), None).unwrap_err();
        assert!(e.to_string().contains("at least 1"), "{e}");
    }

    #[test]
    fn scale_defaults_follow_the_binary_convention() {
        let a = BenchArgs::parse(&[], None).unwrap();
        assert_eq!(a.scale_small_default().1, "small");
        assert_eq!(a.scale_paper_default().1, "paper");
        let a = BenchArgs::parse(&argv(&["--paper"]), None).unwrap();
        assert_eq!(a.scale_small_default().1, "paper");
        let a = BenchArgs::parse(&argv(&["--small"]), None).unwrap();
        assert_eq!(a.scale_paper_default().1, "small");
    }
}
