//! Regenerates the paper's Table 5: pipeline-stage delays and operating
//! frequencies.
//!
//! Usage: `cargo run -p sunder-bench --bin table5 [--telemetry PATH]
//! [--quiet]`

use std::process::ExitCode;

use sunder_bench::args::BenchArgs;
use sunder_bench::error::{bench_main, BenchError};
use sunder_bench::table::TextTable;
use sunder_tech::PipelineTiming;

fn opt(v: Option<f64>) -> String {
    v.map(|x| format!("{x:.0} ps"))
        .unwrap_or_else(|| "-".into())
}

fn run() -> Result<u8, BenchError> {
    let args = BenchArgs::from_env()?;
    if args.print_help(
        "table5",
        "Regenerates Table 5: pipeline-stage delays and frequencies.",
    ) {
        return Ok(0);
    }
    args.init_telemetry();
    let span = sunder_telemetry::span("table5.render");
    println!("Table 5: delays and operating frequency in pipeline stages\n");
    let mut table = TextTable::new([
        "Architecture",
        "State Matching",
        "Local Switch",
        "Global Switch",
        "Max Freq (GHz)",
        "Operating Freq (GHz)",
    ]);
    for t in PipelineTiming::table5() {
        table.row([
            t.architecture.to_string(),
            opt(t.state_matching_ps),
            opt(t.local_switch_ps),
            opt(t.global_switch_ps),
            format!("{:.2}", t.max_freq_ghz),
            format!("{:.2}", t.operating_freq_ghz),
        ]);
    }
    print!("{}", table.render());
    println!("\nPaper: Sunder 4.01/3.6, Impala 5.55/5.0, CA 4.01/3.6, AP 0.133, AP@14nm 1.69");
    drop(span);
    args.finish_telemetry()?;
    Ok(0)
}

fn main() -> ExitCode {
    bench_main(run)
}
