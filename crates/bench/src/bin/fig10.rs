//! Regenerates the paper's Figure 10: performance slowdown vs. the
//! percentage of reporting cycles (1%–100%), with and without report
//! summarization, for a subarray with 12 reporting states at the 16-bit
//! rate.
//!
//! Usage: `cargo run -p sunder-bench --bin fig10 [--telemetry PATH]
//! [--quiet]`

use std::process::ExitCode;

use sunder_arch::sensitivity::{figure10, HOST_ROW_READ_CYCLES};
use sunder_arch::{SunderConfig, SunderMachine};
use sunder_automata::{InputView, Nfa, StartKind, Ste, SymbolSet};
use sunder_bench::args::BenchArgs;
use sunder_bench::error::{bench_main, BenchError, Context};
use sunder_bench::table::TextTable;
use sunder_sim::NullSink;
use sunder_transform::{transform_to_rate, Rate};

/// Builds a single always-enabled report state whose charset covers
/// `percent`% of the byte alphabet: the machine then generates a report
/// entry in that fraction of cycles.
fn hot_automaton(percent: u32) -> Nfa {
    let mut nfa = Nfa::new(8);
    let hi = (256 * percent / 100).max(1) as u16 - 1;
    nfa.add_state(
        Ste::new(SymbolSet::range(8, 0, hi))
            .start(StartKind::AllInput)
            .report(0),
    );
    nfa
}

/// Runs the machine on uniform-random bytes and returns the measured
/// slowdown, with the host drain cost matched to the analytic model.
fn measured_slowdown(percent: u32, summarize_mode: bool) -> Result<f64, BenchError> {
    let nfa = hot_automaton(percent);
    let strided = transform_to_rate(&nfa, Rate::Nibble4)
        .with_context(|| format!("nibble transform for {percent}% hot automaton"))?;
    let mut config = SunderConfig::with_rate(Rate::Nibble4);
    config.flush_cycles_per_row = HOST_ROW_READ_CYCLES as u32;
    // Uniform bytes via a fixed multiplicative generator.
    let mut x = 0x9E37_79B9u64;
    let input: Vec<u8> = (0..400_000)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) as u8
        })
        .collect();
    let view = InputView::new(&input, 4, 4).context("build 4-nibble input view")?;
    let mut machine = SunderMachine::new(&strided, config)
        .with_context(|| format!("place {percent}% hot automaton"))?;
    let stats = machine.run(&view, &mut NullSink);
    if sunder_telemetry::enabled() {
        let mode = if summarize_mode { "sum" } else { "flush" };
        machine.export_telemetry(&format!("fig10/{percent}pct/{mode}"));
    }
    Ok(if summarize_mode {
        // Summarization replaces the flush drain: per fill, 12 batches of
        // (2-cycle NOR + one summary-row transfer) instead of 192 rows.
        let per_fill_flush = config.flush_stall_cycles();
        let per_fill_summarize = 12 * (2 + HOST_ROW_READ_CYCLES);
        let adjusted = stats.stall_cycles / per_fill_flush.max(1) * per_fill_summarize;
        (stats.input_cycles + adjusted) as f64 / stats.input_cycles as f64
    } else {
        stats.reporting_overhead()
    })
}

fn run() -> Result<u8, BenchError> {
    let args = BenchArgs::from_env()?;
    if args.print_help(
        "fig10",
        "Regenerates Figure 10: slowdown vs. reporting-cycle percentage.",
    ) {
        return Ok(0);
    }
    args.init_telemetry();
    println!("Figure 10: slowdown vs. reporting-cycle percentage\n");
    let config = SunderConfig::with_rate(Rate::Nibble4);
    let percents = [1, 2, 5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100];
    let rows = figure10(&config, &percents);
    let mut table = TextTable::new([
        "Report cycles %",
        "No summarization",
        "(machine)",
        "With summarization",
        "(machine)",
    ]);
    for (p, plain, summarized) in rows {
        table.row([
            format!("{p}%"),
            format!("{plain:.2}x"),
            format!("{:.2}x", measured_slowdown(p, false)?),
            format!("{summarized:.2}x"),
            format!("{:.2}x", measured_slowdown(p, true)?),
        ]);
    }
    print!("{}", table.render());
    println!("\nAnalytic model columns 2/4; cycle-level machine measurements 3/5");
    println!("(one subarray, hot charset covering the given alphabet fraction;");
    println!("the machine consumes 2 bytes/cycle, so its per-cycle report");
    println!("fraction is 1-(1-p)^2 — the mid-range measured columns sit on the");
    println!("analytic curve evaluated at that fraction).");
    println!(
        "Paper anchors: negligible below 5%; worst case 7x without and 1.4x with summarization."
    );
    println!("(AP-style reporting reaches 46x at just 3.24% report cycles — SPM in Table 1.)");
    args.finish_telemetry()?;
    Ok(0)
}

fn main() -> ExitCode {
    bench_main(run)
}
