//! Regenerates the paper's Table 4: reporting overhead for 4-nibble
//! processing across Sunder (with/without FIFO), the AP, and AP+RAD.
//!
//! Usage: `cargo run -p sunder-bench --release --bin table4 [--small]
//! [--workers N]`
//!
//! Benchmarks run in parallel (one work item per benchmark, dynamically
//! scheduled); rows merge in benchmark order, so the output is identical
//! for any worker count.

use std::process::ExitCode;

use sunder_bench::args::BenchArgs;
use sunder_bench::error::{bench_main, BenchError};
use sunder_bench::harness::run_table4;
use sunder_bench::parallel::run_indexed;
use sunder_bench::table::TextTable;
use sunder_workloads::Benchmark;

/// The paper's Table 4 reference values: (benchmark, Sunder w/o FIFO
/// flushes, Sunder overhead, FIFO flushes, FIFO overhead, AP, AP+RAD).
const PAPER: [(&str, u64, f64, u64, f64, f64, f64); 19] = [
    ("Brill", 666, 1.04, 0, 1.0, 7.07, 2.95),
    ("Bro217", 0, 1.0, 0, 1.0, 1.6, 1.3),
    ("Dotstar03", 0, 1.0, 0, 1.0, 1.0, 1.0),
    ("Dotstar06", 0, 1.0, 0, 1.0, 1.0, 1.0),
    ("Dotstar09", 0, 1.0, 0, 1.0, 1.0, 1.0),
    ("ExactMatch", 0, 1.0, 0, 1.0, 1.0, 1.0),
    ("PowerEN", 0, 1.0, 0, 1.0, 1.1, 1.05),
    ("Protomata", 0, 1.0, 0, 1.0, 5.8, 2.32),
    ("Ranges05", 0, 1.0, 0, 1.0, 1.0, 1.0),
    ("Ranges1", 0, 1.0, 0, 1.0, 1.0, 1.0),
    ("Snort", 1, 1.01, 0, 1.0, 46.0, 9.0),
    ("TCP", 0, 1.0, 0, 1.0, 3.8, 2.5),
    ("ClamAV", 0, 1.0, 0, 1.0, 1.0, 1.0),
    ("Hamming", 0, 1.0, 0, 1.0, 1.0, 1.0),
    ("Levenshtein", 0, 1.0, 0, 1.0, 1.0, 1.0),
    ("Fermi", 0, 1.0, 0, 1.0, 2.3, 1.5),
    ("RandomForest", 0, 1.0, 0, 1.0, 1.6, 1.3),
    ("SPM", 9212, 1.06, 3870, 1.03, 9.7, 9.7),
    ("EntityResolution", 0, 1.0, 0, 1.0, 2.25, 1.8),
];

fn run() -> Result<u8, BenchError> {
    let args = BenchArgs::from_env()?;
    if args.print_help(
        "table4",
        "Regenerates Table 4: reporting overhead for 4-nibble processing.",
    ) {
        return Ok(0);
    }
    args.init_telemetry();
    let (scale, scale_name) = args.scale_paper_default();
    let workers = args.workers;
    println!("Table 4: reporting overhead for four-nibble processing ({scale_name} scale)");
    println!("(paper values in parentheses)\n");

    let mut table = TextTable::new([
        "Benchmark",
        "Sunder #Fl",
        "(p)",
        "Sunder OH",
        "(p)",
        "FIFO #Fl",
        "(p)",
        "FIFO OH",
        "(p)",
        "AP OH",
        "(p)",
        "AP+RAD OH",
        "(p)",
    ]);

    let rows = run_indexed(&Benchmark::ALL, workers, |_, bench| {
        let _span = sunder_telemetry::span("table4.benchmark").field("bench", bench.name());
        run_table4(&bench.build(scale))
    });

    let mut sums = [0.0f64; 4]; // sunder, fifo, ap, rad
    for ((bench, paper), row) in Benchmark::ALL.iter().zip(PAPER.iter()).zip(rows) {
        sums[0] += row.sunder_overhead;
        sums[1] += row.fifo_overhead;
        sums[2] += row.ap_overhead;
        sums[3] += row.rad_overhead;
        table.row([
            bench.name().to_string(),
            format!("{}", row.sunder_flushes),
            format!("{}", paper.1),
            format!("{:.2}x", row.sunder_overhead),
            format!("{:.2}x", paper.2),
            format!("{}", row.fifo_flushes),
            format!("{}", paper.3),
            format!("{:.2}x", row.fifo_overhead),
            format!("{:.2}x", paper.4),
            format!("{:.2}x", row.ap_overhead),
            format!("{:.2}x", paper.5),
            format!("{:.2}x", row.rad_overhead),
            format!("{:.2}x", paper.6),
        ]);
    }
    let n = Benchmark::ALL.len() as f64;
    table.row([
        "Average".to_string(),
        "-".to_string(),
        "-".to_string(),
        format!("{:.2}x", sums[0] / n),
        "1.00x".to_string(),
        "-".to_string(),
        "-".to_string(),
        format!("{:.2}x", sums[1] / n),
        "1.00x".to_string(),
        format!("{:.2}x", sums[2] / n),
        "4.69x".to_string(),
        format!("{:.2}x", sums[3] / n),
        "2.23x".to_string(),
    ]);
    print!("{}", table.render());
    println!(
        "\nAverages feed Figure 8: sunder={:.3} ap={:.3} rad={:.3}",
        sums[0] / n,
        sums[2] / n,
        sums[3] / n
    );
    args.finish_telemetry()?;
    Ok(0)
}

fn main() -> ExitCode {
    bench_main(run)
}
