//! Hybrid accelerator/CPU processing à la Liu et al. (MICRO '18), and the
//! paper's Section 1 claim that Sunder's reporting architecture "is
//! complementary to their technique and can significantly improve
//! reporting efficiency when larger intermediate reports are generated".
//!
//! Method: rule sets whose *prefixes* match traffic frequently but whose
//! tails almost never complete (the common IDS shape). Profiling a
//! training prefix finds the tails cold; the hybrid split moves them to
//! the CPU and turns the warm frontier states into *intermediate
//! reporters* — which then fire at the prefix-match rate, a far heavier
//! reporting load than the application's own matches. Buffer-based
//! reporting (the AP) melts under that load; Sunder's in-place regions
//! absorb it.
//!
//! Usage: `cargo run -p sunder-bench --release --bin hybrid
//! [--telemetry PATH] [--quiet]`

use std::process::ExitCode;

use sunder_arch::{SunderConfig, SunderMachine};
use sunder_automata::{InputView, Nfa, StartKind, Ste, SymbolSet};
use sunder_baselines::ap::{ApParams, ApReportingModel};
use sunder_bench::args::BenchArgs;
use sunder_bench::error::{bench_main, BenchError};
use sunder_bench::table::TextTable;
use sunder_sim::{hybrid_split, ActivationProfileSink, CountSink, NullSink, Simulator};
use sunder_transform::{transform_to_rate, Rate};

const INTERMEDIATE_BASE: u32 = 1_000_000;
const INPUT_LEN: usize = 200_000;
const TRAIN_LEN: usize = 20_000;
const PATTERNS: usize = 24;

/// Deterministic pseudo-random byte in the printable band.
fn filler(x: &mut u64) -> u8 {
    *x = x
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    0x20 + ((*x >> 33) % 95) as u8
}

/// Builds `PATTERNS` rules of the IDS shape: two wide-class prefix states
/// (`density` fraction of the printable band each) followed by a six-byte
/// rare tail, reporting at the end.
fn warm_workload(density: f64) -> (Nfa, Vec<u8>) {
    let span = (95.0 * density).max(1.0) as u16;
    let mut nfa = Nfa::new(8);
    let mut tails = Vec::new();
    for p in 0..PATTERNS as u16 {
        // Stagger the class windows so patterns are not identical.
        let lo = 0x20 + (p * 3) % (95 - span);
        let c0 = nfa
            .add_state(Ste::new(SymbolSet::range(8, lo, lo + span - 1)).start(StartKind::AllInput));
        let c1 = nfa.add_state(Ste::new(SymbolSet::range(8, lo, lo + span - 1)));
        nfa.add_edge(c0, c1);
        let mut prev = c1;
        let tail: Vec<u8> = (0..6).map(|i| 0xE0 + ((p as u8 + i) % 16)).collect();
        for (i, &b) in tail.iter().enumerate() {
            let mut ste = Ste::new(SymbolSet::singleton(8, u16::from(b)));
            if i == 5 {
                ste = ste.report(u32::from(p));
            }
            let s = nfa.add_state(ste);
            nfa.add_edge(prev, s);
            prev = s;
        }
        tails.push((lo, tail));
    }
    // Input: random printable bytes; a few full matches planted past the
    // training prefix.
    let mut x = 7u64;
    let mut input: Vec<u8> = (0..INPUT_LEN).map(|_| filler(&mut x)).collect();
    for (k, (lo, tail)) in tails.iter().enumerate().take(6) {
        let at = TRAIN_LEN + 10_000 + k * 20_000;
        input[at] = *lo as u8;
        input[at + 1] = *lo as u8;
        input[at + 2..at + 8].copy_from_slice(tail);
    }
    (nfa, input)
}

fn run() -> Result<u8, BenchError> {
    let args = BenchArgs::from_env()?;
    if args.print_help("hybrid", "Hybrid accelerator/CPU processing comparison.") {
        return Ok(0);
    }
    args.init_telemetry();
    println!("Hybrid (Liu et al.) split: intermediate reporting pressure\n");
    let mut table = TextTable::new([
        "Prefix density",
        "States",
        "Resident",
        "Frontier",
        "App reports",
        "w/ intermediate",
        "AP",
        "AP (hybrid)",
        "Sunder",
        "Sunder (hybrid)",
    ]);

    for density in [0.05, 0.15, 0.30] {
        let _span =
            sunder_telemetry::span("hybrid.density").field("density", format!("{density:.2}"));
        let (nfa, input) = warm_workload(density);

        // Profile on the training prefix (no tail ever completes there).
        let mut sim = Simulator::new(&nfa);
        let mut profile = ActivationProfileSink::new(nfa.num_states());
        sim.run(
            &InputView::new(&input[..TRAIN_LEN], 8, 1).expect("view"),
            &mut profile,
        );
        let split = hybrid_split(&nfa, &profile, INTERMEDIATE_BASE);

        let count = |nfa: &Nfa| {
            let mut sim = Simulator::new(nfa);
            let mut sink = CountSink::new();
            sim.run(&InputView::new(&input, 8, 1).expect("view"), &mut sink);
            sink
        };
        let base_counts = count(&nfa);
        let hybrid_counts = count(&split.accelerator);

        let ap_overhead = |nfa: &Nfa| {
            let mut sim = Simulator::new(nfa);
            let mut model = ApReportingModel::new(nfa, ApParams::ap());
            sim.run(&InputView::new(&input, 8, 1).expect("view"), &mut model);
            model.stats().reporting_overhead()
        };
        let sunder_overhead = |nfa: &Nfa, label: &str| {
            let strided = transform_to_rate(nfa, Rate::Nibble4).expect("transform");
            let config = SunderConfig::with_rate(Rate::Nibble4).fifo(true);
            let mut machine = SunderMachine::new(&strided, config).expect("place");
            let view = InputView::new(&input, 4, 4).expect("view");
            let stats = machine.run(&view, &mut NullSink);
            if sunder_telemetry::enabled() {
                machine.export_telemetry(&format!("hybrid/{:.0}pct/{label}", density * 100.0));
            }
            stats.reporting_overhead()
        };

        table.row([
            format!("{:.0}%", density * 100.0),
            format!("{}", nfa.num_states()),
            format!("{}", split.accelerator.num_states()),
            format!("{}", split.frontier_states),
            format!("{}", base_counts.reports),
            format!("{}", hybrid_counts.reports),
            format!("{:.2}x", ap_overhead(&nfa)),
            format!("{:.2}x", ap_overhead(&split.accelerator)),
            format!("{:.3}x", sunder_overhead(&nfa, "base")),
            format!("{:.3}x", sunder_overhead(&split.accelerator, "split")),
        ]);
    }
    print!("{}", table.render());
    println!("\nThe split shrinks the resident automaton ~4x but the warm frontier");
    println!("now *reports* at the prefix-match rate: intermediate volume grows");
    println!("orders of magnitude beyond the application's own matches. The AP's");
    println!("buffers pay for every vector; Sunder's in-place regions absorb it —");
    println!("the complementarity claimed in the paper's Section 1.");
    args.finish_telemetry()?;
    Ok(0)
}

fn main() -> ExitCode {
    bench_main(run)
}
