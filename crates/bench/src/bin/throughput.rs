//! Sharded multi-stream throughput sweep: splits each suite workload
//! into N independent streams, runs them through the `sunder-shard`
//! batch service across a shards × workers grid, verifies every point
//! against the monolithic trace (the sharded-vs-monolithic equality
//! gate), and writes `BENCH_throughput.json`.
//!
//! Usage: `cargo run -p sunder-bench --release --bin throughput --
//! [--small | --paper] [--streams N] [--shards A,B,...]
//! [--sweep-workers A,B,...] [--config NAME] [--wall-floor X|off]
//! [--runs N] [--out PATH] [--only NAMES | --only~=SUB]
//! [--telemetry PATH] [--scrape-hz N] [--quiet]`
//!
//! `--scrape-hz N` runs a concurrent thread taking a metrics snapshot
//! and rendering the Prometheus exposition N times a second for the
//! whole sweep — the in-process cost a `/metrics` scraper imposes on a
//! live daemon. CI compares `mbps_wall` with and without it to gate
//! scrape overhead.
//!
//! Defaults: small scale, 8 streams, shards 1,4,8, workers 1,2,4,8,
//! nibble pipeline, adaptive engine, wall floor 0.85.
//!
//! The gated metric is `mbps_wall`: per benchmark, the observed
//! wall-clock speedup of the widest point (max workers) over the
//! 1-worker point must be at least the floor. On single-core hosts this
//! defends against scheduling-overhead regressions; `--wall-floor off`
//! disables the gate. `mbps_modeled` (measured per-stream costs
//! list-scheduled over W workers) is reported for reference only.
//!
//! Exit codes: 0 all gates passed, 1 a trace-equality or wall-clock
//! gate failed, 2 usage or I/O error.

use std::process::ExitCode;

use sunder_bench::args::BenchArgs;
use sunder_bench::error::{bench_main, BenchError, Context};
use sunder_bench::throughput::{render_json, render_table, run_throughput, ThroughputOptions};
use sunder_oracle::PipelineConfig;
use sunder_telemetry::progress;

fn parse_usize_list(value: &str, flag: &str) -> Result<Vec<usize>, BenchError> {
    let list: Result<Vec<usize>, _> = value
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::parse::<usize>)
        .collect();
    let list =
        list.with_context(|| format!("invalid {flag} value {value:?}: expected integers"))?;
    if list.is_empty() {
        return Err(BenchError::msg(format!(
            "{flag} requires at least one value"
        )));
    }
    Ok(list)
}

fn parse_config(name: &str) -> Result<PipelineConfig, BenchError> {
    PipelineConfig::ALL
        .into_iter()
        .find(|c| c.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            BenchError::msg(format!(
                "unknown --config {name:?}: expected identity, nibble, stride2, or stride4"
            ))
        })
}

fn run() -> Result<u8, BenchError> {
    let args = BenchArgs::from_env()?;
    if args.print_help(
        "throughput",
        "Sharded multi-stream throughput sweep gated on trace equality and\n\
         wall-clock speedup. Extra flags: --streams N, --shards A,B,...,\n\
         --sweep-workers A,B,..., --config identity|nibble|stride2|stride4,\n\
         --wall-floor X|off (default 0.85), --scrape-hz N (concurrent\n\
         snapshot+exposition renders, for the scrape-overhead gate).",
    ) {
        return Ok(0);
    }
    args.init_telemetry();
    let (scale, scale_name) = args.scale_small_default();

    let mut opts = ThroughputOptions {
        scale,
        scale_name: scale_name.to_string(),
        runs: args.runs.unwrap_or(1),
        only: args.only.clone(),
        wall_floor: Some(0.85),
        ..ThroughputOptions::default()
    };
    let mut scrape_hz: u32 = 0;
    let mut rest = args.rest.iter();
    while let Some(flag) = rest.next() {
        let mut value = |flag: &str| {
            rest.next()
                .cloned()
                .with_context(|| format!("{flag} requires a value"))
        };
        match flag.as_str() {
            "--streams" => {
                let v = value("--streams")?;
                opts.streams = v
                    .parse()
                    .with_context(|| format!("invalid --streams value {v:?}"))?;
            }
            "--shards" => opts.shard_counts = parse_usize_list(&value("--shards")?, "--shards")?,
            "--sweep-workers" => {
                opts.worker_counts =
                    parse_usize_list(&value("--sweep-workers")?, "--sweep-workers")?;
            }
            "--config" => opts.config = parse_config(&value("--config")?)?,
            "--scrape-hz" => {
                let v = value("--scrape-hz")?;
                scrape_hz = v
                    .parse()
                    .with_context(|| format!("invalid --scrape-hz value {v:?}"))?;
            }
            "--wall-floor" => {
                let v = value("--wall-floor")?;
                opts.wall_floor = if v.eq_ignore_ascii_case("off") {
                    None
                } else {
                    Some(
                        v.parse()
                            .with_context(|| format!("invalid --wall-floor value {v:?}"))?,
                    )
                };
            }
            other => {
                return Err(BenchError::msg(format!(
                    "unknown argument {other:?} (see --help)"
                )));
            }
        }
    }

    let out_path = args.out.as_deref().unwrap_or("BENCH_throughput.json");
    progress(&format!(
        "Throughput sweep: {} streams x shards {:?} x workers {:?} ({} pipeline, {scale_name} scale)",
        opts.streams, opts.shard_counts, opts.worker_counts, opts.config.name(),
    ));

    // The simulated scraper: snapshot + render at the requested rate on
    // its own thread, exactly the work a /metrics request costs the
    // serving process (minus the socket).
    let scrape_stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let scraper = (scrape_hz > 0).then(|| {
        let stop = std::sync::Arc::clone(&scrape_stop);
        let period = std::time::Duration::from_secs_f64(1.0 / f64::from(scrape_hz));
        std::thread::spawn(move || {
            let mut scrapes = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Acquire) {
                let snap = sunder_telemetry::snapshot();
                std::hint::black_box(sunder_telemetry::render_prometheus(&snap));
                scrapes += 1;
                std::thread::sleep(period);
            }
            scrapes
        })
    });

    let report = run_throughput(&opts).map_err(BenchError::msg)?;

    scrape_stop.store(true, std::sync::atomic::Ordering::Release);
    if let Some(handle) = scraper {
        let scrapes = handle.join().expect("scraper thread panicked");
        progress(&format!(
            "Concurrent scraper: {scrapes} exposition renders at {scrape_hz} Hz"
        ));
    }
    print!("{}", render_table(&report));
    std::fs::write(out_path, render_json(&report))
        .with_context(|| format!("write JSON summary {out_path:?}"))?;
    progress(&format!("Machine-readable summary written to {out_path}"));

    if !report.all_traces_equal() {
        eprintln!("ERROR: a sharded run diverged from its monolithic trace");
    }
    if !report.wall_gate_ok() {
        eprintln!(
            "ERROR: wall-clock speedup {:?} fell below the floor {:?}",
            report.min_speedup_wall(),
            report.wall_floor
        );
    }
    args.finish_telemetry()?;
    Ok(report.exit_code())
}

fn main() -> ExitCode {
    bench_main(run)
}
