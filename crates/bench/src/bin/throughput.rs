//! Sharded multi-stream throughput sweep: splits each suite workload
//! into N independent streams, runs them through the `sunder-shard`
//! batch service across a shards × workers grid, verifies every point
//! against the monolithic trace (the sharded-vs-monolithic equality
//! gate), and writes `BENCH_throughput.json`.
//!
//! Usage: `cargo run -p sunder-bench --release --bin throughput --
//! [--small | --paper] [--streams N] [--shards A,B,...]
//! [--sweep-workers A,B,...] [--config NAME] [--runs N] [--out PATH]
//! [--only NAMES | --only~=SUB] [--telemetry PATH] [--quiet]`
//!
//! Defaults: small scale, 8 streams, shards 1,4,8, workers 1,2,4,8,
//! nibble pipeline, adaptive engine. The headline `mbps_modeled` figures
//! come from measured per-stream costs list-scheduled over W workers
//! (see `bench::throughput` docs — the CI container is single-core);
//! `mbps_wall` sits next to them for multi-core hosts.
//!
//! Exit codes: 0 all gates passed, 1 a trace-equality gate failed,
//! 2 usage or I/O error.

use std::process::ExitCode;

use sunder_bench::args::BenchArgs;
use sunder_bench::error::{bench_main, BenchError, Context};
use sunder_bench::throughput::{render_json, render_table, run_throughput, ThroughputOptions};
use sunder_oracle::PipelineConfig;
use sunder_telemetry::progress;

fn parse_usize_list(value: &str, flag: &str) -> Result<Vec<usize>, BenchError> {
    let list: Result<Vec<usize>, _> = value
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::parse::<usize>)
        .collect();
    let list =
        list.with_context(|| format!("invalid {flag} value {value:?}: expected integers"))?;
    if list.is_empty() {
        return Err(BenchError::msg(format!(
            "{flag} requires at least one value"
        )));
    }
    Ok(list)
}

fn parse_config(name: &str) -> Result<PipelineConfig, BenchError> {
    PipelineConfig::ALL
        .into_iter()
        .find(|c| c.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            BenchError::msg(format!(
                "unknown --config {name:?}: expected identity, nibble, stride2, or stride4"
            ))
        })
}

fn run() -> Result<u8, BenchError> {
    let args = BenchArgs::from_env()?;
    if args.print_help(
        "throughput",
        "Sharded multi-stream throughput sweep with a trace-equality gate.\n\
         Extra flags: --streams N, --shards A,B,..., --sweep-workers A,B,...,\n\
         --config identity|nibble|stride2|stride4.",
    ) {
        return Ok(0);
    }
    args.init_telemetry();
    let (scale, scale_name) = args.scale_small_default();

    let mut opts = ThroughputOptions {
        scale,
        scale_name: scale_name.to_string(),
        runs: args.runs.unwrap_or(1),
        only: args.only.clone(),
        ..ThroughputOptions::default()
    };
    let mut rest = args.rest.iter();
    while let Some(flag) = rest.next() {
        let mut value = |flag: &str| {
            rest.next()
                .cloned()
                .with_context(|| format!("{flag} requires a value"))
        };
        match flag.as_str() {
            "--streams" => {
                let v = value("--streams")?;
                opts.streams = v
                    .parse()
                    .with_context(|| format!("invalid --streams value {v:?}"))?;
            }
            "--shards" => opts.shard_counts = parse_usize_list(&value("--shards")?, "--shards")?,
            "--sweep-workers" => {
                opts.worker_counts =
                    parse_usize_list(&value("--sweep-workers")?, "--sweep-workers")?;
            }
            "--config" => opts.config = parse_config(&value("--config")?)?,
            other => {
                return Err(BenchError::msg(format!(
                    "unknown argument {other:?} (see --help)"
                )));
            }
        }
    }

    let out_path = args.out.as_deref().unwrap_or("BENCH_throughput.json");
    progress(&format!(
        "Throughput sweep: {} streams x shards {:?} x workers {:?} ({} pipeline, {scale_name} scale)",
        opts.streams, opts.shard_counts, opts.worker_counts, opts.config.name(),
    ));

    let report = run_throughput(&opts).map_err(BenchError::msg)?;
    print!("{}", render_table(&report));
    std::fs::write(out_path, render_json(&report))
        .with_context(|| format!("write JSON summary {out_path:?}"))?;
    progress(&format!("Machine-readable summary written to {out_path}"));

    if !report.all_traces_equal() {
        eprintln!("ERROR: a sharded run diverged from its monolithic trace");
    }
    args.finish_telemetry()?;
    Ok(report.exit_code())
}

fn main() -> ExitCode {
    bench_main(run)
}
