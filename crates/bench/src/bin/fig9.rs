//! Regenerates the paper's Figure 9: area for 32K STEs, decomposed into
//! state matching, interconnect, and reporting.
//!
//! Usage: `cargo run -p sunder-bench --bin fig9 [--telemetry PATH]
//! [--quiet]`

use std::process::ExitCode;

use sunder_bench::args::BenchArgs;
use sunder_bench::error::{bench_main, BenchError};
use sunder_bench::table::TextTable;
use sunder_tech::area::{ap_buffer_bits_per_report_ste, report_buffer_bits_per_report_ste};
use sunder_tech::{Architecture, AreaBreakdown};

const STES: usize = 32 * 1024;

fn run() -> Result<u8, BenchError> {
    let args = BenchArgs::from_env()?;
    if args.print_help(
        "fig9",
        "Regenerates Figure 9: area decomposition for 32K STEs.",
    ) {
        return Ok(0);
    }
    args.init_telemetry();
    let span = sunder_telemetry::span("fig9.render");
    println!("Figure 9: area overhead for 32K STEs (mm^2)\n");
    let mut table = TextTable::new([
        "Architecture",
        "Matching",
        "Interconnect",
        "Reporting",
        "Total",
        "vs Sunder",
    ]);
    let sunder_total = AreaBreakdown::of(Architecture::Sunder).total_mm2_for(STES);
    for b in AreaBreakdown::figure9() {
        let scale = STES as f64 / 256.0 / 1e6;
        table.row([
            b.architecture.to_string(),
            format!("{:.2}", b.matching_um2 * scale),
            format!("{:.2}", b.interconnect_um2 * scale),
            format!("{:.2}", b.reporting_um2 * scale),
            format!("{:.2}", b.total_mm2_for(STES)),
            format!("{:.2}x", b.total_mm2_for(STES) / sunder_total),
        ]);
    }
    print!("{}", table.render());
    println!("\nPaper ratios: AP 2.1x, Impala 1.6x, CA 1.5x Sunder's area.");
    println!("Sunder reporting share: 2% of the PU (paper: \"less than 2% hardware overhead\").");

    // The Section 1 buffer-capacity claim.
    let sunder_bits = report_buffer_bits_per_report_ste(64, 12);
    let ap_bits = ap_buffer_bits_per_report_ste();
    println!(
        "\nReport buffer per reporting STE: Sunder {:.0} b vs AP {:.0} b = {:.1}x (paper: ~9x)",
        sunder_bits,
        ap_bits,
        sunder_bits / ap_bits
    );
    drop(span);
    args.finish_telemetry()?;
    Ok(0)
}

fn main() -> ExitCode {
    bench_main(run)
}
