//! The software baseline behind the paper's motivation (Section 1):
//! "pattern matching is a memory-bound task, and off-the-shelf von Neumann
//! architectures struggle". Measures, for scaled benchmark rule sets:
//!
//! * DFA subset-construction blowup (the space cost of determinization);
//! * software scan throughput — dense-table DFA and frontier NFA — on this
//!   host;
//! * Sunder's modeled line-rate for contrast.
//!
//! Usage: `cargo run -p sunder-bench --release --bin software
//! [--telemetry PATH] [--quiet]`

use std::process::ExitCode;
use std::time::Instant;

use sunder_automata::dfa::Dfa;
use sunder_automata::InputView;
use sunder_bench::args::BenchArgs;
use sunder_bench::error::{bench_main, BenchError};
use sunder_bench::table::TextTable;
use sunder_sim::{NullSink, Simulator};
use sunder_tech::{Architecture, Throughput};
use sunder_workloads::{Benchmark, Scale};

fn mbps(bytes: usize, secs: f64) -> f64 {
    bytes as f64 / 1e6 / secs
}

fn run() -> Result<u8, BenchError> {
    let args = BenchArgs::from_env()?;
    if args.print_help(
        "software",
        "Software baseline: memory-bound pattern matching on a CPU.",
    ) {
        return Ok(0);
    }
    args.init_telemetry();
    println!("Software baseline: DFA blowup and scan throughput\n");
    let scale = Scale {
        state_fraction: 0.02,
        input_len: 1 << 20,
    };
    let budget = 200_000;

    let mut table = TextTable::new([
        "Benchmark",
        "NFA states",
        "DFA states",
        "NFA sim MB/s",
        "DFA scan MB/s",
        "Sunder model MB/s",
    ]);
    for bench in [
        Benchmark::ExactMatch,
        Benchmark::Ranges05,
        Benchmark::Bro217,
        Benchmark::Dotstar06,
        Benchmark::Snort,
        Benchmark::Brill,
    ] {
        let _span = sunder_telemetry::span("software.benchmark").field("bench", bench.name());
        let w = bench.build(scale);

        // NFA software throughput.
        let view = InputView::new(&w.input, 8, 1).expect("view");
        let t0 = Instant::now();
        let mut sim = Simulator::new(&w.nfa);
        sim.run(&view, &mut NullSink);
        let nfa_mbps = mbps(w.input.len(), t0.elapsed().as_secs_f64());

        // DFA: blowup then throughput if it fits the budget.
        let (dfa_states, dfa_mbps) = match Dfa::determinize(&w.nfa, budget) {
            Ok(dfa) => {
                let t0 = Instant::now();
                let hits = dfa.scan(&w.input).expect("scan");
                let el = t0.elapsed().as_secs_f64();
                std::hint::black_box(hits.len());
                (
                    format!("{}", dfa.num_states()),
                    format!("{:.0}", mbps(w.input.len(), el)),
                )
            }
            Err(b) => (format!(">{} (blowup)", b.states_reached), "-".to_string()),
        };

        // Sunder's modeled line rate: 3.6 GHz × 2 bytes/cycle.
        let sunder_mbps = Throughput::kernel_gbps(Architecture::Sunder) / 8.0 * 1000.0;

        table.row([
            bench.name().to_string(),
            format!("{}", w.nfa.num_states()),
            dfa_states,
            format!("{nfa_mbps:.0}"),
            dfa_mbps,
            format!("{sunder_mbps:.0}"),
        ]);
    }
    print!("{}", table.render());
    println!("\nDFAs avoid the NFA's active-set work but blow up on wildcard-heavy");
    println!("sets (Snort, Brill); the in-memory design keeps NFA compactness at");
    println!("deterministic line rate (prior work: the AP beats CPUs/GPUs by >10x,");
    println!("and CA beats the AP by another order of magnitude — Section 8).");
    args.finish_telemetry()?;
    Ok(0)
}

fn main() -> ExitCode {
    bench_main(run)
}
