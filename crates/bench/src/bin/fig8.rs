//! Regenerates the paper's Figure 8: end-to-end throughput of Sunder vs.
//! Impala, Cache Automaton, and the AP, under AP-style and AP+RAD
//! reporting for the baselines.
//!
//! By default the paper's average reporting overheads are used (Sunder
//! 1.0×, AP-style 4.69×, RAD 2.23×). Pass the averages printed by the
//! `table4` binary to use measured values:
//!
//! `cargo run -p sunder-bench --release --bin fig8 [sunder ap rad]
//! [--telemetry PATH] [--quiet]`

use std::process::ExitCode;

use sunder_bench::args::BenchArgs;
use sunder_bench::error::{bench_main, BenchError};
use sunder_bench::table::TextTable;
use sunder_tech::throughput::{figure8, Throughput};

fn run() -> Result<u8, BenchError> {
    let args = BenchArgs::from_env()?;
    if args.print_help(
        "fig8",
        "Regenerates Figure 8: end-to-end throughput vs. prior accelerators.",
    ) {
        return Ok(0);
    }
    args.init_telemetry();
    let overheads: Vec<f64> = args.rest.iter().filter_map(|a| a.parse().ok()).collect();
    let (sunder_oh, ap_oh, rad_oh) = match overheads.as_slice() {
        [s, a, r] => (*s, *a, *r),
        _ => (1.0, 4.69, 2.23),
    };
    println!(
        "Figure 8: throughput (Gbps); overheads: sunder={sunder_oh:.2}x ap-style={ap_oh:.2}x rad={rad_oh:.2}x\n"
    );

    for (label, baseline_oh) in [("AP-style reporting", ap_oh), ("AP+RAD reporting", rad_oh)] {
        let _span = sunder_telemetry::span("fig8.reporting_model").field("model", label);
        println!("-- {label} --");
        let rows = figure8(sunder_oh, baseline_oh);
        let sunder = rows[0].gbps;
        let mut table = TextTable::new([
            "Architecture",
            "Kernel Gbps",
            "End-to-end Gbps",
            "Sunder speedup",
        ]);
        for t in &rows {
            table.row([
                t.architecture.to_string(),
                format!("{:.1}", Throughput::kernel_gbps(t.architecture)),
                format!("{:.2}", t.gbps),
                format!("{:.1}x", sunder / t.gbps),
            ]);
        }
        print!("{}", table.render());
        println!();
    }
    println!(
        "Paper headline speedups (AP-style): 280x / 22x / 10x / 4x vs AP(50nm)/AP(14nm)/CA/Impala"
    );
    println!("Paper headline speedups (AP+RAD):   133x / 10.4x / 4.8x / 1.9x");
    args.finish_telemetry()?;
    Ok(0)
}

fn main() -> ExitCode {
    bench_main(run)
}
