//! Engine comparison sweep: runs the full 19-benchmark suite on all three
//! functional engines (sparse, dense bit-parallel, adaptive), verifies
//! that every engine produces a byte-identical report trace, measures
//! per-engine throughput, and writes a machine-readable summary to
//! `BENCH_engine.json`.
//!
//! Usage: `cargo run -p sunder-bench --release --bin suite
//! [--small | --paper] [--workers N] [--out PATH]`
//!
//! Default scale is `--small` (seconds, not minutes). Benchmarks fan out
//! across worker threads via the deterministic parallel runner; the JSON
//! and table are merged in benchmark order, identical for any worker
//! count.

use std::time::Instant;

use sunder_automata::InputView;
use sunder_bench::parallel::{run_indexed, workers_from_args};
use sunder_bench::table::TextTable;
use sunder_sim::{EngineKind, NullSink, TraceSink};
use sunder_workloads::{Benchmark, Scale};

struct SuiteRow {
    name: &'static str,
    states: usize,
    input_bytes: usize,
    reports: usize,
    /// ns per run, indexed like [`EngineKind::ALL`].
    ns: [u64; 3],
    /// Mean active states per cycle (frontier density).
    avg_active: f64,
    traces_equal: bool,
}

/// Times `runs` full passes and returns the best-of ns (minimum wall
/// clock, the standard noise-robust point estimate).
fn time_engine(kind: EngineKind, nfa: &sunder_automata::Nfa, input: &InputView, runs: u32) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..runs {
        let mut engine = kind.build(nfa);
        let start = Instant::now();
        engine.run(input, &mut NullSink);
        best = best.min(start.elapsed().as_nanos() as u64);
    }
    best
}

fn run_benchmark(bench: &Benchmark, scale: Scale, runs: u32) -> SuiteRow {
    let w = bench.build(scale);
    let input = InputView::new(&w.input, 8, 1).expect("byte view");

    // Correctness first: all three engines must emit identical traces.
    let mut traces = Vec::new();
    for kind in EngineKind::ALL {
        let mut engine = kind.build(&w.nfa);
        let mut sink = TraceSink::new();
        engine.run(&input, &mut sink);
        traces.push(sink.events);
    }
    let traces_equal = traces.windows(2).all(|w| w[0] == w[1]);

    // Frontier density, for the table's context column.
    struct Activity(u64, u64);
    impl sunder_sim::ReportSink for Activity {
        fn on_cycle_reports(&mut self, _cycle: u64, _reports: &[sunder_sim::ReportEvent]) {}

        fn on_cycle_activity(&mut self, _cycle: u64, active: usize) {
            self.0 += active as u64;
            self.1 += 1;
        }
    }
    let mut act = Activity(0, 0);
    let mut sparse = sunder_sim::Simulator::new(&w.nfa);
    sparse.run(&input, &mut act);
    let avg_active = act.0 as f64 / act.1.max(1) as f64;

    let ns = [
        time_engine(EngineKind::Sparse, &w.nfa, &input, runs),
        time_engine(EngineKind::Dense, &w.nfa, &input, runs),
        time_engine(EngineKind::Adaptive, &w.nfa, &input, runs),
    ];

    SuiteRow {
        name: bench.name(),
        states: w.nfa.num_states(),
        input_bytes: w.input.len(),
        reports: traces[0].len(),
        ns,
        avg_active,
        traces_equal,
    }
}

fn write_json(path: &str, scale_name: &str, workers: usize, rows: &[SuiteRow]) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"scale\": \"{scale_name}\",\n"));
    out.push_str(&format!("  \"workers\": {workers},\n"));
    out.push_str("  \"engines\": [\"sparse\", \"dense\", \"adaptive\"],\n");
    out.push_str("  \"benchmarks\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let speedup_dense = r.ns[0] as f64 / r.ns[1].max(1) as f64;
        let speedup_adaptive = r.ns[0] as f64 / r.ns[2].max(1) as f64;
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"states\": {}, \"input_bytes\": {}, \
             \"reports\": {}, \"avg_active\": {:.2}, \"sparse_ns\": {}, \
             \"dense_ns\": {}, \"adaptive_ns\": {}, \"speedup_dense\": {:.3}, \
             \"speedup_adaptive\": {:.3}, \"traces_equal\": {}}}{}\n",
            r.name,
            r.states,
            r.input_bytes,
            r.reports,
            r.avg_active,
            r.ns[0],
            r.ns[1],
            r.ns[2],
            speedup_dense,
            speedup_adaptive,
            r.traces_equal,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).expect("write JSON summary");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let paper = args.iter().any(|a| a == "--paper");
    let workers = workers_from_args(&args);
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_engine.json")
        .to_string();
    let (scale, scale_name, runs) = if paper {
        (Scale::paper(), "paper", 1)
    } else {
        (Scale::small(), "small", 7)
    };

    println!("Engine suite: 19 benchmarks x 3 engines ({scale_name} scale, {workers} workers)\n");
    let wall = Instant::now();
    let rows = run_indexed(&Benchmark::ALL, workers, |_, bench| {
        run_benchmark(bench, scale, runs)
    });
    let wall = wall.elapsed();

    let mut table = TextTable::new([
        "Benchmark",
        "States",
        "AvgActive",
        "Sparse ms",
        "Dense ms",
        "Adaptive ms",
        "Dense x",
        "Adaptive x",
        "TraceEq",
    ]);
    let mut all_equal = true;
    for r in &rows {
        all_equal &= r.traces_equal;
        table.row([
            r.name.to_string(),
            format!("{}", r.states),
            format!("{:.1}", r.avg_active),
            format!("{:.2}", r.ns[0] as f64 / 1e6),
            format!("{:.2}", r.ns[1] as f64 / 1e6),
            format!("{:.2}", r.ns[2] as f64 / 1e6),
            format!("{:.2}", r.ns[0] as f64 / r.ns[1].max(1) as f64),
            format!("{:.2}", r.ns[0] as f64 / r.ns[2].max(1) as f64),
            format!("{}", r.traces_equal),
        ]);
    }
    print!("{}", table.render());

    let gmean_adaptive = rows
        .iter()
        .map(|r| (r.ns[0] as f64 / r.ns[2].max(1) as f64).ln())
        .sum::<f64>()
        / rows.len() as f64;
    println!(
        "\nAdaptive geomean speedup over sparse: {:.2}x; wall time {:.2}s on {} workers",
        gmean_adaptive.exp(),
        wall.as_secs_f64(),
        workers
    );

    write_json(&out_path, scale_name, workers, &rows);
    println!("Machine-readable summary written to {out_path}");

    if !all_equal {
        eprintln!("ERROR: engines disagreed on at least one report trace");
        std::process::exit(1);
    }
}
