//! Engine comparison sweep: runs the full 19-benchmark suite on all three
//! functional engines (sparse, dense bit-parallel, adaptive) under the
//! panic-isolating supervisor, verifies that every engine produces a
//! byte-identical report trace, measures per-engine throughput, and
//! writes a machine-readable summary to `BENCH_engine.json`.
//!
//! Usage: `cargo run -p sunder-bench --release --bin suite
//! [--small | --paper] [--workers N] [--out PATH] [--runs N]
//! [--deadline-ms N] [--fault-plan FILE] [--only A,B,...] [--only~=SUB]
//! [--telemetry PATH] [--quiet]` (`--only` matches exact names,
//! `--only~=` matches substrings; see `--help`)
//!
//! Default scale is `--small` (seconds, not minutes). Benchmarks fan out
//! across supervised worker threads; a benchmark that panics, times out,
//! or fails is reported by name while the rest of the suite completes.
//! The JSON and table are merged in benchmark order, identical for any
//! worker count. With `--telemetry PATH` (or `SUNDER_TELEMETRY`) the run
//! also records spans, metrics, and cycle-model stall attribution to a
//! JSON-lines artifact — render it with `sunder telemetry-report`.
//!
//! Exit codes: 0 all ok, 1 engines disagreed on a report trace, 2 usage
//! or I/O error, 3 suite completed with failed jobs (partial results).

use std::process::ExitCode;

use sunder_bench::args::BenchArgs;
use sunder_bench::error::{bench_main, BenchError, Context};
use sunder_bench::suite::{render_json, render_table, run_suite, select_benchmarks, SuiteOptions};
use sunder_telemetry::progress;

fn run() -> Result<u8, BenchError> {
    let args = BenchArgs::from_env()?;
    if args.print_help(
        "suite",
        "Engine comparison sweep across the full benchmark suite.",
    ) {
        return Ok(0);
    }
    args.init_telemetry();
    let (scale, scale_name) = args.scale_small_default();
    let benches = select_benchmarks(&args.only).map_err(BenchError::msg)?;
    let out_path = args.out.as_deref().unwrap_or("BENCH_engine.json");

    let opts = SuiteOptions {
        scale,
        scale_name: scale_name.to_string(),
        runs: args.runs.unwrap_or(if args.paper { 1 } else { 7 }),
        workers: args.workers,
        deadline: args.deadline,
        plan: args.plan.clone(),
        only: args.only.clone(),
    };

    progress(&format!(
        "Engine suite: {} benchmarks x 3 engines ({scale_name} scale, {} workers{})",
        benches.len(),
        opts.workers,
        if opts.plan.is_empty() {
            String::new()
        } else {
            format!(", {} injected faults", opts.plan.faults.len())
        }
    ));
    let report = run_suite(&opts);

    print!("{}", render_table(&report));
    std::fs::write(out_path, render_json(&report))
        .with_context(|| format!("write JSON summary {out_path:?}"))?;
    progress(&format!("Machine-readable summary written to {out_path}"));

    if !report.traces_all_equal() {
        eprintln!("ERROR: engines disagreed on at least one report trace");
    }
    if !report.summary.no_failures() {
        eprintln!("WARNING: suite completed with failures: {}", report.summary);
    }
    args.finish_telemetry()?;
    Ok(report.exit_code())
}

fn main() -> ExitCode {
    bench_main(run)
}
