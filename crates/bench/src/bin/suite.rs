//! Engine comparison sweep: runs the full 19-benchmark suite on all three
//! functional engines (sparse, dense bit-parallel, adaptive) under the
//! panic-isolating supervisor, verifies that every engine produces a
//! byte-identical report trace, measures per-engine throughput, and
//! writes a machine-readable summary to `BENCH_engine.json`.
//!
//! Usage: `cargo run -p sunder-bench --release --bin suite
//! [--small | --paper] [--workers N] [--out PATH] [--runs N]
//! [--deadline-ms N] [--fault-plan FILE]`
//!
//! Default scale is `--small` (seconds, not minutes). Benchmarks fan out
//! across supervised worker threads; a benchmark that panics, times out,
//! or fails is reported by name while the rest of the suite completes.
//! The JSON and table are merged in benchmark order, identical for any
//! worker count.
//!
//! Exit codes: 0 all ok, 1 engines disagreed on a report trace, 2 usage
//! or I/O error, 3 suite completed with failed jobs (partial results).

use std::process::ExitCode;
use std::time::Duration;

use sunder_bench::error::{bench_main, BenchError, Context};
use sunder_bench::parallel::workers_from_args;
use sunder_bench::suite::{render_json, render_table, run_suite, SuiteOptions};
use sunder_resilience::FaultPlan;
use sunder_workloads::Scale;

/// Parses `--flag VALUE` out of the raw argument list.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Result<Option<&'a str>, BenchError> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .map(|v| Some(v.as_str()))
            .with_context(|| format!("{flag} requires a value")),
    }
}

fn run() -> Result<u8, BenchError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paper = args.iter().any(|a| a == "--paper");
    let workers = workers_from_args(&args).map_err(BenchError::msg)?;
    let out_path = flag_value(&args, "--out")?.unwrap_or("BENCH_engine.json");

    let (scale, scale_name, default_runs) = if paper {
        (Scale::paper(), "paper", 1)
    } else {
        (Scale::small(), "small", 7)
    };
    let runs = match flag_value(&args, "--runs")? {
        None => default_runs,
        Some(v) => v
            .parse::<u32>()
            .with_context(|| format!("invalid --runs value {v:?}: expected an integer"))?,
    };
    let deadline = flag_value(&args, "--deadline-ms")?
        .map(|v| {
            v.parse::<u64>()
                .map(Duration::from_millis)
                .with_context(|| {
                    format!("invalid --deadline-ms value {v:?}: expected milliseconds")
                })
        })
        .transpose()?;
    let plan = match flag_value(&args, "--fault-plan")? {
        None => FaultPlan::none(),
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .with_context(|| format!("read fault plan {path:?}"))?;
            FaultPlan::from_text(&text)
                .map_err(BenchError::msg)
                .with_context(|| format!("parse fault plan {path:?}"))?
        }
    };

    let opts = SuiteOptions {
        scale,
        scale_name: scale_name.to_string(),
        runs,
        workers,
        deadline,
        plan,
    };

    println!(
        "Engine suite: 19 benchmarks x 3 engines ({scale_name} scale, {workers} workers{})\n",
        if opts.plan.is_empty() {
            String::new()
        } else {
            format!(", {} injected faults", opts.plan.faults.len())
        }
    );
    let report = run_suite(&opts);

    print!("{}", render_table(&report));
    std::fs::write(out_path, render_json(&report))
        .with_context(|| format!("write JSON summary {out_path:?}"))?;
    println!("Machine-readable summary written to {out_path}");

    if !report.traces_all_equal() {
        eprintln!("ERROR: engines disagreed on at least one report trace");
    }
    if !report.summary.no_failures() {
        eprintln!("WARNING: suite completed with failures: {}", report.summary);
    }
    Ok(report.exit_code())
}

fn main() -> ExitCode {
    bench_main(run)
}
