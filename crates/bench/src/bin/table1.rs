//! Regenerates the paper's Table 1: reporting behavior summary.
//!
//! Runs every synthetic benchmark through the functional simulator over its
//! generated input and prints the static and dynamic reporting statistics
//! next to the paper's values.
//!
//! Usage: `cargo run -p sunder-bench --release --bin table1 [--small]
//! [--workers N]`
//!
//! Benchmarks run in parallel (one work item per benchmark, dynamically
//! scheduled); the table is merged in benchmark order, so the output is
//! identical for any worker count.

use std::process::ExitCode;

use sunder_automata::stats::StaticStats;
use sunder_automata::InputView;
use sunder_bench::args::BenchArgs;
use sunder_bench::error::{bench_main, BenchError};
use sunder_bench::parallel::run_indexed;
use sunder_bench::table::TextTable;
use sunder_sim::{DynamicStatsSink, Simulator};
use sunder_workloads::Benchmark;

fn run() -> Result<u8, BenchError> {
    let args = BenchArgs::from_env()?;
    if args.print_help("table1", "Regenerates Table 1: reporting behavior summary.") {
        return Ok(0);
    }
    args.init_telemetry();
    let (scale, scale_name) = args.scale_paper_default();
    let small = scale_name == "small";
    let workers = args.workers;
    println!(
        "Table 1: reporting behavior summary ({} scale: {} states fraction, {} input bytes)",
        if small { "small" } else { "paper" },
        scale.state_fraction,
        scale.input_len
    );
    println!();

    let mut table = TextTable::new([
        "Benchmark",
        "Family",
        "#States",
        "(paper)",
        "#RepSTE",
        "(paper)",
        "#Reports",
        "(paper)",
        "#RepCycles",
        "(paper)",
        "Rep/RepCyc",
        "(paper)",
        "RepCyc%",
    ]);

    let rows = run_indexed(&Benchmark::ALL, workers, |_, bench| {
        let _span = sunder_telemetry::span("table1.benchmark").field("bench", bench.name());
        let w = bench.build(scale);
        let stats = StaticStats::of(&w.nfa);
        let input = InputView::new(&w.input, 8, 1).expect("byte view");
        let mut sim = Simulator::new(&w.nfa);
        let mut sink = DynamicStatsSink::new();
        sim.run(&input, &mut sink);
        (stats, sink.finish())
    });

    for (bench, (stats, d)) in Benchmark::ALL.iter().zip(rows) {
        let paper = bench.paper();
        let scale_note = |v: u64| -> String {
            if small {
                format!("{v}*")
            } else {
                format!("{v}")
            }
        };
        table.row([
            bench.name().to_string(),
            format!("{}", paper.family),
            format!("{}", stats.states),
            format!("{}", paper.states),
            format!("{}", stats.report_states),
            format!("{}", paper.report_states),
            format!("{}", d.reports),
            scale_note(paper.reports),
            format!("{}", d.report_cycles),
            scale_note(paper.report_cycles),
            format!("{:.2}", d.reports_per_report_cycle()),
            format!("{:.2}", paper.reports_per_report_cycle()),
            format!("{:.2}%", d.report_cycle_percent()),
        ]);
    }
    print!("{}", table.render());
    if small {
        println!(
            "\n(*) paper values are per 1 MB; small scale shrinks absolute counts proportionally."
        );
    }
    args.finish_telemetry()?;
    Ok(0)
}

fn main() -> ExitCode {
    bench_main(run)
}
