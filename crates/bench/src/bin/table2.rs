//! Prints the paper's Table 2: subarray parameters of the technology
//! model (14 nm memory-compiler figures quoted by the paper).
//!
//! Usage: `cargo run -p sunder-bench --bin table2 [--telemetry PATH]
//! [--quiet]`

use std::process::ExitCode;

use sunder_bench::args::BenchArgs;
use sunder_bench::error::{bench_main, BenchError};
use sunder_bench::table::TextTable;
use sunder_tech::params::{CA_MATCH, IMPALA_MATCH, SUNDER_8T};
use sunder_tech::{CellType, SubarrayParams};

fn cell_name(c: CellType) -> &'static str {
    match c {
        CellType::T6 => "6T",
        CellType::T8 => "8T",
    }
}

fn run() -> Result<u8, BenchError> {
    let args = BenchArgs::from_env()?;
    if args.print_help(
        "table2",
        "Prints Table 2: subarray parameters of the technology model.",
    ) {
        return Ok(0);
    }
    args.init_telemetry();
    let _span = sunder_telemetry::span("table2.render");
    println!("Table 2: subarray parameters (14 nm, peripheral overhead included)\n");
    let mut table = TextTable::new([
        "Usage",
        "Cell",
        "Size",
        "Delay (ps)",
        "Read Power (mW)",
        "Area (um2)",
    ]);
    let rows: [(&str, SubarrayParams); 3] = [
        ("State-matching (Impala)", IMPALA_MATCH),
        ("State-matching (CA)", CA_MATCH),
        (
            "Interconnect (CA, Impala, Sunder) / State-matching (Sunder)",
            SUNDER_8T,
        ),
    ];
    for (usage, p) in rows {
        table.row([
            usage.to_string(),
            cell_name(p.cell).to_string(),
            format!("{}x{}", p.rows, p.cols),
            format!("{}", p.delay_ps),
            format!("{}", p.read_power_mw),
            format!("{}", p.area_um2),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\n8T/6T area ratio at 256x256: {:.2}x (the paper notes ~2.1x)",
        SUNDER_8T.area_um2 / CA_MATCH.area_um2
    );
    drop(_span);
    args.finish_telemetry()?;
    Ok(0)
}

fn main() -> ExitCode {
    bench_main(run)
}
