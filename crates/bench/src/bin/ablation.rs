//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **Rate vs. capacity** — the motivation for a *reconfigurable* rate:
//!    on a small device, a higher rate's state overhead (Table 3) forces
//!    extra reconfiguration rounds and can lose end-to-end.
//! 2. **Minimization** — what the prefix/suffix merging passes buy.
//! 3. **FIFO drain period** — how fast the host must drain for zero
//!    stalls.
//! 4. **Report columns (m)** — the capacity/geometry trade-off of the
//!    reporting region.
//!
//! Usage: `cargo run -p sunder-bench --release --bin ablation
//! [--telemetry PATH] [--quiet]`

use std::process::ExitCode;

use sunder_arch::{SunderConfig, SunderMachine};
use sunder_automata::InputView;
use sunder_bench::args::BenchArgs;
use sunder_bench::error::{bench_main, BenchError};
use sunder_bench::table::TextTable;
use sunder_core::{DeviceModel, Engine};
use sunder_llc::{HostBridge, SliceGeometry, SlicedLlc, WayPartition};
use sunder_sim::NullSink;
use sunder_tech::{Architecture, PipelineTiming};
use sunder_transform::{transform_to_rate_with, Rate, TransformOptions};
use sunder_workloads::{Benchmark, Scale};

fn run() -> Result<u8, BenchError> {
    let args = BenchArgs::from_env()?;
    if args.print_help(
        "ablation",
        "Ablation studies for the design choices DESIGN.md calls out.",
    ) {
        return Ok(0);
    }
    args.init_telemetry();
    for (name, study) in [
        ("rate_vs_capacity", rate_vs_capacity as fn()),
        ("minimization", minimization),
        ("fifo_drain_period", fifo_drain_period),
        ("report_columns", report_columns),
        ("host_traffic", host_traffic),
    ] {
        let _span = sunder_telemetry::span("ablation.study").field("study", name);
        study();
    }
    args.finish_telemetry()?;
    Ok(0)
}

fn main() -> ExitCode {
    bench_main(run)
}

/// Per-rate operating frequency: the matching array timing does not
/// change with the rate, so the Table 5 Sunder clock applies to all.
fn sunder_freq_ghz() -> f64 {
    PipelineTiming::of(Architecture::Sunder).operating_freq_ghz
}

fn rate_vs_capacity() {
    println!("== Ablation 1: processing rate vs. device capacity ==\n");
    // Levenshtein: the mesh family pays the steepest striding cost
    // (Table 3: 4-nibble ≈ 2.9x the 2-nibble state count), so the rate
    // trade-off actually crosses over as the device shrinks.
    let w = Benchmark::Levenshtein.build(Scale {
        state_fraction: 0.5,
        input_len: 4_096,
    });
    let mut table = TextTable::new([
        "Device PUs",
        "Rate",
        "States",
        "Rounds",
        "Gbps (kernel/rounds)",
        "Winner?",
    ]);
    for device_pus in [6usize, 12, 64] {
        let device = DeviceModel::with_pus(device_pus);
        let mut best: Option<(Rate, f64)> = None;
        let mut rows = Vec::new();
        for rate in Rate::ALL {
            // Minimization off: cross-pattern prefix merging would fuse the
            // rule set into one giant component that no small device fits;
            // capacity planning works at per-pattern granularity.
            let engine = Engine::builder()
                .rate(rate)
                .transform_options(TransformOptions {
                    minimize: false,
                    prune: true,
                })
                .build();
            let program = engine.compile_nfa(&w.nfa).expect("compile");
            match engine.plan_rounds(&program, device) {
                Ok(plan) => {
                    let gbps =
                        sunder_freq_ghz() * rate.bits_per_cycle() as f64 / plan.rounds() as f64;
                    rows.push((
                        rate,
                        program.strided_stats().states,
                        Some((plan.rounds(), gbps)),
                    ));
                    if best.map(|(_, b)| gbps > b).unwrap_or(true) {
                        best = Some((rate, gbps));
                    }
                }
                Err(_) => {
                    // A component alone exceeds the device at this rate —
                    // the strongest form of the capacity argument.
                    rows.push((rate, program.strided_stats().states, None));
                }
            }
        }
        for (rate, states, result) in rows {
            let (rounds, gbps, mark) = match result {
                Some((r, g)) => (
                    format!("{r}"),
                    format!("{g:.1}"),
                    if best.map(|(br, _)| br == rate).unwrap_or(false) {
                        "<-- best".to_string()
                    } else {
                        String::new()
                    },
                ),
                None => ("-".into(), "-".into(), "does not fit".into()),
            };
            table.row([
                format!("{device_pus}"),
                rate.to_string(),
                format!("{states}"),
                rounds,
                gbps,
                mark,
            ]);
        }
    }
    print!("{}", table.render());
    println!("\nOn small devices the 16-bit design's state overhead costs extra\nreconfiguration rounds and a lower rate wins end-to-end; with enough\nPUs the 16-bit rate wins — the paper's case for a reconfigurable rate.\n");
}

fn minimization() {
    println!("== Ablation 2: minimization passes ==\n");
    let mut table = TextTable::new(["Benchmark", "Rate", "Raw states", "Minimized", "Saved"]);
    for bench in [Benchmark::Bro217, Benchmark::ExactMatch] {
        let w = bench.build(Scale {
            state_fraction: 0.25,
            input_len: 1_024,
        });
        for rate in Rate::ALL {
            let raw = transform_to_rate_with(
                &w.nfa,
                rate,
                TransformOptions {
                    minimize: false,
                    prune: false,
                },
            )
            .expect("transform");
            let min = transform_to_rate_with(&w.nfa, rate, TransformOptions::default())
                .expect("transform");
            table.row([
                bench.name().to_string(),
                rate.to_string(),
                format!("{}", raw.num_states()),
                format!("{}", min.num_states()),
                format!(
                    "{:.0}%",
                    100.0 * (1.0 - min.num_states() as f64 / raw.num_states() as f64)
                ),
            ]);
        }
    }
    print!("{}", table.render());
    println!();
}

fn fifo_drain_period() {
    println!("== Ablation 3: FIFO drain period (Snort-like, dense reporting) ==\n");
    let w = Benchmark::Snort.build(Scale {
        state_fraction: 0.02,
        input_len: 60_000,
    });
    let strided = transform_to_rate_with(&w.nfa, Rate::Nibble4, TransformOptions::default())
        .expect("transform");
    let view = InputView::new(&w.input, 4, 4).expect("view");
    let mut table = TextTable::new([
        "Drain period (cycles/row)",
        "Fills",
        "Stall cycles",
        "Overhead",
    ]);
    for period in [4u32, 8, 16, 32, 64] {
        let mut config = SunderConfig::with_rate(Rate::Nibble4).fifo(true);
        config.drain_period_cycles = period;
        let mut machine = SunderMachine::new(&strided, config).expect("place");
        let stats = machine.run(&view, &mut NullSink);
        if sunder_telemetry::enabled() {
            machine.export_telemetry(&format!("ablation/drain{period}"));
        }
        table.row([
            format!("{period}"),
            format!("{}", stats.flushes),
            format!("{}", stats.stall_cycles),
            format!("{:.3}x", stats.reporting_overhead()),
        ]);
    }
    print!("{}", table.render());
    println!("\nOne row per 8 cycles (= 1 entry/cycle) is the break-even drain rate\nfor a region absorbing one entry per cycle.\n");
}

fn report_columns() {
    println!("== Ablation 4: report columns per subarray (m) ==\n");
    let w = Benchmark::Spm.build(Scale {
        state_fraction: 0.05,
        input_len: 60_000,
    });
    let strided = transform_to_rate_with(&w.nfa, Rate::Nibble4, TransformOptions::default())
        .expect("transform");
    let view = InputView::new(&w.input, 4, 4).expect("view");
    let mut table = TextTable::new([
        "m",
        "Entry bits",
        "Region capacity",
        "PUs",
        "Fills",
        "Overhead",
    ]);
    for m in [4usize, 8, 12, 20] {
        let mut config = SunderConfig::with_rate(Rate::Nibble4);
        config.report_columns = m;
        let mut machine = SunderMachine::new(&strided, config).expect("place");
        let stats = machine.run(&view, &mut NullSink);
        table.row([
            format!("{m}"),
            format!("{}", config.entry_bits()),
            format!("{}", config.region_capacity()),
            format!("{}", machine.num_pus()),
            format!("{}", stats.flushes),
            format!("{:.3}x", stats.reporting_overhead()),
        ]);
    }
    print!("{}", table.render());
    println!("\nSmaller m packs more entries per row but spreads report states over\nmore PUs; the paper picks m = 12 from the 3.9% mean report-state share.");
}

fn host_traffic() {
    println!("\n== Ablation 5: host communication for report readout ==\n");
    // A Brill-like run: bursty reporting, moderate volume.
    let w = Benchmark::Brill.build(Scale {
        state_fraction: 0.02,
        input_len: 60_000,
    });
    let strided = transform_to_rate_with(&w.nfa, Rate::Nibble4, TransformOptions::default())
        .expect("transform");
    let view = InputView::new(&w.input, 4, 4).expect("view");
    let config = SunderConfig::with_rate(Rate::Nibble4).fifo(false);
    let mut machine = SunderMachine::new(&strided, config).expect("place");
    let stats = machine.run(&view, &mut NullSink);

    // Sunder readout strategies through the LLC host bridge.
    let llc = SlicedLlc::new(4, SliceGeometry::xeon_2p5mb(), WayPartition::split(20, 8));
    let mut bridge = HostBridge::new(llc);
    let pus = machine.num_pus().min(bridge.pu_capacity());

    // (a) clflush the whole report region of every PU (bulk post-processing).
    for pu in 0..pus {
        bridge.clflush_region(pu, &config);
    }
    let full_bytes = bridge.traffic.bytes();

    // (b) selective: one row per PU that actually holds reports.
    let mut bridge_sel = HostBridge::new(SlicedLlc::new(
        4,
        SliceGeometry::xeon_2p5mb(),
        WayPartition::split(20, 8),
    ));
    let mut selective_rows = 0u64;
    for pu in 0..pus {
        let entries = machine.region_len(pu);
        let rows = entries.div_ceil(config.entries_per_row() as u64);
        for r in 0..rows {
            let _ = bridge_sel.read_row(pu, config.matching_rows() + r as usize);
            selective_rows += 1;
        }
    }
    let selective_bytes = bridge_sel.traffic.bytes();

    // (c) summarization: one occurrence vector per PU (m bits, but one
    // line load carries it).
    let summarized_bytes = pus as u64 * 64;

    // AP-style: every report cycle ships a 1088-bit vector per region.
    let ap_bytes = stats.report_cycles * 1088 / 8;

    let mut table = TextTable::new(["Strategy", "Bytes to host", "vs AP"]);
    for (label, bytes) in [
        ("AP-style vector offload", ap_bytes),
        ("Sunder clflush full regions", full_bytes),
        ("Sunder selective (occupied rows)", selective_bytes),
        ("Sunder summarize (1 line/PU)", summarized_bytes),
    ] {
        table.row([
            label.to_string(),
            format!("{bytes}"),
            format!("{:.1}%", 100.0 * bytes as f64 / ap_bytes as f64),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\n({} report entries across {} PUs; {} occupied rows read selectively)",
        stats.report_entries, pus, selective_rows
    );
    println!("In-place reporting lets the host fetch exactly what it needs;\nthe AP's architecture ships every region vector regardless.");
}
