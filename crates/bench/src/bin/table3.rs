//! Regenerates the paper's Table 3: states and transitions of the 1-, 2-,
//! and 4-nibble designs, normalized to the original 8-bit automata.
//!
//! Usage: `cargo run -p sunder-bench --release --bin table3 [--small]`

use std::process::ExitCode;

use sunder_bench::args::BenchArgs;
use sunder_bench::error::{bench_main, BenchError, Context};
use sunder_bench::table::TextTable;
use sunder_transform::{Rate, TransformStats};
use sunder_workloads::{Benchmark, Scale};

/// Paper values: (name, s1, s2, s4, t1, t2, t4).
const PAPER: [(&str, f64, f64, f64, f64, f64, f64); 19] = [
    ("Brill", 5.3, 1.0, 1.9, 11.9, 1.0, 1.8),
    ("Bro217", 2.0, 1.0, 1.0, 2.1, 1.0, 7.4),
    ("Dotstar03", 2.2, 1.0, 1.0, 2.6, 1.0, 1.1),
    ("Dotstar06", 2.3, 1.0, 1.0, 3.0, 1.0, 1.1),
    ("Dotstar09", 2.4, 1.0, 1.0, 3.5, 1.0, 1.2),
    ("ExactMatch", 2.0, 1.0, 1.0, 2.0, 1.0, 1.0),
    ("PowerEN", 2.3, 1.0, 1.1, 3.1, 1.0, 1.0),
    ("Protomata", 6.0, 1.0, 1.2, 12.5, 1.0, 1.1),
    ("Ranges05", 2.0, 1.0, 1.0, 2.1, 1.0, 1.0),
    ("Ranges1", 2.1, 1.0, 1.0, 2.2, 1.0, 1.0),
    ("Snort", 2.5, 1.0, 1.1, 3.8, 1.0, 1.4),
    ("TCP", 2.5, 1.0, 1.1, 3.9, 1.0, 1.3),
    (
        "ClamAV",
        f64::NAN,
        f64::NAN,
        f64::NAN,
        f64::NAN,
        f64::NAN,
        f64::NAN,
    ),
    ("Hamming", 6.5, 1.1, 1.3, 9.7, 1.1, 1.4),
    ("Levenshtein", 2.8, 1.1, 2.2, 1.9, 1.1, 3.5),
    ("Fermi", 2.2, 1.0, 1.0, 2.1, 1.0, 1.3),
    ("RandomForest", 5.3, 1.0, 1.0, 9.4, 1.0, 1.0),
    ("SPM", 2.7, 1.1, 2.3, 2.7, 1.1, 4.6),
    ("EntityResolution", 3.2, 0.7, 0.9, 2.8, 0.7, 1.6),
];

fn fmt_paper(v: f64) -> String {
    if v.is_nan() {
        "-".to_string()
    } else {
        format!("{v:.1}x")
    }
}

fn run() -> Result<u8, BenchError> {
    let args = BenchArgs::from_env()?;
    if args.print_help(
        "table3",
        "Regenerates Table 3: states and transitions of the nibble designs.",
    ) {
        return Ok(0);
    }
    args.init_telemetry();
    let small = args.small;
    let scale = if small {
        Scale::small()
    } else {
        // Table 3 is static: the input stream is irrelevant, so keep it
        // tiny even at full state scale.
        Scale {
            state_fraction: 1.0,
            input_len: 1024,
        }
    };
    println!(
        "Table 3: state/transition overhead of nibble designs vs. 8-bit ({} scale)",
        if small { "small" } else { "paper" }
    );
    println!("(paper values in parentheses; ClamAV is absent from the paper's table)\n");

    let mut table = TextTable::new([
        "Benchmark",
        "S 1-nib",
        "(p)",
        "S 2-nib",
        "(p)",
        "S 4-nib",
        "(p)",
        "T 1-nib",
        "(p)",
        "T 2-nib",
        "(p)",
        "T 4-nib",
        "(p)",
    ]);
    let mut sums = [0.0f64; 6];
    let mut counted = 0usize;
    for (bench, paper) in Benchmark::ALL.iter().zip(PAPER.iter()) {
        let _span = sunder_telemetry::span("table3.benchmark").field("bench", bench.name());
        let w = bench.build(scale);
        let stats = TransformStats::measure(&w.nfa)
            .with_context(|| format!("measure nibble transforms for {}", bench.name()))?;
        let vals = [
            stats.state_ratio(Rate::Nibble1),
            stats.state_ratio(Rate::Nibble2),
            stats.state_ratio(Rate::Nibble4),
            stats.transition_ratio(Rate::Nibble1),
            stats.transition_ratio(Rate::Nibble2),
            stats.transition_ratio(Rate::Nibble4),
        ];
        for (s, v) in sums.iter_mut().zip(vals) {
            *s += v;
        }
        counted += 1;
        table.row([
            bench.name().to_string(),
            format!("{:.1}x", vals[0]),
            fmt_paper(paper.1),
            format!("{:.1}x", vals[1]),
            fmt_paper(paper.2),
            format!("{:.1}x", vals[2]),
            fmt_paper(paper.3),
            format!("{:.1}x", vals[3]),
            fmt_paper(paper.4),
            format!("{:.1}x", vals[4]),
            fmt_paper(paper.5),
            format!("{:.1}x", vals[5]),
            fmt_paper(paper.6),
        ]);
    }
    let n = counted as f64;
    table.row([
        "Average".to_string(),
        format!("{:.1}x", sums[0] / n),
        "3.1x".to_string(),
        format!("{:.1}x", sums[1] / n),
        "1.0x".to_string(),
        format!("{:.1}x", sums[2] / n),
        "1.2x".to_string(),
        format!("{:.1}x", sums[3] / n),
        "4.5x".to_string(),
        format!("{:.1}x", sums[4] / n),
        "1.0x".to_string(),
        format!("{:.1}x", sums[5] / n),
        "1.8x".to_string(),
    ]);
    print!("{}", table.render());
    args.finish_telemetry()?;
    Ok(0)
}

fn main() -> ExitCode {
    bench_main(run)
}
