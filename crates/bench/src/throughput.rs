//! Sharded multi-stream throughput sweep (library form of the
//! `throughput` binary).
//!
//! The paper's scalability claim is that aggregate throughput grows with
//! subarray count because the automaton is spatially partitioned and
//! streams are processed in parallel. This module sweeps streams ×
//! shards × workers over the suite workloads through the
//! `sunder-shard` batch service and reports aggregate throughput per
//! point — every point gated by the sharded-vs-monolithic trace-equality
//! check ([`sunder_shard::verify_stream`]): a point that fails the gate
//! is recorded as such and fails the whole run.
//!
//! ## Wall clock is the gated truth
//!
//! `mbps_wall` — observed aggregate wall-clock throughput — is the
//! metric the sweep gates on: with a `wall_floor` set, the worst
//! per-benchmark wall-clock speedup (max workers vs 1 worker at the
//! widest shard count) must stay at or above the floor, or the run
//! fails. On a single-core host parallel speedup is not achievable, so
//! the floor defends against *regressions* (per-batch scheduling
//! overhead growing with worker count) rather than demanding scaling.
//!
//! `mbps_modeled` is still reported alongside: per-stream busy costs are
//! measured on a sequential (1-worker) run, then list-scheduled greedily
//! (each stream, in submission order, onto the least-loaded worker) to
//! obtain the modeled makespan for W workers — the figure a W-core host
//! would converge to. It no longer gates anything.

use std::sync::Arc;
use std::time::{Duration, Instant};

use sunder_oracle::PipelineConfig;
use sunder_shard::{verify_stream, BatchOptions, BatchService, ShardSpec};
use sunder_sim::EngineKind;
use sunder_workloads::Scale;

use crate::args::OnlyFilter;
use crate::suite::select_benchmarks;
use crate::table::TextTable;

/// Stream chunks are aligned to this many bytes so every chunk frames
/// cleanly under all pipeline configurations (stride-4 consumes 4 nibbles
/// = 2 bytes per cycle; 4 covers every config with margin).
const STREAM_ALIGN: usize = 4;

/// Sweep configuration.
#[derive(Debug, Clone)]
pub struct ThroughputOptions {
    /// Workload scale.
    pub scale: Scale,
    /// Scale name recorded in the JSON output.
    pub scale_name: String,
    /// Number of independent input streams per batch.
    pub streams: usize,
    /// Shard counts to sweep (`ShardSpec::MaxShards`).
    pub shard_counts: Vec<usize>,
    /// Worker counts to sweep.
    pub worker_counts: Vec<usize>,
    /// Pipeline configuration every point compiles under.
    pub config: PipelineConfig,
    /// Per-shard engine kind.
    pub engine: EngineKind,
    /// Timing passes per point (best-of).
    pub runs: u32,
    /// Benchmark filter; empty runs the whole suite.
    pub only: Vec<OnlyFilter>,
    /// Wall-clock gate: minimum acceptable per-benchmark wall speedup
    /// (max workers vs 1 worker). `None` disables the gate.
    pub wall_floor: Option<f64>,
}

impl Default for ThroughputOptions {
    fn default() -> Self {
        ThroughputOptions {
            scale: Scale::small(),
            scale_name: "small".to_string(),
            streams: 8,
            shard_counts: vec![1, 4, 8],
            worker_counts: vec![1, 2, 4, 8],
            config: PipelineConfig::Nibble,
            engine: EngineKind::Adaptive,
            runs: 1,
            only: Vec::new(),
            wall_floor: None,
        }
    }
}

/// One measured (shards, workers) point for one benchmark.
#[derive(Debug, Clone)]
pub struct ThroughputPoint {
    /// Requested shard count (`ShardSpec::MaxShards`).
    pub shards_requested: usize,
    /// Shards the partitioner actually produced (≤ requested).
    pub shards: usize,
    /// Worker threads the batch ran on.
    pub workers: usize,
    /// Best-of-runs wall clock for the batch.
    pub wall: Duration,
    /// Sum of per-stream busy time (the sequential cost).
    pub busy: Duration,
    /// Modeled makespan: sequential per-stream costs list-scheduled
    /// greedily over `workers`.
    pub makespan: Duration,
    /// Aggregate throughput from the modeled makespan (headline).
    pub mbps_modeled: f64,
    /// Aggregate throughput from observed wall clock.
    pub mbps_wall: f64,
    /// Streams executed off a victim's queue.
    pub steals: u64,
    /// Streams whose merge completed.
    pub streams_ok: usize,
    /// The trace-equality gate: every stream's merged trace was
    /// byte-identical to the monolithic run.
    pub trace_equal: bool,
}

/// One benchmark's sweep results.
#[derive(Debug, Clone)]
pub struct BenchThroughput {
    /// Benchmark name.
    pub name: &'static str,
    /// Total input bytes across all streams.
    pub total_bytes: usize,
    /// Streams the input was split into.
    pub streams: usize,
    /// States of the transformed (executable) automaton.
    pub states: usize,
    /// Pipeline-cache hits across the sweep (worker re-submissions).
    pub cache_hits: u64,
    /// Pipeline-cache misses (= compilations; one per shard count).
    pub cache_misses: u64,
    /// Measured points, in (shards, workers) sweep order.
    pub points: Vec<ThroughputPoint>,
}

impl BenchThroughput {
    /// The widest point (max shards, max workers) and the 1-worker point
    /// at the same shard count; `None` when the sweep has a single
    /// worker count.
    fn wide_and_base(&self) -> Option<(&ThroughputPoint, &ThroughputPoint)> {
        let max_shards = self.points.iter().map(|p| p.shards_requested).max()?;
        let wide = self
            .points
            .iter()
            .filter(|p| p.shards_requested == max_shards)
            .max_by_key(|p| p.workers)?;
        let base = self
            .points
            .iter()
            .find(|p| p.shards_requested == max_shards && p.workers == 1)?;
        if wide.workers == 1 {
            return None;
        }
        Some((wide, base))
    }

    /// Modeled speedup of the widest point (max shards, max workers)
    /// over the 1-worker point at the same shard count; `None` when the
    /// sweep has a single worker count.
    pub fn speedup_modeled(&self) -> Option<f64> {
        let (wide, base) = self.wide_and_base()?;
        Some(base.makespan.as_secs_f64() / wide.makespan.as_secs_f64().max(1e-12))
    }

    /// Observed wall-clock speedup of the widest point over the 1-worker
    /// point at the same shard count — the gated metric. `None` when the
    /// sweep has a single worker count.
    pub fn speedup_wall(&self) -> Option<f64> {
        let (wide, base) = self.wide_and_base()?;
        Some(base.wall.as_secs_f64() / wide.wall.as_secs_f64().max(1e-12))
    }
}

/// The whole sweep.
#[derive(Debug, Clone)]
pub struct ThroughputReport {
    /// Scale name (`small`/`paper`).
    pub scale_name: String,
    /// Pipeline configuration name.
    pub config: &'static str,
    /// Per-shard engine name.
    pub engine: &'static str,
    /// Streams per batch.
    pub streams: usize,
    /// Per-benchmark results.
    pub rows: Vec<BenchThroughput>,
    /// Wall clock for the whole sweep.
    pub wall: Duration,
    /// The wall-clock gate this sweep ran under (from the options).
    pub wall_floor: Option<f64>,
}

impl ThroughputReport {
    /// `true` when every measured point passed the trace-equality gate.
    pub fn all_traces_equal(&self) -> bool {
        self.rows
            .iter()
            .all(|r| r.points.iter().all(|p| p.trace_equal))
    }

    /// The smallest per-benchmark modeled speedup (max workers vs 1
    /// worker), or `None` when the sweep has no multi-worker points.
    pub fn min_speedup_modeled(&self) -> Option<f64> {
        self.rows
            .iter()
            .filter_map(BenchThroughput::speedup_modeled)
            .min_by(|a, b| a.total_cmp(b))
    }

    /// The smallest per-benchmark observed wall-clock speedup (max
    /// workers vs 1 worker) — the gated metric — or `None` when the
    /// sweep has no multi-worker points.
    pub fn min_speedup_wall(&self) -> Option<f64> {
        self.rows
            .iter()
            .filter_map(BenchThroughput::speedup_wall)
            .min_by(|a, b| a.total_cmp(b))
    }

    /// The wall-clock gate: `true` when no floor is set, the sweep has
    /// no multi-worker points, or every benchmark's wall speedup meets
    /// the floor.
    pub fn wall_gate_ok(&self) -> bool {
        match (self.wall_floor, self.min_speedup_wall()) {
            (Some(floor), Some(min)) => min >= floor,
            _ => true,
        }
    }

    /// Exit code: 0 all gates passed, 1 a trace-equality or wall-clock
    /// gate failed.
    pub fn exit_code(&self) -> u8 {
        u8::from(!self.all_traces_equal() || !self.wall_gate_ok())
    }
}

/// Splits `input` into up to `streams` chunks aligned to
/// [`STREAM_ALIGN`] bytes so every chunk frames cleanly under every
/// pipeline configuration. Short inputs yield fewer (never empty)
/// streams.
pub fn split_streams(input: &[u8], streams: usize) -> Vec<Vec<u8>> {
    let streams = streams.max(1);
    let chunk = input.len().div_ceil(streams);
    let chunk = chunk.div_ceil(STREAM_ALIGN) * STREAM_ALIGN;
    if chunk == 0 {
        return Vec::new();
    }
    input.chunks(chunk).map(<[u8]>::to_vec).collect()
}

/// Greedy list scheduling: each stream cost, in submission order, goes to
/// the least-loaded worker; the makespan is the heaviest worker's load.
/// With one worker this is exactly the sequential cost.
pub fn list_schedule_makespan(costs: &[Duration], workers: usize) -> Duration {
    let workers = workers.max(1);
    let mut load = vec![Duration::ZERO; workers];
    for &c in costs {
        let min = load
            .iter_mut()
            .min_by_key(|l| **l)
            .expect("at least one worker");
        *min += c;
    }
    load.into_iter().max().unwrap_or(Duration::ZERO)
}

fn mbps(bytes: usize, elapsed: Duration) -> f64 {
    bytes as f64 / 1e6 / elapsed.as_secs_f64().max(1e-12)
}

/// Runs the sweep.
///
/// # Errors
///
/// Returns the failure message on selector, compilation, or verification
/// infrastructure errors. A failed trace-equality gate is *not* an error
/// here — it is recorded in the report and reflected by
/// [`ThroughputReport::exit_code`].
pub fn run_throughput(opts: &ThroughputOptions) -> Result<ThroughputReport, String> {
    let started = Instant::now();
    let benches = select_benchmarks(&opts.only)?;
    let runs = opts.runs.max(1);
    let mut rows = Vec::with_capacity(benches.len());

    for bench in benches {
        let _span = sunder_telemetry::span("throughput.benchmark").field("bench", bench.name());
        let w = bench.build(opts.scale);
        let streams = Arc::new(split_streams(&w.input, opts.streams));
        let total_bytes: usize = streams.iter().map(Vec::len).sum();
        let mut points = Vec::new();
        let mut states = 0;
        let (mut cache_hits, mut cache_misses) = (0, 0);
        // One persistent helper pool sized for the widest worker count:
        // batches reuse parked threads instead of spawning per batch.
        let max_workers = opts.worker_counts.iter().copied().max().unwrap_or(1);

        for &shards in &opts.shard_counts {
            let service = BatchService::with_pool(
                ShardSpec::MaxShards(shards),
                opts.engine,
                max_workers.saturating_sub(1),
            );
            // Sequential per-stream costs: the cost model every worker
            // count of this shard count is scheduled from.
            let mut seq_costs: Vec<Duration> = Vec::new();
            for &workers in &opts.worker_counts {
                let batch_opts = BatchOptions::with_workers(workers);
                let mut best: Option<(Duration, sunder_shard::BatchReport)> = None;
                for _ in 0..runs {
                    let report = service
                        .submit_arc(&w.nfa, opts.config, &streams, &batch_opts)
                        .map_err(|e| format!("{}: pipeline compilation: {e}", bench.name()))?;
                    let wall = report.wall;
                    if best.as_ref().is_none_or(|(b, _)| wall < *b) {
                        best = Some((wall, report));
                    }
                }
                let (wall, report) = best.expect("runs >= 1");
                if workers <= 1 || seq_costs.is_empty() {
                    seq_costs = report.streams.iter().map(|s| s.elapsed).collect();
                }

                let pipeline = service
                    .cache()
                    .get_or_compile(&w.nfa, opts.config)
                    .map_err(|e| format!("{}: cache lookup: {e}", bench.name()))?;
                states = pipeline.nfa.num_states();
                let mut trace_equal = true;
                for s in &report.streams {
                    let ok = verify_stream(&pipeline, s, &streams[s.stream])
                        .map_err(|e| format!("{}: verification: {e}", bench.name()))?;
                    trace_equal &= ok;
                }

                let makespan = list_schedule_makespan(&seq_costs, workers);
                points.push(ThroughputPoint {
                    shards_requested: shards,
                    shards: report.shards,
                    workers,
                    wall,
                    busy: report.busy(),
                    makespan,
                    mbps_modeled: mbps(total_bytes, makespan),
                    mbps_wall: mbps(total_bytes, wall),
                    steals: report.steals,
                    streams_ok: report.ok_count(),
                    trace_equal,
                });
            }
            // The verifying get_or_compile calls above count as hits too;
            // subtract nothing — hits measure skipped re-transformations.
            cache_hits += service.cache().hits();
            cache_misses += service.cache().misses();
        }

        rows.push(BenchThroughput {
            name: bench.name(),
            total_bytes,
            streams: streams.len(),
            states,
            cache_hits,
            cache_misses,
            points,
        });
    }

    Ok(ThroughputReport {
        scale_name: opts.scale_name.clone(),
        config: opts.config.name(),
        engine: opts.engine.name(),
        streams: opts.streams,
        rows,
        wall: started.elapsed(),
        wall_floor: opts.wall_floor,
    })
}

/// Renders the machine-readable summary (the `BENCH_throughput.json`
/// payload).
pub fn render_json(report: &ThroughputReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"sunder-throughput-v2\",\n");
    out.push_str(&format!("  \"scale\": \"{}\",\n", report.scale_name));
    out.push_str(&format!("  \"config\": \"{}\",\n", report.config));
    out.push_str(&format!("  \"engine\": \"{}\",\n", report.engine));
    out.push_str(&format!("  \"streams\": {},\n", report.streams));
    out.push_str(&format!(
        "  \"all_traces_equal\": {},\n",
        report.all_traces_equal()
    ));
    // Wall clock is the gated truth; the modeled figure is advisory.
    match report.min_speedup_wall() {
        Some(s) => out.push_str(&format!("  \"min_speedup_wall\": {s:.3},\n")),
        None => out.push_str("  \"min_speedup_wall\": null,\n"),
    }
    match report.wall_floor {
        Some(f) => out.push_str(&format!("  \"wall_floor\": {f:.3},\n")),
        None => out.push_str("  \"wall_floor\": null,\n"),
    }
    out.push_str(&format!("  \"wall_gate_ok\": {},\n", report.wall_gate_ok()));
    match report.min_speedup_modeled() {
        Some(s) => out.push_str(&format!("  \"min_speedup_modeled\": {s:.3},\n")),
        None => out.push_str("  \"min_speedup_modeled\": null,\n"),
    }
    out.push_str("  \"benchmarks\": [\n");
    for (i, row) in report.rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"total_bytes\": {}, \"streams\": {}, \
             \"states\": {}, \"cache_hits\": {}, \"cache_misses\": {},\n",
            row.name, row.total_bytes, row.streams, row.states, row.cache_hits, row.cache_misses,
        ));
        match row.speedup_wall() {
            Some(s) => out.push_str(&format!("     \"speedup_wall\": {s:.3},\n")),
            None => out.push_str("     \"speedup_wall\": null,\n"),
        }
        match row.speedup_modeled() {
            Some(s) => out.push_str(&format!("     \"speedup_modeled\": {s:.3},\n")),
            None => out.push_str("     \"speedup_modeled\": null,\n"),
        }
        out.push_str("     \"points\": [\n");
        for (j, p) in row.points.iter().enumerate() {
            out.push_str(&format!(
                "       {{\"shards_requested\": {}, \"shards\": {}, \"workers\": {}, \
                 \"wall_ms\": {:.3}, \"busy_ms\": {:.3}, \"modeled_makespan_ms\": {:.3}, \
                 \"mbps_modeled\": {:.3}, \"mbps_wall\": {:.3}, \"steals\": {}, \
                 \"streams_ok\": {}, \"trace_equal\": {}}}{}\n",
                p.shards_requested,
                p.shards,
                p.workers,
                p.wall.as_secs_f64() * 1e3,
                p.busy.as_secs_f64() * 1e3,
                p.makespan.as_secs_f64() * 1e3,
                p.mbps_modeled,
                p.mbps_wall,
                p.steals,
                p.streams_ok,
                p.trace_equal,
                if j + 1 < row.points.len() { "," } else { "" },
            ));
        }
        out.push_str("     ]}");
        out.push_str(if i + 1 < report.rows.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders the human-readable sweep table.
pub fn render_table(report: &ThroughputReport) -> String {
    let mut table = TextTable::new([
        "Benchmark",
        "Shards",
        "Workers",
        "Wall ms",
        "Makespan ms",
        "MB/s (model)",
        "MB/s (wall)",
        "Steals",
        "TraceEq",
    ]);
    for row in &report.rows {
        for p in &row.points {
            table.row([
                row.name.to_string(),
                format!("{}/{}", p.shards, p.shards_requested),
                format!("{}", p.workers),
                format!("{:.2}", p.wall.as_secs_f64() * 1e3),
                format!("{:.2}", p.makespan.as_secs_f64() * 1e3),
                format!("{:.1}", p.mbps_modeled),
                format!("{:.1}", p.mbps_wall),
                format!("{}", p.steals),
                format!("{}", p.trace_equal),
            ]);
        }
    }
    let mut out = table.render();
    if let Some(s) = report.min_speedup_wall() {
        out.push_str(&format!(
            "\nmin wall-clock speedup (max workers vs 1, gated): {s:.2}x across {} benchmarks",
            report.rows.len()
        ));
        match report.wall_floor {
            Some(floor) => out.push_str(&format!(
                " — floor {floor:.2}x: {}\n",
                if report.wall_gate_ok() { "OK" } else { "FAIL" }
            )),
            None => out.push('\n'),
        }
    }
    if let Some(s) = report.min_speedup_modeled() {
        out.push_str(&format!(
            "min modeled speedup (max workers vs 1, advisory): {s:.2}x\n"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_streams_aligns_and_covers() {
        let input: Vec<u8> = (0..100).collect();
        let chunks = split_streams(&input, 8);
        assert!(chunks.len() <= 8 && !chunks.is_empty());
        let glued: Vec<u8> = chunks.iter().flatten().copied().collect();
        assert_eq!(glued, input, "chunks must cover the input exactly");
        for c in &chunks[..chunks.len() - 1] {
            assert_eq!(c.len() % STREAM_ALIGN, 0, "non-final chunks are aligned");
        }
        assert!(split_streams(&[], 4).is_empty());
    }

    #[test]
    fn list_schedule_matches_sequential_and_parallel_bounds() {
        let costs: Vec<Duration> = (1..=8).map(Duration::from_millis).collect();
        let seq = list_schedule_makespan(&costs, 1);
        assert_eq!(seq, Duration::from_millis(36));
        let par = list_schedule_makespan(&costs, 8);
        // Every stream on its own worker: makespan = max cost.
        assert_eq!(par, Duration::from_millis(8));
        assert_eq!(list_schedule_makespan(&[], 4), Duration::ZERO);
    }

    #[test]
    fn sweep_runs_gated_and_models_speedup() {
        let opts = ThroughputOptions {
            shard_counts: vec![1, 4],
            worker_counts: vec![1, 8],
            only: vec![OnlyFilter::exact("ExactMatch")],
            ..ThroughputOptions::default()
        };
        let report = run_throughput(&opts).unwrap();
        assert_eq!(report.rows.len(), 1);
        let row = &report.rows[0];
        assert_eq!(row.points.len(), 4);
        assert!(report.all_traces_equal(), "gate must pass on a clean run");
        assert_eq!(report.exit_code(), 0);
        // One compilation per shard count; re-submissions hit the cache.
        assert_eq!(row.cache_misses, 2);
        assert!(row.cache_hits >= 2);
        let json = render_json(&report);
        assert!(json.contains("\"schema\": \"sunder-throughput-v2\""));
        assert!(json.contains("\"trace_equal\": true"));
        assert!(json.contains("\"min_speedup_wall\""));
        assert!(json.contains("\"speedup_wall\""));
        let speedup = row.speedup_modeled().expect("multi-worker sweep");
        assert!(
            speedup >= 1.0,
            "modeled speedup must not regress: {speedup}"
        );
        row.speedup_wall().expect("wall speedup must be measured");
    }

    #[test]
    fn wall_floor_gates_the_exit_code() {
        let opts = ThroughputOptions {
            shard_counts: vec![1],
            worker_counts: vec![1, 2],
            only: vec![OnlyFilter::exact("ExactMatch")],
            // An unreachable floor must fail the gate...
            wall_floor: Some(1e9),
            ..ThroughputOptions::default()
        };
        let report = run_throughput(&opts).unwrap();
        assert!(report.all_traces_equal());
        assert!(!report.wall_gate_ok());
        assert_eq!(report.exit_code(), 1);
        let json = render_json(&report);
        assert!(json.contains("\"wall_gate_ok\": false"));
        // ...and a trivially low floor must pass it.
        let passing = ThroughputReport {
            wall_floor: Some(1e-9),
            ..report
        };
        assert!(passing.wall_gate_ok());
        assert_eq!(passing.exit_code(), 0);
    }
}
