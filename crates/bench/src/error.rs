//! A minimal `anyhow`-style error path for the bench binaries.
//!
//! The bench binaries talk to the filesystem and parse arguments; both
//! can fail in ways a user can fix, so they must exit with a message and
//! a nonzero code — not a panic backtrace. [`BenchError`] is a plain
//! message-with-context chain, the [`Context`] extension adds context to
//! any `Result`, and [`bench_main`] is the shared `main` wrapper that
//! prints the chain and converts it to an exit code.
//!
//! ```
//! use sunder_bench::error::{bail, BenchError, Context};
//!
//! fn parse(n: &str) -> Result<u32, BenchError> {
//!     if n.is_empty() {
//!         bail!("empty argument");
//!     }
//!     n.parse().with_context(|| format!("invalid number {n:?}"))
//! }
//! assert!(parse("12").is_ok());
//! assert!(parse("x").unwrap_err().to_string().contains("invalid number"));
//! ```

use std::process::ExitCode;

/// A contextual error: a message plus the chain of causes below it.
#[derive(Debug)]
pub struct BenchError {
    message: String,
    source: Option<Box<BenchError>>,
}

impl BenchError {
    /// An error with a bare message.
    pub fn msg(message: impl Into<String>) -> Self {
        BenchError {
            message: message.into(),
            source: None,
        }
    }

    /// Wraps this error under a higher-level context message.
    pub fn context(self, message: impl Into<String>) -> Self {
        BenchError {
            message: message.into(),
            source: Some(Box::new(self)),
        }
    }
}

impl std::fmt::Display for BenchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)?;
        let mut cause = self.source.as_deref();
        while let Some(c) = cause {
            write!(f, ": {}", c.message)?;
            cause = c.source.as_deref();
        }
        Ok(())
    }
}

// NOTE: `BenchError` deliberately does NOT implement `std::error::Error`.
// Like `anyhow::Error`, that is what makes the blanket `From<E: Error>`
// below coherent (the reflexive `From<BenchError> for BenchError` would
// otherwise collide with it).
impl<E: std::error::Error> From<E> for BenchError {
    fn from(e: E) -> Self {
        // Fold std error sources into the chain so `Display` shows them.
        let mut chain = Vec::new();
        chain.push(e.to_string());
        let mut src = e.source();
        while let Some(s) = src {
            chain.push(s.to_string());
            src = s.source();
        }
        let mut it = chain.into_iter().rev();
        let mut err = BenchError::msg(it.next().unwrap_or_default());
        for message in it {
            err = err.context(message);
        }
        err
    }
}

/// Constructs a `BenchError` from a format string (like `anyhow::anyhow!`).
#[macro_export]
macro_rules! bench_err {
    ($($arg:tt)*) => {
        $crate::error::BenchError::msg(format!($($arg)*))
    };
}

/// Returns early with a `BenchError` (like `anyhow::bail!`).
#[macro_export]
macro_rules! bail {
    ($($arg:tt)*) => {
        return Err($crate::bench_err!($($arg)*).into())
    };
}

pub use crate::{bail, bench_err};

/// Extension adding context to fallible operations.
pub trait Context<T> {
    /// Wraps the error with `message`.
    fn context(self, message: impl Into<String>) -> Result<T, BenchError>;

    /// Wraps the error with a lazily built message.
    fn with_context<S: Into<String>>(self, f: impl FnOnce() -> S) -> Result<T, BenchError>;
}

impl<T, E: Into<BenchError>> Context<T> for Result<T, E> {
    fn context(self, message: impl Into<String>) -> Result<T, BenchError> {
        self.map_err(|e| e.into().context(message))
    }

    fn with_context<S: Into<String>>(self, f: impl FnOnce() -> S) -> Result<T, BenchError> {
        self.map_err(|e| e.into().context(f()))
    }
}

impl<T> Context<T> for Option<T> {
    fn context(self, message: impl Into<String>) -> Result<T, BenchError> {
        self.ok_or_else(|| BenchError::msg(message))
    }

    fn with_context<S: Into<String>>(self, f: impl FnOnce() -> S) -> Result<T, BenchError> {
        self.ok_or_else(|| BenchError::msg(f()))
    }
}

/// Shared `main` wrapper: runs `run`, printing the error chain to stderr
/// and exiting 2 (usage/environment error) on failure. `run` returns the
/// process exit code on success so binaries can signal partial failure
/// (e.g. the suite's "completed with failed jobs" code).
pub fn bench_main(run: impl FnOnce() -> Result<u8, BenchError>) -> ExitCode {
    match run() {
        Ok(code) => ExitCode::from(code),
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_renders_the_context_chain() {
        let e = BenchError::msg("root cause")
            .context("middle")
            .context("top");
        assert_eq!(e.to_string(), "top: middle: root cause");
    }

    #[test]
    fn result_context_wraps_io_errors() {
        let r: Result<String, _> = std::fs::read_to_string("/definitely/not/here");
        let e = r.context("read config").unwrap_err();
        let s = e.to_string();
        assert!(s.starts_with("read config: "), "{s}");
    }

    #[test]
    fn option_context_becomes_error() {
        let v: Option<u32> = None;
        let e = v.with_context(|| "missing value").unwrap_err();
        assert_eq!(e.to_string(), "missing value");
        assert_eq!(Some(3).context("unused").unwrap(), 3);
    }

    #[test]
    fn macros_build_errors() {
        fn fails() -> Result<(), BenchError> {
            bail!("bad {}", 7);
        }
        assert_eq!(fails().unwrap_err().to_string(), "bad 7");
        assert_eq!(bench_err!("x{}", 1).to_string(), "x1");
    }

    #[test]
    fn std_error_sources_fold_into_chain() {
        let parse_err = "abc".parse::<u32>().unwrap_err();
        let e: BenchError = parse_err.into();
        assert!(e.to_string().contains("invalid digit"), "{e}");
    }
}
