//! Regression locks for the single-stream fast path.
//!
//! Two behaviors pinned here were observable bugs before the fast path
//! landed: the adaptive selector used to take a *losing* dense switch on
//! Brill (the dense twin is ~6x slower per cycle there, yet the old
//! cost-model fit — calibrated against the slower pre-fast-path sparse
//! engine — modeled it as a win), and the prefilter's skip accounting is
//! the foundation of the suite's wall-clock numbers, so its telemetry
//! counter must agree with a hand-computed input exactly.
//!
//! The telemetry test owns the process-global recorder; keep it the only
//! test in this binary that calls `sunder_telemetry::init`.

use sunder_automata::regex::compile_regex;
use sunder_automata::InputView;
use sunder_sim::{AdaptiveEngine, EngineKind, Simulator, TraceSink};
use sunder_workloads::{Benchmark, Scale};

/// Brill is sparse-friendly: moderate frontier (avg ≈ 1.3 active states)
/// against a 1263-state automaton whose dense state vector is 20 words.
/// The refitted cost model must keep the adaptive engine sparse for the
/// whole run — before the refit it entered dense and ran ~4x slower
/// than the sparse engine on the same input.
#[test]
fn brill_adaptive_never_takes_a_losing_dense_switch() {
    let w = Benchmark::Brill.build(Scale::small());
    let view = InputView::new(&w.input, w.nfa.symbol_bits(), w.nfa.stride()).expect("framing");

    let mut adaptive = AdaptiveEngine::new(&w.nfa);
    let mut adaptive_trace = TraceSink::new();
    adaptive.run(&view, &mut adaptive_trace);
    assert_eq!(
        adaptive.switch_count(),
        0,
        "the cost model must never model Brill's 20-word dense step as \
         cheaper than its ~1.3-candidate sparse step"
    );
    assert!(adaptive.degrade_reason().is_none());

    // Staying sparse must not be a trace-visible decision.
    let mut sparse = Simulator::new(&w.nfa);
    let mut sparse_trace = TraceSink::new();
    sparse.run(&view, &mut sparse_trace);
    assert_eq!(adaptive_trace.events, sparse_trace.events);
    assert!(
        !adaptive_trace.events.is_empty(),
        "Brill must actually report, or the equality above is vacuous"
    );
}

/// The `prefilter_skipped_total` counter must match the same hand
/// simulation that pins `Simulator::prefilter_skipped`, and the
/// build-time `state_encodings_total{kind}` histogram must reflect the
/// automaton's charsets.
#[test]
fn prefilter_and_encoding_telemetry_match_hand_computed_input() {
    // "ab" unanchored: the only all-input start accepts 'a', so the LUT
    // is exactly {'a'}. Hand simulation of b"xxxxabxxxa":
    //   cycles 0-3  'x' with empty frontier  -> skipped (4)
    //   cycle  4    'a' LUT hit              -> stepped
    //   cycle  5    'b', frontier non-empty  -> stepped, reports
    //   cycle  6    'x', frontier non-empty  -> stepped, frontier dies
    //   cycles 7-8  'x' with empty frontier  -> skipped (2)
    //   cycle  9    'a' LUT hit              -> stepped
    let nfa = compile_regex("ab", 0).expect("compile");
    let input = InputView::new(b"xxxxabxxxa", 8, 1).expect("framing");

    sunder_telemetry::init(sunder_telemetry::Config::metrics());
    let mut engine = EngineKind::Sparse.build(&nfa);
    let mut trace = TraceSink::new();
    engine.run(&input, &mut trace);
    let dump = sunder_telemetry::finish().expect("telemetry session");

    assert_eq!(trace.cycle_id_pairs(), vec![(5, 0)]);
    assert_eq!(
        dump.metrics.counter("prefilter_skipped_total", &[]),
        Some(6),
        "4 + 2 skipped cycles"
    );
    // Both states ('a' and 'b') hold single-symbol charsets.
    assert_eq!(
        dump.metrics
            .counter("state_encodings_total", &[("kind", "one")]),
        Some(2)
    );
}
