//! Acceptance test for the resilient suite harness (the ISSUE's headline
//! criterion): a `FaultPlan` injecting a panic, a timeout, and a
//! dense-build failure into a full 19-benchmark suite run must
//!
//! * complete every remaining benchmark,
//! * report the three failures/degradations with correct attribution in
//!   the JSON output,
//! * exit nonzero, and
//! * leave the surviving rows byte-identical to a fault-free run.

use std::time::Duration;

use sunder_bench::suite::{render_json, run_suite, SuiteOptions};
use sunder_resilience::{Fault, FaultKind, FaultPlan};
use sunder_workloads::{Benchmark, Scale};

const PANIC_AT: usize = 3;
const STALL_AT: usize = 10;
const DEGRADE_AT: usize = 14;

fn tiny_opts() -> SuiteOptions {
    SuiteOptions {
        scale: Scale::tiny(),
        scale_name: "tiny".to_string(),
        runs: 0, // skip timing: surviving rows are byte-deterministic
        workers: 4,
        deadline: Some(Duration::from_millis(4_000)),
        plan: FaultPlan::none(),
        only: Vec::new(),
    }
}

fn faulted_opts() -> SuiteOptions {
    let mut opts = tiny_opts();
    // The stall must comfortably exceed the deadline; everything else at
    // tiny scale finishes in milliseconds.
    opts.deadline = Some(Duration::from_millis(1_000));
    opts.plan = FaultPlan::new(
        42,
        vec![
            Fault {
                item: PANIC_AT,
                kind: FaultKind::Panic,
            },
            Fault {
                item: STALL_AT,
                kind: FaultKind::Stall { millis: 3_000 },
            },
            Fault {
                item: DEGRADE_AT,
                kind: FaultKind::DenseBuildFailure,
            },
        ],
    );
    opts
}

/// The JSON benchmark rows, keyed by line content (one object per line).
fn json_rows(json: &str) -> Vec<String> {
    json.lines()
        .filter(|l| l.contains("\"name\""))
        .map(|l| l.trim_end_matches(',').trim().to_string())
        .collect()
}

#[test]
fn panic_timeout_and_degradation_yield_partial_results_with_attribution() {
    let clean = run_suite(&tiny_opts());
    assert!(clean.summary.all_ok(), "clean run: {}", clean.summary);
    assert_eq!(clean.exit_code(), 0);

    let report = run_suite(&faulted_opts());

    // Every benchmark is accounted for, in order.
    assert_eq!(report.jobs.len(), Benchmark::ALL.len());
    for (i, job) in report.jobs.iter().enumerate() {
        assert_eq!(job.index, i);
        assert_eq!(job.name, Benchmark::ALL[i].name());
    }

    // Exact attribution of the three injected faults.
    assert_eq!(report.jobs[PANIC_AT].outcome.status(), "panicked");
    assert_eq!(report.jobs[STALL_AT].outcome.status(), "timed_out");
    assert_eq!(report.jobs[DEGRADE_AT].outcome.status(), "degraded");
    let summary = report.summary;
    assert_eq!(
        (summary.panicked, summary.timed_out, summary.degraded),
        (1, 1, 1),
        "{summary}"
    );
    assert_eq!(summary.ok, Benchmark::ALL.len() - 3);

    // The run completes with partial results and a nonzero exit.
    assert_ne!(report.exit_code(), 0);
    assert_eq!(report.exit_code(), 3);

    // The degraded benchmark still ran to completion on the sparse
    // fallback with engine-identical traces.
    let degraded = report.jobs[DEGRADE_AT]
        .outcome
        .value()
        .expect("degraded rows keep their value");
    assert!(degraded.traces_equal);

    // JSON attribution: each faulted row carries its name, status, and a
    // detail string.
    let json = render_json(&report);
    let rows = json_rows(&json);
    assert_eq!(rows.len(), Benchmark::ALL.len());
    let panic_name = Benchmark::ALL[PANIC_AT].name();
    let stall_name = Benchmark::ALL[STALL_AT].name();
    let degrade_name = Benchmark::ALL[DEGRADE_AT].name();
    assert!(rows[PANIC_AT].contains(&format!("\"name\": \"{panic_name}\"")));
    assert!(rows[PANIC_AT].contains("\"status\": \"panicked\""));
    assert!(rows[PANIC_AT].contains("injected panic"));
    assert!(rows[STALL_AT].contains(&format!("\"name\": \"{stall_name}\"")));
    assert!(rows[STALL_AT].contains("\"status\": \"timed_out\""));
    assert!(rows[STALL_AT].contains("deadline"));
    assert!(rows[DEGRADE_AT].contains(&format!("\"name\": \"{degrade_name}\"")));
    assert!(rows[DEGRADE_AT].contains("\"status\": \"degraded\""));
    assert!(rows[DEGRADE_AT].contains("\"detail\""));

    // Surviving rows are byte-identical to the fault-free run's rows.
    let clean_rows = json_rows(&render_json(&clean));
    for (i, (clean_row, faulted_row)) in clean_rows.iter().zip(&rows).enumerate() {
        if i == PANIC_AT || i == STALL_AT || i == DEGRADE_AT {
            continue;
        }
        assert_eq!(
            clean_row,
            faulted_row,
            "benchmark {} drifted under fault injection",
            Benchmark::ALL[i].name()
        );
    }
}

#[test]
fn fault_plan_round_trips_through_its_text_format() {
    let plan = faulted_opts().plan;
    let text = plan.to_text();
    let back = FaultPlan::from_text(&text).expect("well-formed plan text");
    assert_eq!(back, plan);
}
