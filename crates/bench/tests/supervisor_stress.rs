//! Stress matrix for the supervised parallel runner: worker counts ×
//! seeded panic/timeout positions. Two properties are pinned across the
//! whole matrix:
//!
//! 1. **Byte-identical ordering of surviving results** — report `i`
//!    always corresponds to item `i`, with the surviving values equal to
//!    the fault-free run's values, regardless of worker count or where
//!    the faults land.
//! 2. **Exact failure attribution** — every injected fault surfaces as
//!    exactly one structured outcome on exactly the faulted item, with
//!    the item's name in the report.

use std::time::Duration;

use sunder_resilience::{
    supervise, JobOutcome, JobValue, SplitMix64, SupervisorPolicy, SupervisorSummary,
};

const ITEMS: usize = 24;

/// Deterministically picks `count` distinct positions in `0..ITEMS`.
fn positions(seed: u64, count: usize) -> Vec<usize> {
    let mut rng = SplitMix64::new(seed);
    let mut picked = Vec::new();
    while picked.len() < count {
        let p = (rng.next() % ITEMS as u64) as usize;
        if !picked.contains(&p) {
            picked.push(p);
        }
    }
    picked
}

#[test]
fn surviving_results_are_identical_across_workers_and_fault_positions() {
    let items: Vec<u64> = (0..ITEMS as u64).collect();
    // Fault-free reference: what every surviving slot must still hold.
    let reference: Vec<u64> = items.iter().map(|x| x * x + 1).collect();

    for seed in [1u64, 7, 42] {
        let panics = positions(seed, 3);
        let stalls = positions(seed ^ 0xDEAD_BEEF, 2);
        for workers in [1usize, 2, 4, 8] {
            let policy = SupervisorPolicy {
                deadline: Some(Duration::from_millis(40)),
                ..SupervisorPolicy::default()
            };
            let reports = supervise(
                &items,
                workers,
                &policy,
                |i, _| format!("item-{i}"),
                |i, &x, _ctx| {
                    if panics.contains(&i) {
                        panic!("injected panic at {i}");
                    }
                    if stalls.contains(&i) {
                        // Sleep well past the deadline; classified
                        // post-hoc as TimedOut by the supervisor.
                        std::thread::sleep(Duration::from_millis(120));
                    }
                    Ok(JobValue::Ok(x * x + 1))
                },
            );

            // Property 1: order and surviving values.
            assert_eq!(reports.len(), ITEMS);
            for (i, report) in reports.iter().enumerate() {
                assert_eq!(report.index, i, "seed {seed} workers {workers}");
                assert_eq!(report.name, format!("item-{i}"));
                if let Some(&v) = report.outcome.value() {
                    assert_eq!(
                        v, reference[i],
                        "seed {seed} workers {workers} item {i}: surviving value drifted"
                    );
                }
            }

            // Property 2: exact attribution, fault by fault. A stall
            // position that also panics is counted as a panic (the panic
            // fires first), so partition accordingly.
            for (i, report) in reports.iter().enumerate() {
                if panics.contains(&i) {
                    match &report.outcome {
                        JobOutcome::Panicked { message } => {
                            assert_eq!(message, &format!("injected panic at {i}"))
                        }
                        other => panic!("item {i}: expected panic, got {}", other.status()),
                    }
                } else if stalls.contains(&i) {
                    assert!(
                        matches!(report.outcome, JobOutcome::TimedOut { elapsed } if elapsed >= Duration::from_millis(40)),
                        "item {i}: expected timeout, got {}",
                        report.outcome.status()
                    );
                } else {
                    assert!(
                        matches!(report.outcome, JobOutcome::Ok(_)),
                        "item {i}: expected ok, got {}",
                        report.outcome.status()
                    );
                }
            }

            // Summary arithmetic is exact.
            let stall_only = stalls.iter().filter(|p| !panics.contains(p)).count();
            let summary = SupervisorSummary::of(&reports);
            assert_eq!(summary.panicked, panics.len());
            assert_eq!(summary.timed_out, stall_only);
            assert_eq!(summary.ok, ITEMS - panics.len() - stall_only);
            assert_eq!(summary.total(), ITEMS);
            assert!(!summary.no_failures());
        }
    }
}

#[test]
fn fault_free_matrix_is_all_ok_for_every_worker_count() {
    let items: Vec<u64> = (0..ITEMS as u64).collect();
    let mut renders: Vec<String> = Vec::new();
    for workers in [1usize, 2, 3, 8, 64] {
        let reports = supervise(
            &items,
            workers,
            &SupervisorPolicy::default(),
            |i, _| format!("item-{i}"),
            |_, &x, _| Ok(JobValue::Ok(x * 3)),
        );
        let summary = SupervisorSummary::of(&reports);
        assert!(summary.all_ok(), "workers {workers}: {summary}");
        // Byte-identical rendering of the ordered (index, name, value)
        // triples across worker counts.
        renders.push(
            reports
                .iter()
                .map(|r| format!("{}:{}:{:?}\n", r.index, r.name, r.outcome.value()))
                .collect(),
        );
    }
    assert!(renders.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn every_position_can_fail_without_disturbing_neighbors() {
    // Sweep the single-panic position across all items (cheap jobs, one
    // worker count) — no position leaks into a neighbor's outcome.
    let items: Vec<u64> = (0..ITEMS as u64).collect();
    for bad in 0..ITEMS {
        let reports = supervise(
            &items,
            4,
            &SupervisorPolicy::default(),
            |i, _| format!("item-{i}"),
            move |i, &x, _| {
                if i == bad {
                    panic!("boom {i}");
                }
                Ok(JobValue::Ok(x))
            },
        );
        let summary = SupervisorSummary::of(&reports);
        assert_eq!((summary.ok, summary.panicked), (ITEMS - 1, 1), "bad {bad}");
        assert_eq!(reports[bad].outcome.status(), "panicked");
        for (i, r) in reports.iter().enumerate() {
            if i != bad {
                assert_eq!(r.outcome.value(), Some(&items[i]));
            }
        }
    }
}
