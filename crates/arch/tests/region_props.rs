//! Property tests: the reporting region's ring-buffer behavior matches a
//! reference model (a VecDeque of entries) under arbitrary interleavings
//! of writes, FIFO drains, flushes, peeks, and summarizations.

use std::collections::VecDeque;

use proptest::prelude::*;
use sunder_arch::reporting::{ReportRegion, WriteOutcome};
use sunder_arch::{Subarray, SunderConfig};
use sunder_transform::Rate;

#[derive(Debug, Clone)]
enum Op {
    Write { mask: u32, cycle: u32 },
    DrainRow,
    Flush,
    Peek(u8),
    Summarize,
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (any::<u32>(), any::<u32>()).prop_map(|(mask, cycle)| Op::Write {
            mask: mask & 0xFFF,
            cycle: cycle & 0xFFFFF,
        }),
        2 => Just(Op::DrainRow),
        1 => Just(Op::Flush),
        2 => any::<u8>().prop_map(Op::Peek),
        1 => Just(Op::Summarize),
    ]
}

fn rates() -> impl Strategy<Value = Rate> {
    prop::sample::select(vec![Rate::Nibble1, Rate::Nibble2, Rate::Nibble4])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn region_matches_reference_model(rate in rates(), ops in prop::collection::vec(op(), 1..300)) {
        let config = SunderConfig::with_rate(rate);
        let mut subarray = Subarray::new();
        let mut region = ReportRegion::new(&config);
        let mut model: VecDeque<(u32, u32)> = VecDeque::new();
        let capacity = config.region_capacity();

        for op in ops {
            match op {
                Op::Write { mask, cycle } => {
                    let outcome = region.write(&mut subarray, mask, u64::from(cycle));
                    if model.len() < capacity {
                        prop_assert_eq!(outcome, WriteOutcome::Stored);
                        model.push_back((mask, cycle));
                    } else {
                        prop_assert_eq!(outcome, WriteOutcome::Full);
                    }
                }
                Op::DrainRow => {
                    let drained = region.drain_row(&subarray);
                    let expect = config.entries_per_row().min(model.len());
                    prop_assert_eq!(drained.len(), expect);
                    for e in drained {
                        let (mask, cycle) = model.pop_front().expect("model entry");
                        prop_assert_eq!(e.report_mask, mask);
                        prop_assert_eq!(e.cycle, cycle);
                    }
                }
                Op::Flush => {
                    let flushed = region.flush(&mut subarray);
                    prop_assert_eq!(flushed.len(), model.len());
                    for e in flushed {
                        let (mask, cycle) = model.pop_front().expect("model entry");
                        prop_assert_eq!(e.report_mask, mask);
                        prop_assert_eq!(e.cycle, cycle);
                    }
                    prop_assert!(region.is_empty());
                }
                Op::Peek(i) => {
                    let i = u64::from(i);
                    match region.peek(&subarray, i) {
                        Some(e) => {
                            let (mask, cycle) = model[i as usize];
                            prop_assert_eq!(e.report_mask, mask);
                            prop_assert_eq!(e.cycle, cycle);
                        }
                        None => prop_assert!(i >= model.len() as u64),
                    }
                }
                Op::Summarize => {
                    // The summary covers at least the live entries (stale
                    // drained bits may linger until overwritten — the
                    // hardware's OR sees whatever is in the rows).
                    let summary = region.summarize(&subarray);
                    let live: u32 = model.iter().map(|&(m, _)| m).fold(0, |a, b| a | b);
                    prop_assert_eq!(summary & live, live, "summary must cover live entries");
                }
            }
            prop_assert_eq!(region.len(), model.len() as u64);
            prop_assert_eq!(region.is_full(), model.len() == capacity);
        }
    }
}
