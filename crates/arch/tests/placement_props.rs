//! Property tests for placement invariants: every state lands in exactly
//! one column, report states in report columns, capacities respected.

use proptest::prelude::*;
use sunder_arch::config::ROW_BITS;
use sunder_arch::{place, SunderConfig};
use sunder_automata::{Nfa, StartKind, StateId, Ste, SymbolSet};
use sunder_transform::Rate;

#[derive(Debug, Clone)]
struct Spec {
    chains: Vec<(u8, bool)>, // (length 1..=40, reporting tail)
    extra_edges: Vec<(u16, u16)>,
}

fn spec() -> impl Strategy<Value = Spec> {
    let chains = prop::collection::vec((1u8..40, any::<bool>()), 1..25);
    let extra = prop::collection::vec((any::<u16>(), any::<u16>()), 0..10);
    (chains, extra).prop_map(|(chains, extra_edges)| Spec {
        chains,
        extra_edges,
    })
}

fn build(spec: &Spec) -> Nfa {
    let mut nfa = Nfa::new(4);
    for &(len, reporting) in &spec.chains {
        let mut prev: Option<StateId> = None;
        for i in 0..len {
            let mut ste = Ste::new(SymbolSet::singleton(4, u16::from(i % 16)));
            if i == 0 {
                ste = ste.start(StartKind::AllInput);
            }
            if reporting && i == len - 1 {
                ste = ste.report(u32::from(len) * 100 + u32::from(i));
            }
            let id = nfa.add_state(ste);
            if let Some(p) = prev {
                nfa.add_edge(p, id);
            }
            prev = Some(id);
        }
    }
    let n = nfa.num_states() as u16;
    for &(a, b) in &spec.extra_edges {
        nfa.add_edge(StateId(u32::from(a % n)), StateId(u32::from(b % n)));
    }
    nfa
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn placement_invariants(spec in spec()) {
        let nfa = build(&spec);
        let config = SunderConfig::with_rate(Rate::Nibble1);
        let placement = place(&nfa, &config).unwrap();

        // 1. Every state placed exactly once, consistent both ways.
        let mut seen = vec![false; nfa.num_states()];
        for (pi, pu) in placement.pus.iter().enumerate() {
            prop_assert!(pu.len() <= ROW_BITS);
            let mut cols = vec![false; ROW_BITS];
            let mut reports = 0;
            for &(col, state) in &pu.columns {
                prop_assert!(!cols[col as usize], "column collision");
                cols[col as usize] = true;
                prop_assert!(!seen[state.index()], "state placed twice");
                seen[state.index()] = true;
                let loc = placement.locations[state.index()];
                prop_assert_eq!(loc.pu as usize, pi);
                prop_assert_eq!(loc.col, col);
                // 2. Report states in report columns, others outside.
                let in_tail = (col as usize) >= ROW_BITS - config.report_columns;
                prop_assert_eq!(nfa.state(state).is_reporting(), in_tail);
                if in_tail {
                    reports += 1;
                }
            }
            prop_assert!(reports <= config.report_columns);
        }
        prop_assert!(seen.iter().all(|&s| s), "every state placed");

        // 3. Cross-edge count matches the location map.
        let mut cross = 0;
        for (id, _) in nfa.states() {
            for &t in nfa.successors(id) {
                if placement.locations[id.index()].pu != placement.locations[t.index()].pu {
                    cross += 1;
                }
            }
        }
        prop_assert_eq!(cross, placement.cross_pu_edges);
    }
}
