//! Cycle-level model of the Sunder in-SRAM automata-processing
//! microarchitecture (paper, Section 5).
//!
//! The crate models every structure in the paper's Figure 4:
//!
//! * [`subarray`] — the 256×256 dual-port 8T subarray with multi-row
//!   activation (matching) and column-wise OR (summarization);
//! * [`placement`] — mapping automata onto processing units under the
//!   256-state and `m`-report-column capacities;
//! * [`reporting`] — the in-place reporting region: ring buffer of
//!   `(m, n)`-bit entries, FIFO drain, flush, selective read, and
//!   summarization;
//! * [`machine`] — the executing device: state matching, local crossbar +
//!   global switch interconnect, reporting, and stall accounting;
//! * [`sensitivity`] — the analytic Figure 10 model.
//!
//! The machine is verified against the functional simulator: both produce
//! identical report streams for the same strided automaton (see the
//! integration tests).
//!
//! ```
//! use sunder_automata::regex::compile_rule_set;
//! use sunder_automata::InputView;
//! use sunder_arch::{SunderConfig, SunderMachine};
//! use sunder_transform::{transform_to_rate, Rate};
//!
//! let byte_nfa = compile_rule_set(&["evil", "bad[0-9]"])?;
//! let nibble = transform_to_rate(&byte_nfa, Rate::Nibble4)?;
//! let config = SunderConfig::with_rate(Rate::Nibble4);
//! let mut machine = SunderMachine::new(&nibble, config)?;
//! let input = InputView::new(b"an evil bad7 stream", 4, 4)?;
//! let mut reports = sunder_sim::CountSink::new();
//! let stats = machine.run(&input, &mut reports);
//! assert_eq!(reports.reports, 2);
//! assert_eq!(stats.reporting_overhead(), 1.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod energy;
pub mod interconnect;
pub mod machine;
pub mod placement;
pub mod reporting;
pub mod sensitivity;
pub mod stats;
pub mod subarray;

pub use config::SunderConfig;
pub use energy::EnergyEstimate;
pub use interconnect::InterconnectUsage;
pub use machine::{MachineFault, PlacementSummary, SunderMachine};
pub use placement::{place, Placement, PlacementError};
pub use reporting::{ReportEntry, ReportRegion};
pub use stats::{RunStats, StallAttribution, StallCause};
pub use subarray::Subarray;

#[cfg(test)]
mod machine_tests {
    use super::*;
    use sunder_automata::regex::compile_rule_set;
    use sunder_automata::InputView;
    use sunder_sim::{CountSink, Simulator, TraceSink};
    use sunder_transform::{transform_to_rate, Rate};

    /// The central correctness property: the hardware model and the
    /// functional simulator produce the same report stream.
    fn assert_machine_matches_sim(patterns: &[&str], input: &[u8], rate: Rate) {
        let byte_nfa = compile_rule_set(patterns).unwrap();
        let strided = transform_to_rate(&byte_nfa, rate).unwrap();
        let view = InputView::new(input, 4, rate.nibbles_per_cycle()).unwrap();

        let mut sim = Simulator::new(&strided);
        let mut sim_trace = TraceSink::new();
        sim.run(&view, &mut sim_trace);

        let config = SunderConfig::with_rate(rate);
        let mut machine = SunderMachine::new(&strided, config).unwrap();
        let mut hw_trace = TraceSink::new();
        machine.run(&view, &mut hw_trace);

        let mut sim_events = sim_trace.events.clone();
        let mut hw_events = hw_trace.events.clone();
        sim_events.sort();
        hw_events.sort();
        assert_eq!(
            hw_events, sim_events,
            "machine diverged from simulator for {patterns:?} at {rate}"
        );
    }

    #[test]
    fn machine_equals_sim_simple() {
        for rate in Rate::ALL {
            assert_machine_matches_sim(&["abc"], b"xxabcxabcabc", rate);
        }
    }

    #[test]
    fn machine_equals_sim_classes_and_loops() {
        for rate in Rate::ALL {
            assert_machine_matches_sim(&["a[0-9]+b", ".*zz", "q"], b"a12b zz aq3b zzz qq", rate);
        }
    }

    #[test]
    fn machine_equals_sim_anchored() {
        for rate in Rate::ALL {
            assert_machine_matches_sim(&["^hdr", "body"], b"hdrbody hdr body", rate);
        }
    }

    #[test]
    fn machine_equals_sim_partial_tail() {
        // Input length not divisible by the vector width.
        for rate in Rate::ALL {
            assert_machine_matches_sim(&["abc", "c"], b"abc", rate);
            assert_machine_matches_sim(&["ab"], b"a", rate);
        }
    }

    #[test]
    fn machine_equals_sim_many_patterns_cross_pu() {
        // Enough report states to force multiple PUs (m = 12).
        let patterns: Vec<String> = (0..40)
            .map(|i| format!("p{:02}{}", i, (b'a' + (i % 26) as u8) as char))
            .collect();
        let refs: Vec<&str> = patterns.iter().map(String::as_str).collect();
        let mut input = Vec::new();
        for (i, p) in patterns.iter().enumerate().step_by(3) {
            input.extend_from_slice(p.as_bytes());
            input.extend_from_slice(if i % 2 == 0 { b"--" } else { b"#" });
        }
        assert_machine_matches_sim(&refs, &input, Rate::Nibble4);
        assert_machine_matches_sim(&refs, &input, Rate::Nibble1);
    }

    #[test]
    fn reports_land_in_region_and_read_back() {
        let byte_nfa = compile_rule_set(&["hit"]).unwrap();
        let strided = transform_to_rate(&byte_nfa, Rate::Nibble4).unwrap();
        let config = SunderConfig::with_rate(Rate::Nibble4);
        let mut machine = SunderMachine::new(&strided, config).unwrap();
        let view = InputView::new(b"xxhit...hit.", 4, 4).unwrap();
        let mut sink = CountSink::new();
        machine.run(&view, &mut sink);
        assert_eq!(sink.reports, 2);
        // Both entries are in PU 0's region, in cycle order.
        assert_eq!(machine.region_len(0), 2);
        let e0 = machine.peek_report(0, 0).unwrap();
        let e1 = machine.peek_report(0, 1).unwrap();
        assert!(e0.cycle < e1.cycle);
        assert_ne!(e0.report_mask, 0);
        // Summarization sees the same occurrence bits.
        let summary = machine.summarize_pu(0);
        assert_eq!(summary, e0.report_mask | e1.report_mask);
        assert!(machine.stats().summarize_stall_cycles > 0);
    }

    #[test]
    fn flush_stalls_accounted_without_fifo() {
        // A pattern that reports every cycle overflows the region:
        // capacity is 1536 entries at the 16-bit rate.
        let byte_nfa = compile_rule_set(&["[ -~]"]).unwrap(); // any printable
        let strided = transform_to_rate(&byte_nfa, Rate::Nibble4).unwrap();
        let config = SunderConfig::with_rate(Rate::Nibble4);
        let input_bytes: Vec<u8> = (0..8000u32).map(|i| b' ' + (i % 64) as u8).collect();
        let view = InputView::new(&input_bytes, 4, 4).unwrap();

        let mut machine = SunderMachine::new(&strided, config).unwrap();
        let stats = machine.run(&view, &mut sunder_sim::NullSink);
        // 4000 machine cycles, each reporting: 2 fills of 1536 + remainder.
        assert_eq!(stats.report_entries, 4000);
        assert_eq!(stats.flushes, 2);
        assert_eq!(stats.stall_cycles, 2 * config.flush_stall_cycles());
        assert!(stats.reporting_overhead() > 1.0);

        // FIFO drains at one row per 8 cycles = 1 entry/cycle: no stalls.
        let mut fifo_machine = SunderMachine::new(&strided, config.fifo(true)).unwrap();
        let fifo_stats = fifo_machine.run(&view, &mut sunder_sim::NullSink);
        assert_eq!(fifo_stats.flushes, 0, "FIFO should keep up");
        assert_eq!(fifo_stats.stall_cycles, 0);
        assert!(fifo_stats.fifo_drained_entries > 0);
    }

    #[test]
    fn placement_summary_reports_pus() {
        let byte_nfa = compile_rule_set(&["one", "two"]).unwrap();
        let strided = transform_to_rate(&byte_nfa, Rate::Nibble2).unwrap();
        let machine = SunderMachine::new(&strided, SunderConfig::with_rate(Rate::Nibble2)).unwrap();
        let s = machine.placement_summary();
        assert_eq!(s.pus, 1);
        assert_eq!(s.pus, machine.num_pus());
    }

    #[test]
    fn report_column_states_maps_bits() {
        let byte_nfa = compile_rule_set(&["aa", "bb"]).unwrap();
        let strided = transform_to_rate(&byte_nfa, Rate::Nibble4).unwrap();
        let machine = SunderMachine::new(&strided, SunderConfig::with_rate(Rate::Nibble4)).unwrap();
        let cols = machine.report_column_states(0);
        assert!(!cols.is_empty());
        for (bit, state) in cols {
            assert!((bit as usize) < machine.config().report_columns);
            assert!(strided.state(state).is_reporting());
        }
    }
}
