//! The cycle-level Sunder machine (paper, Figure 4).
//!
//! A machine owns one processing unit per placed subarray. Each cycle it
//! consumes one symbol vector and, for every PU that could do work:
//!
//! 1. **state matching** — one row per nibble group is activated through
//!    the right-side 4:16 decoders; the wired-NOR on Port 2 senses the
//!    bitwise AND of the activated rows (the *match vector*);
//! 2. **state transition** — the active-state vector drives the local
//!    full-crossbar rows (OR of successor rows) and the global switches
//!    for cross-PU edges, producing the next cycle's *potential next
//!    states*;
//! 3. **reporting** — active report columns are OR-reduced; if any fired,
//!    an `(m-bit vector, n-bit cycle)` entry is written into the PU's
//!    in-place reporting region through Port 1, concurrently with matching
//!    (dual-port 8T cells), so reporting itself costs no cycles — only
//!    region overflow stalls the machine.
//!
//! Work is activity-gated: a PU is only evaluated when it has potential
//! next states, receives a global signal, or hosts a start state that
//! could match the current vector (indexed by the first non-don't-care
//! vector position). This makes megabyte-scale runs tractable without
//! changing any visible behavior.

use sunder_automata::input::InputView;
use sunder_automata::{Nfa, ReportInfo, StartKind, StateId};
use sunder_sim::{ReportEvent, ReportSink};

use crate::config::{SunderConfig, ROW_BITS};
use crate::placement::{place, Placement, PlacementError};
use crate::reporting::{ReportEntry, ReportRegion, WriteOutcome};
use crate::stats::{RunStats, StallAttribution, StallCause};
use crate::subarray::{rowops, Row, Subarray, ZERO_ROW};

/// One processing unit: subarray + interconnect + reporting region.
#[derive(Debug, Clone)]
struct Pu {
    subarray: Subarray,
    /// Per nibble group: columns whose charset at that position is full
    /// (don't-care), used to mask the final partial vector.
    full_masks: Vec<Row>,
    /// Local full-crossbar: row per source column, bits = successor columns.
    crossbar: Vec<Row>,
    allinput_start: Row,
    sod_start: Row,
    report_mask: Row,
    /// Cross-PU successors: (local column, target PU, target column).
    cross_out: Vec<(u8, u32, u8)>,
    /// Potential next states for the coming cycle (local + global in).
    enabled_next: Row,
    region: ReportRegion,
    /// Column → automaton state (for report readback and verification).
    col_state: Vec<Option<StateId>>,
    /// Column → report descriptors.
    col_reports: Vec<Vec<ReportInfo>>,
}

/// The Sunder device model.
#[derive(Debug)]
pub struct SunderMachine {
    config: SunderConfig,
    stride: usize,
    start_period: u64,
    pus: Vec<Pu>,
    /// `start_wake[j][nibble]` → PUs hosting a start state whose first
    /// non-full charset position is `j` and accepts `nibble`.
    start_wake: Vec<[Vec<u32>; 16]>,
    /// PUs hosting a start state with all-don't-care charsets.
    always_wake: Vec<u32>,
    /// PUs with pending potential-next-state bits.
    pending: Vec<u32>,
    stamp: Vec<u64>,
    generation: u64,
    cycle: u64,
    /// Input cycle of the most recent flush episode: every region filling
    /// in the same cycle drains in parallel through its own Port 1, so
    /// simultaneous fills share a single stall.
    last_flush_cycle: Option<u64>,
    stats: RunStats,
    /// Per-cause breakdown of the stall counters in `stats`; charged at
    /// the same sites under the same same-cycle deduplication.
    stalls: StallAttribution,
    placement_summary: PlacementSummary,
    report_batch: Vec<ReportEvent>,
    cross_buf: Vec<(u32, u8)>,
    fifo_dirty: Vec<u32>,
    /// Injected overflow-storm windows: `(from, until)` half-open cycles.
    storm_windows: Vec<(u64, u64)>,
    /// Per PU: report rows stuck (FIFO drain disabled).
    stuck: Vec<bool>,
}

/// An injectable cycle-model fault (deterministic fault-injection hooks
/// for the resilience harness; see `sunder-resilience`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineFault {
    /// Every report write in cycles `[from_cycle, from_cycle + cycles)` is
    /// forced down the region-full path, as if the region had overflowed —
    /// an overflow storm. Stall accounting stays exact: each forced write
    /// charges the same flush/drain-wait stall a real overflow would.
    FifoOverflowStorm {
        /// First storm cycle.
        from_cycle: u64,
        /// Storm length in cycles.
        cycles: u64,
    },
    /// The given PU's report rows stop draining: FIFO drains (periodic
    /// ticks and overflow-wait drains) return nothing. The machine
    /// recovers from the resulting wedged overflow with a full flush,
    /// counted in [`RunStats::stuck_row_recoveries`]; overflows forced by
    /// a concurrent [`MachineFault::FifoOverflowStorm`] wedge the same
    /// way. No effect in flush
    /// (non-FIFO) mode, which never drains row-by-row.
    StuckReportRow {
        /// Index of the stuck processing unit.
        pu: usize,
    },
}

/// Summary of how the automaton was placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacementSummary {
    /// Number of processing units used.
    pub pus: usize,
    /// Transitions riding the global switches.
    pub cross_pu_edges: usize,
    /// Largest PU span of a single component.
    pub max_pus_per_component: usize,
}

impl SunderMachine {
    /// Places and configures `nfa` (a nibble automaton at the config's
    /// stride) onto a fresh machine.
    ///
    /// # Errors
    ///
    /// Returns a [`PlacementError`] if the automaton cannot be placed.
    ///
    /// # Panics
    ///
    /// Panics if the automaton's symbol width is not 4 bits or its stride
    /// does not match the configured rate — run it through
    /// [`sunder_transform::transform_to_rate`] first.
    pub fn new(nfa: &Nfa, config: SunderConfig) -> Result<Self, PlacementError> {
        assert_eq!(nfa.symbol_bits(), 4, "machine executes nibble automata");
        assert_eq!(
            nfa.stride(),
            config.rate.nibbles_per_cycle(),
            "automaton stride must match the configured rate"
        );
        let placement = place(nfa, &config)?;
        Ok(Self::with_placement(nfa, config, &placement))
    }

    /// Builds the machine from an explicit placement.
    fn with_placement(nfa: &Nfa, config: SunderConfig, placement: &Placement) -> Self {
        let stride = nfa.stride();
        let m = config.report_columns;
        let mut pus: Vec<Pu> = (0..placement.pus.len())
            .map(|_| Pu {
                subarray: Subarray::new(),
                full_masks: vec![ZERO_ROW; stride],
                crossbar: vec![ZERO_ROW; ROW_BITS],
                allinput_start: ZERO_ROW,
                sod_start: ZERO_ROW,
                report_mask: ZERO_ROW,
                cross_out: Vec::new(),
                enabled_next: ZERO_ROW,
                region: ReportRegion::new(&config),
                col_state: vec![None; ROW_BITS],
                col_reports: vec![Vec::new(); ROW_BITS],
            })
            .collect();

        let mut start_wake: Vec<[Vec<u32>; 16]> = (0..stride)
            .map(|_| std::array::from_fn(|_| Vec::new()))
            .collect();
        let mut always_wake: Vec<u32> = Vec::new();

        for (pi, plan) in placement.pus.iter().enumerate() {
            for &(col, state) in &plan.columns {
                let ste = nfa.state(state);
                let pu = &mut pus[pi];
                let col_us = col as usize;
                pu.col_state[col_us] = Some(state);
                // Matching rows: one-hot nibble encoding per group.
                for (j, cs) in ste.charsets().iter().enumerate() {
                    for v in cs.iter() {
                        pu.subarray.set_bit(16 * j + v as usize, col_us, true);
                    }
                    if cs.is_full() {
                        rowops::set(&mut pu.full_masks[j], col_us);
                    }
                }
                match ste.start_kind() {
                    StartKind::AllInput => rowops::set(&mut pu.allinput_start, col_us),
                    StartKind::StartOfData => rowops::set(&mut pu.sod_start, col_us),
                    StartKind::None => {}
                }
                if ste.is_reporting() {
                    debug_assert!(
                        col_us >= ROW_BITS - m,
                        "report state outside report columns"
                    );
                    rowops::set(&mut pu.report_mask, col_us);
                    pu.col_reports[col_us] = ste.reports().to_vec();
                }
                // Wake index for start states.
                if ste.start_kind().is_start() {
                    match ste.charsets().iter().position(|c| !c.is_full()) {
                        Some(j) => {
                            for v in ste.charsets()[j].iter() {
                                let bucket = &mut start_wake[j][v as usize];
                                if bucket.last() != Some(&(pi as u32)) {
                                    bucket.push(pi as u32);
                                }
                            }
                        }
                        None => {
                            if always_wake.last() != Some(&(pi as u32)) {
                                always_wake.push(pi as u32);
                            }
                        }
                    }
                }
            }
        }

        // Edges: local crossbar rows and cross-PU lists.
        for (id, _) in nfa.states() {
            let from = placement.locations[id.index()];
            for &t in nfa.successors(id) {
                let to = placement.locations[t.index()];
                if from.pu == to.pu {
                    rowops::set(
                        &mut pus[from.pu as usize].crossbar[from.col as usize],
                        to.col as usize,
                    );
                } else {
                    pus[from.pu as usize]
                        .cross_out
                        .push((from.col, to.pu, to.col));
                }
            }
        }
        for pu in &mut pus {
            pu.cross_out.sort_unstable();
        }
        // Deduplicate wake buckets (several states in one PU may share one).
        for buckets in &mut start_wake {
            for b in buckets.iter_mut() {
                b.sort_unstable();
                b.dedup();
            }
        }
        always_wake.sort_unstable();
        always_wake.dedup();

        let n_pus = pus.len();
        SunderMachine {
            config,
            stride,
            start_period: u64::from(nfa.start_period()),
            pus,
            start_wake,
            always_wake,
            pending: Vec::new(),
            stamp: vec![0; n_pus],
            generation: 0,
            cycle: 0,
            last_flush_cycle: None,
            stats: RunStats::default(),
            stalls: StallAttribution::default(),
            placement_summary: PlacementSummary {
                pus: n_pus,
                cross_pu_edges: placement.cross_pu_edges,
                max_pus_per_component: placement.max_pus_per_component,
            },
            report_batch: Vec::new(),
            cross_buf: Vec::new(),
            fifo_dirty: Vec::new(),
            storm_windows: Vec::new(),
            stuck: vec![false; n_pus],
        }
    }

    /// Arms a deterministic cycle-model fault. Multiple faults compose;
    /// a [`MachineFault::StuckReportRow`] naming a nonexistent PU is
    /// ignored (the plan may be written for a larger placement).
    pub fn inject_fault(&mut self, fault: MachineFault) {
        match fault {
            MachineFault::FifoOverflowStorm { from_cycle, cycles } => {
                self.storm_windows
                    .push((from_cycle, from_cycle.saturating_add(cycles)));
            }
            MachineFault::StuckReportRow { pu } => {
                if let Some(s) = self.stuck.get_mut(pu) {
                    *s = true;
                }
            }
        }
    }

    /// `true` while an injected overflow storm covers the current cycle.
    fn storm_active(&self) -> bool {
        self.storm_windows
            .iter()
            .any(|&(from, until)| self.cycle >= from && self.cycle < until)
    }

    /// The machine configuration.
    pub fn config(&self) -> &SunderConfig {
        &self.config
    }

    /// How the automaton was placed.
    pub fn placement_summary(&self) -> PlacementSummary {
        self.placement_summary
    }

    /// Statistics so far.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Per-cause stall attribution so far. Invariants (by construction):
    /// the execution causes sum to [`RunStats::stall_cycles`] and the
    /// summarize cause equals [`RunStats::summarize_stall_cycles`].
    pub fn stall_attribution(&self) -> &StallAttribution {
        &self.stalls
    }

    /// Exports this run's counters and stall attribution into the
    /// telemetry registry under the given `bench` label. No-op when
    /// telemetry is disabled.
    pub fn export_telemetry(&self, bench: &str) {
        if !sunder_telemetry::enabled() {
            return;
        }
        let labels = [("bench", bench)];
        let s = &self.stats;
        sunder_telemetry::counter_add("machine_input_cycles_total", &labels, s.input_cycles);
        sunder_telemetry::counter_add("machine_reports_total", &labels, s.reports);
        sunder_telemetry::counter_add("machine_report_entries_total", &labels, s.report_entries);
        sunder_telemetry::counter_add("machine_flushes_total", &labels, s.flushes);
        sunder_telemetry::counter_add(
            "machine_fifo_drained_entries_total",
            &labels,
            s.fifo_drained_entries,
        );
        sunder_telemetry::counter_add(
            "machine_forced_overflows_total",
            &labels,
            s.forced_overflows,
        );
        sunder_telemetry::counter_add(
            "machine_stuck_row_recoveries_total",
            &labels,
            s.stuck_row_recoveries,
        );
        self.stalls.export_metrics(bench);
    }

    /// Runs a whole input stream, delivering reports to `sink`.
    ///
    /// The input view's stride must match the machine's rate.
    pub fn run<S: ReportSink>(&mut self, input: &InputView, sink: &mut S) -> RunStats {
        assert_eq!(input.stride(), self.stride, "input stride mismatch");
        // Borrowing iteration: no per-cycle symbol-vector allocation.
        for v in input.iter_ref() {
            self.step(v.symbols, v.valid, sink);
        }
        self.stats
    }

    /// Executes one machine cycle.
    ///
    /// # Panics
    ///
    /// Panics (in all build profiles) if the vector length does not match
    /// the machine's stride.
    pub fn step<S: ReportSink>(&mut self, vector: &[u16], valid: usize, sink: &mut S) {
        assert_eq!(
            vector.len(),
            self.stride,
            "symbol vector length must equal the machine stride"
        );
        self.generation += 1;
        let gen = self.generation;

        // Candidate PUs: pending potential-next-states + start wakes.
        let mut candidates = std::mem::take(&mut self.pending);
        for &pu in &candidates {
            self.stamp[pu as usize] = gen;
        }
        let aligned = self.cycle.is_multiple_of(self.start_period);
        if aligned || self.cycle == 0 {
            for (j, &sym) in vector.iter().enumerate().take(valid.min(self.stride)) {
                for &pu in &self.start_wake[j][sym as usize] {
                    if self.stamp[pu as usize] != gen {
                        self.stamp[pu as usize] = gen;
                        candidates.push(pu);
                    }
                }
            }
            for &pu in &self.always_wake {
                if self.stamp[pu as usize] != gen {
                    self.stamp[pu as usize] = gen;
                    candidates.push(pu);
                }
            }
        }

        self.report_batch.clear();
        self.cross_buf.clear();

        for &pi in &candidates {
            let pu = &mut self.pus[pi as usize];
            let mut enabled = std::mem::replace(&mut pu.enabled_next, ZERO_ROW);
            if aligned {
                rowops::or_assign(&mut enabled, &pu.allinput_start);
            }
            if self.cycle == 0 {
                rowops::or_assign(&mut enabled, &pu.sod_start);
            }
            if !rowops::any(&enabled) {
                continue;
            }

            // State matching: multi-row activation, one row per nibble.
            let mut rows = [0usize; 8];
            for (j, r) in rows.iter_mut().take(valid.min(self.stride)).enumerate() {
                *r = 16 * j + vector[j] as usize;
            }
            let mut matched = pu.subarray.multi_row_and(&rows[..valid.min(self.stride)]);
            for j in valid..self.stride {
                matched = rowops::and(&matched, &pu.full_masks[j]);
            }

            let active = rowops::and(&enabled, &matched);
            if !rowops::any(&active) {
                continue;
            }
            self.stats.pu_work_cycles += 1;
            self.stats.active_state_cycles += rowops::count(&active) as u64;

            // State transition: local crossbar + global switches.
            for col in rowops::iter_ones(&active) {
                rowops::or_assign(&mut pu.enabled_next, &pu.crossbar[col]);
            }
            if !pu.cross_out.is_empty() {
                for &(col, tpu, tcol) in &pu.cross_out {
                    if rowops::get(&active, col as usize) {
                        self.cross_buf.push((tpu, tcol));
                    }
                }
            }

            // Reporting.
            let fired = rowops::and(&active, &pu.report_mask);
            if rowops::any(&fired) {
                let base = ROW_BITS - self.config.report_columns;
                let mut mask = 0u32;
                for col in rowops::iter_ones(&fired) {
                    mask |= 1 << (col - base);
                    let state = pu.col_state[col].expect("report column occupied");
                    for r in &pu.col_reports[col] {
                        if (r.offset as usize) < valid {
                            self.report_batch.push(ReportEvent {
                                cycle: self.cycle,
                                state,
                                info: *r,
                            });
                        }
                    }
                }
                self.write_report_entry(pi, mask);
            }
        }

        // Apply cross-PU signals and rebuild the pending list.
        let next_gen = gen + 1;
        self.generation = next_gen;
        let cross_buf = std::mem::take(&mut self.cross_buf);
        for &(tpu, tcol) in &cross_buf {
            rowops::set(&mut self.pus[tpu as usize].enabled_next, tcol as usize);
        }
        for &pi in &candidates {
            if rowops::any(&self.pus[pi as usize].enabled_next)
                && self.stamp[pi as usize] != next_gen
            {
                self.stamp[pi as usize] = next_gen;
                self.pending.push(pi);
            }
        }
        for &(tpu, _) in &cross_buf {
            if self.stamp[tpu as usize] != next_gen {
                self.stamp[tpu as usize] = next_gen;
                self.pending.push(tpu);
            }
        }
        self.cross_buf = cross_buf;
        // `candidates` is the drained previous pending list; its
        // allocation is dropped here (per-cycle churn is negligible next
        // to the bitwise work).
        drop(candidates);

        // FIFO drain tick.
        if self.config.fifo
            && self
                .cycle
                .is_multiple_of(u64::from(self.config.drain_period_cycles))
        {
            let dirty = std::mem::take(&mut self.fifo_dirty);
            for &pi in &dirty {
                if self.stuck[pi as usize] {
                    // Stuck report rows: the drain reads nothing; the PU
                    // stays dirty so a later recovery can resume it.
                    self.fifo_dirty.push(pi);
                    continue;
                }
                let pu = &mut self.pus[pi as usize];
                let drained = pu.region.drain_row(&pu.subarray);
                self.stats.fifo_drained_entries += drained.len() as u64;
                if !pu.region.is_empty() {
                    self.fifo_dirty.push(pi);
                }
            }
        }

        if !self.report_batch.is_empty() {
            self.stats.report_cycles += 1;
            self.stats.reports += self.report_batch.len() as u64;
            self.report_batch.sort_unstable();
            let batch = std::mem::take(&mut self.report_batch);
            sink.on_cycle_reports(self.cycle, &batch);
            self.report_batch = batch;
        }
        self.stats.input_cycles += 1;
        self.cycle += 1;
    }

    /// Writes one report entry into a PU's region, modelling the stall
    /// behavior on overflow.
    fn write_report_entry(&mut self, pi: u32, mask: u32) {
        let config = self.config;
        self.stats.report_entries += 1;
        let storm = self.storm_active();
        let stuck = self.stuck[pi as usize];
        let pu = &mut self.pus[pi as usize];
        let first = if storm {
            // Injected overflow storm: the write is forced down the full
            // path without touching the region, so stall accounting is
            // charged exactly as a real overflow would charge it.
            self.stats.forced_overflows += 1;
            WriteOutcome::Full
        } else {
            pu.region.write(&mut pu.subarray, mask, self.cycle)
        };
        match first {
            WriteOutcome::Stored => {
                if config.fifo && pu.region.len() == 1 {
                    self.fifo_dirty.push(pi);
                }
            }
            WriteOutcome::Full => {
                self.stats.flushes += 1;
                if config.fifo {
                    // Wait for the next drain tick, drain one row, retry.
                    self.stats.stall_cycles += u64::from(config.drain_period_cycles);
                    self.stalls.charge(
                        StallCause::FifoDrainWait,
                        u64::from(config.drain_period_cycles),
                    );
                    if !stuck {
                        let drained = pu.region.drain_row(&pu.subarray);
                        self.stats.fifo_drained_entries += drained.len() as u64;
                    }
                } else {
                    // Flush: the whole device stalls while the region
                    // bursts out through Port 1. Regions filling in the
                    // same cycle drain in parallel (one stall episode).
                    if self.last_flush_cycle != Some(self.cycle) {
                        self.stats.stall_cycles += config.flush_stall_cycles();
                        self.stalls
                            .charge(StallCause::FlushDrain, config.flush_stall_cycles());
                        self.last_flush_cycle = Some(self.cycle);
                    }
                    let _ = pu.region.flush(&mut pu.subarray);
                }
                let mut retry = if storm && config.fifo && stuck {
                    // The overflow wait drained nothing through the stuck
                    // row, so the forced overflow stands: wedge and take
                    // the recovery path below.
                    WriteOutcome::Full
                } else {
                    pu.region.write(&mut pu.subarray, mask, self.cycle)
                };
                if retry != WriteOutcome::Stored {
                    // Graceful fallback: a stuck row blocks the FIFO drain,
                    // so instead of wedging, the machine falls back to a
                    // full flush (which power-cycles the row) and records
                    // the recovery.
                    self.stats.stuck_row_recoveries += 1;
                    if self.last_flush_cycle != Some(self.cycle) {
                        self.stats.stall_cycles += config.flush_stall_cycles();
                        self.stalls
                            .charge(StallCause::StuckRowRecovery, config.flush_stall_cycles());
                        self.last_flush_cycle = Some(self.cycle);
                    }
                    let _ = pu.region.flush(&mut pu.subarray);
                    retry = pu.region.write(&mut pu.subarray, mask, self.cycle);
                    assert_eq!(
                        retry,
                        WriteOutcome::Stored,
                        "write must succeed after a full flush"
                    );
                }
                if config.fifo && !pu.region.is_empty() && pu.region.len() == 1 {
                    self.fifo_dirty.push(pi);
                }
            }
        }
    }

    /// Host-side summarization of one PU's reporting region: returns the
    /// `m`-bit occurrence vector and charges the 1–2 cycle stall per
    /// 16-row batch that the Port 2 multi-row activation costs.
    pub fn summarize_pu(&mut self, pu: usize) -> u32 {
        let p = &self.pus[pu];
        let mask = p.region.summarize(&p.subarray);
        let stall = 2 * p.region.summarize_batches();
        self.stats.summarize_stall_cycles += stall;
        self.stalls.charge(StallCause::Summarize, stall);
        mask
    }

    /// Host-side selective read: entry `index` (0 = oldest) of a PU's
    /// region, without consuming it.
    pub fn peek_report(&self, pu: usize, index: u64) -> Option<ReportEntry> {
        let p = &self.pus[pu];
        p.region.peek(&p.subarray, index)
    }

    /// Host-side flush of one PU's region (end-of-run readout).
    pub fn flush_pu(&mut self, pu: usize) -> Vec<ReportEntry> {
        let p = &mut self.pus[pu];
        p.region.flush(&mut p.subarray)
    }

    /// Number of processing units.
    pub fn num_pus(&self) -> usize {
        self.pus.len()
    }

    /// Report ids attached to the state at report-mask bit `bit` of `pu`
    /// (empty if the column is unoccupied).
    pub fn report_rule_ids(&self, pu: usize, bit: u8) -> Vec<u32> {
        let col = ROW_BITS - self.config.report_columns + bit as usize;
        self.pus[pu].col_reports[col].iter().map(|r| r.id).collect()
    }

    /// Entries currently buffered in a PU's region.
    pub fn region_len(&self, pu: usize) -> u64 {
        self.pus[pu].region.len()
    }

    /// The raw storage of a PU's subarray (matching rows + reporting
    /// region) — what the system-integration layer maps into cache lines.
    pub fn subarray(&self, pu: usize) -> &Subarray {
        &self.pus[pu].subarray
    }

    /// The automaton states mapped to a PU's report columns, lowest column
    /// first (bit `i` of an entry's report mask corresponds to element `i`
    /// of this list's padding-adjusted position — see `report_column_states`).
    pub fn report_column_states(&self, pu: usize) -> Vec<(u8, StateId)> {
        let base = ROW_BITS - self.config.report_columns;
        let p = &self.pus[pu];
        (base..ROW_BITS)
            .filter_map(|c| p.col_state[c].map(|s| ((c - base) as u8, s)))
            .filter(|&(bit, _)| {
                let col = base + bit as usize;
                rowops::get(&p.report_mask, col)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sunder_automata::{Ste, SymbolSet};
    use sunder_sim::TraceSink;
    use sunder_transform::Rate;

    /// A maximally hot automaton at the 8-bit rate: one all-input,
    /// all-don't-care state reporting on the last nibble of every byte.
    /// Every cycle does work, reports, and writes one region entry —
    /// which makes the stall/flush arithmetic below exact.
    fn hot_nfa() -> Nfa {
        let mut nfa = Nfa::with_stride(4, 2);
        let s = nfa.add_state(
            Ste::with_charsets(vec![SymbolSet::full(4), SymbolSet::full(4)])
                .start(StartKind::AllInput)
                .report_at(0, 1),
        );
        nfa.add_edge(s, s);
        nfa
    }

    fn hot_machine(fifo: bool) -> SunderMachine {
        let config = SunderConfig::with_rate(Rate::Nibble2).fifo(fifo);
        SunderMachine::new(&hot_nfa(), config).expect("one state always places")
    }

    /// 4000 bytes at the 8-bit rate = 4000 machine cycles.
    fn run_hot(machine: &mut SunderMachine, bytes: usize) -> RunStats {
        let input = InputView::new(&vec![0u8; bytes], 4, 2).unwrap();
        let mut sink = sunder_sim::NullSink;
        machine.run(&input, &mut sink)
    }

    #[test]
    fn flush_stall_accounting_is_exact() {
        // Nibble2 geometry: 224 report rows × 8 entries/row = 1792-entry
        // capacity, 224 stall cycles per flush. 4000 entries overflow the
        // region exactly twice (at entries 1793 and 3585).
        let mut machine = hot_machine(false);
        let stats = run_hot(&mut machine, 4000);
        assert_eq!(stats.input_cycles, 4000);
        assert_eq!(stats.pu_work_cycles, 4000);
        assert_eq!(stats.active_state_cycles, 4000);
        assert_eq!(stats.reports, 4000);
        assert_eq!(stats.report_cycles, 4000);
        assert_eq!(stats.report_entries, 4000);
        assert_eq!(stats.flushes, 2);
        assert_eq!(stats.stall_cycles, 2 * 224);
        assert_eq!(stats.total_cycles(), 4000 + 448);
        // 4000 − 2·1792 entries remain buffered.
        assert_eq!(machine.region_len(0), 416);
    }

    #[test]
    fn region_readback_after_flushes() {
        let mut machine = hot_machine(false);
        run_hot(&mut machine, 4000);
        let columns = machine.report_column_states(0);
        assert_eq!(columns.len(), 1, "one report state, one report column");
        let bit = columns[0].0;
        assert_eq!(machine.report_rule_ids(0, bit), vec![0]);

        // Oldest surviving entry was written at cycle 3584 (right after
        // the second flush); peek must not consume it.
        let oldest = machine.peek_report(0, 0).expect("region is not empty");
        assert_eq!(oldest.cycle, 3584);
        assert_eq!(oldest.report_mask, 1 << bit);
        assert_eq!(machine.region_len(0), 416);

        let drained = machine.flush_pu(0);
        assert_eq!(drained.len(), 416);
        assert_eq!(drained[0], oldest);
        assert_eq!(drained[415].cycle, 3999);
        assert_eq!(machine.region_len(0), 0);
        assert!(machine.peek_report(0, 0).is_none());
    }

    #[test]
    fn fifo_drain_keeps_pace_without_stalls() {
        // Default drain period 8 reads one 8-entry row per tick — exactly
        // the hot automaton's fill rate, so the region never overflows.
        let mut machine = hot_machine(true);
        let stats = run_hot(&mut machine, 4000);
        assert_eq!(stats.flushes, 0);
        assert_eq!(stats.stall_cycles, 0);
        // Every entry is either already drained or still buffered.
        assert_eq!(stats.fifo_drained_entries + machine.region_len(0), 4000);
        assert!(stats.fifo_drained_entries > 0);
    }

    #[test]
    fn fifo_slow_drain_stalls_on_overflow() {
        let mut config = SunderConfig::with_rate(Rate::Nibble2).fifo(true);
        config.drain_period_cycles = 64; // 8 entries per 64 cycles: too slow
        let mut machine = SunderMachine::new(&hot_nfa(), config).unwrap();
        let stats = run_hot(&mut machine, 4000);
        assert!(stats.flushes > 0, "region must overflow under a slow drain");
        // Each overflow waits one drain period, then drains a single row.
        assert_eq!(stats.stall_cycles, stats.flushes * 64);
        assert_eq!(stats.fifo_drained_entries + machine.region_len(0), 4000);
    }

    #[test]
    fn padding_suppresses_mid_vector_report_offsets() {
        // Three nibbles at stride 2: the second vector carries one valid
        // symbol. The state still matches (don't-care charsets), and the
        // hardware still writes a region entry, but the report at offset 1
        // lands in the padding and must not reach the sink.
        let mut machine = hot_machine(false);
        let input = InputView::from_symbols(vec![0, 0, 0], 2);
        let mut sink = TraceSink::new();
        let stats = machine.run(&input, &mut sink);
        assert_eq!(stats.input_cycles, 2);
        assert_eq!(stats.pu_work_cycles, 2);
        assert_eq!(stats.reports, 1);
        assert_eq!(stats.report_cycles, 1);
        assert_eq!(stats.report_entries, 2);
        assert_eq!(sink.cycle_id_pairs(), vec![(0, 0)]);
    }

    #[test]
    fn summarize_charges_port2_batch_stalls() {
        let mut machine = hot_machine(false);
        run_hot(&mut machine, 20);
        let columns = machine.report_column_states(0);
        let mask = machine.summarize_pu(0);
        assert_eq!(mask, 1 << columns[0].0);
        // Nibble2: 224 report rows = 14 batches of 16 rows, 2 cycles each.
        assert_eq!(machine.stats().summarize_stall_cycles, 2 * 14);
        // Summarization is non-destructive.
        assert_eq!(machine.region_len(0), 20);
    }

    #[test]
    fn overflow_storm_accounting_is_exact_without_fifo() {
        // Storm cycles 10..15: five forced overflows, each its own flush
        // episode (one per cycle), each charging the full 224-cycle stall.
        let mut machine = hot_machine(false);
        machine.inject_fault(MachineFault::FifoOverflowStorm {
            from_cycle: 10,
            cycles: 5,
        });
        let stats = run_hot(&mut machine, 100);
        assert_eq!(stats.forced_overflows, 5);
        assert_eq!(stats.flushes, 5);
        assert_eq!(stats.stall_cycles, 5 * 224);
        assert_eq!(stats.report_entries, 100);
        // Each forced flush empties the region and stores one entry, so
        // the survivors are the storm's last write plus everything after.
        assert_eq!(machine.region_len(0), 86);
        assert_eq!(stats.stuck_row_recoveries, 0);
    }

    #[test]
    fn overflow_storm_in_fifo_mode_charges_drain_waits() {
        let mut machine = hot_machine(true);
        machine.inject_fault(MachineFault::FifoOverflowStorm {
            from_cycle: 10,
            cycles: 3,
        });
        let stats = run_hot(&mut machine, 100);
        assert_eq!(stats.forced_overflows, 3);
        assert_eq!(stats.flushes, 3);
        // Each forced overflow waits one default drain period (8 cycles).
        assert_eq!(stats.stall_cycles, 3 * 8);
        // Entry conservation: every entry is drained or still buffered.
        assert_eq!(stats.fifo_drained_entries + machine.region_len(0), 100);
    }

    #[test]
    fn overflow_storm_through_stuck_row_wedges_every_forced_overflow() {
        // A stuck row blocks the overflow-wait drain, so each storm-forced
        // overflow wedges: one drain wait plus one recovery flush apiece.
        let mut machine = hot_machine(true);
        machine.inject_fault(MachineFault::FifoOverflowStorm {
            from_cycle: 10,
            cycles: 3,
        });
        machine.inject_fault(MachineFault::StuckReportRow { pu: 0 });
        let stats = run_hot(&mut machine, 100);
        assert_eq!(stats.forced_overflows, 3);
        assert_eq!(stats.stuck_row_recoveries, 3);
        assert_eq!(stats.stall_cycles, 3 * (8 + 224));
        let att = machine.stall_attribution();
        assert_eq!(att.cycles(StallCause::FifoDrainWait), 3 * 8);
        assert_eq!(att.cycles(StallCause::StuckRowRecovery), 3 * 224);
        // Nothing drains through the stuck row; recovery flushes empty the
        // region, so only the post-storm tail survives.
        assert_eq!(stats.fifo_drained_entries, 0);
        assert_eq!(att.stall_cycles(), stats.stall_cycles);
    }

    #[test]
    fn stuck_row_wedges_fifo_and_recovers_with_full_flush() {
        // Slow drain (64 cycles/row) would already overflow; a stuck row
        // additionally blocks both the ticks and the overflow-wait drain,
        // so every overflow wedges and recovers via full flush.
        let mut config = SunderConfig::with_rate(Rate::Nibble2).fifo(true);
        config.drain_period_cycles = 64;
        let mut machine = SunderMachine::new(&hot_nfa(), config).unwrap();
        machine.inject_fault(MachineFault::StuckReportRow { pu: 0 });
        let stats = run_hot(&mut machine, 4000);
        // Region capacity 1792: overflow at entries 1793 and 3585.
        assert_eq!(stats.flushes, 2);
        assert_eq!(stats.stuck_row_recoveries, 2);
        // Each episode: one drain-period wait + one full-flush stall.
        assert_eq!(stats.stall_cycles, 2 * (64 + 224));
        // Nothing ever drains through the stuck row.
        assert_eq!(stats.fifo_drained_entries, 0);
        // Survivors: 1 after each recovery + the tail after the second.
        assert_eq!(machine.region_len(0), 416);
    }

    #[test]
    fn stuck_row_on_nonexistent_pu_is_ignored() {
        let mut machine = hot_machine(true);
        machine.inject_fault(MachineFault::StuckReportRow { pu: 99 });
        let stats = run_hot(&mut machine, 4000);
        assert_eq!(stats.stuck_row_recoveries, 0);
        assert_eq!(stats.stall_cycles, 0);
        assert_eq!(stats.fifo_drained_entries + machine.region_len(0), 4000);
    }

    #[test]
    fn storm_outside_input_changes_nothing() {
        let mut clean = hot_machine(false);
        let clean_stats = run_hot(&mut clean, 100);
        let mut armed = hot_machine(false);
        armed.inject_fault(MachineFault::FifoOverflowStorm {
            from_cycle: 10_000,
            cycles: 50,
        });
        let armed_stats = run_hot(&mut armed, 100);
        assert_eq!(armed_stats, clean_stats);
        assert_eq!(armed_stats.forced_overflows, 0);
    }

    #[test]
    fn storm_stalls_attributed_to_flush_drain_exactly() {
        // Non-FIFO storm (cycles 10..15): five forced overflows, five
        // flush episodes of exactly 224 cycles each.
        let mut machine = hot_machine(false);
        machine.inject_fault(MachineFault::FifoOverflowStorm {
            from_cycle: 10,
            cycles: 5,
        });
        let stats = run_hot(&mut machine, 100);
        let att = machine.stall_attribution();
        assert_eq!(att.count(StallCause::FlushDrain), 5);
        assert_eq!(att.cycles(StallCause::FlushDrain), 5 * 224);
        // All five episodes land in the 128..=255 bucket.
        assert_eq!(att.episodes(StallCause::FlushDrain).bucket(7), 5);
        assert_eq!(att.cycles(StallCause::FifoDrainWait), 0);
        assert_eq!(att.cycles(StallCause::StuckRowRecovery), 0);
        assert_eq!(att.stall_cycles(), stats.stall_cycles);
    }

    #[test]
    fn fifo_storm_stalls_attributed_to_drain_waits_exactly() {
        // FIFO storm (cycles 10..13): three drain-period waits of 8
        // cycles each.
        let mut machine = hot_machine(true);
        machine.inject_fault(MachineFault::FifoOverflowStorm {
            from_cycle: 10,
            cycles: 3,
        });
        let stats = run_hot(&mut machine, 100);
        let att = machine.stall_attribution();
        assert_eq!(att.count(StallCause::FifoDrainWait), 3);
        assert_eq!(att.cycles(StallCause::FifoDrainWait), 3 * 8);
        // 8-cycle episodes land in bucket 3 (8..=15).
        assert_eq!(att.episodes(StallCause::FifoDrainWait).bucket(3), 3);
        assert_eq!(att.cycles(StallCause::FlushDrain), 0);
        assert_eq!(att.stall_cycles(), stats.stall_cycles);
    }

    #[test]
    fn stuck_row_stalls_split_between_wait_and_recovery() {
        // Stuck row under a slow drain: two wedged overflows, each one
        // 64-cycle drain wait plus one 224-cycle recovery flush.
        let mut config = SunderConfig::with_rate(Rate::Nibble2).fifo(true);
        config.drain_period_cycles = 64;
        let mut machine = SunderMachine::new(&hot_nfa(), config).unwrap();
        machine.inject_fault(MachineFault::StuckReportRow { pu: 0 });
        let stats = run_hot(&mut machine, 4000);
        let att = machine.stall_attribution();
        assert_eq!(att.count(StallCause::FifoDrainWait), 2);
        assert_eq!(att.cycles(StallCause::FifoDrainWait), 2 * 64);
        assert_eq!(att.count(StallCause::StuckRowRecovery), 2);
        assert_eq!(att.cycles(StallCause::StuckRowRecovery), 2 * 224);
        assert_eq!(att.stall_cycles(), stats.stall_cycles);
        assert_eq!(stats.stall_cycles, 2 * (64 + 224));
    }

    #[test]
    fn attribution_invariants_hold_on_clean_and_summarized_runs() {
        let mut machine = hot_machine(false);
        let stats = run_hot(&mut machine, 4000);
        machine.summarize_pu(0);
        let att = machine.stall_attribution();
        assert_eq!(att.stall_cycles(), stats.stall_cycles);
        assert_eq!(
            att.cycles(StallCause::Summarize),
            machine.stats().summarize_stall_cycles
        );
        assert_eq!(att.count(StallCause::FlushDrain), stats.flushes);
    }

    /// The acceptance tie between the telemetry artifact and the cycle
    /// model: exported per-cause stall counters must exactly equal the
    /// `RunStats` aggregates for the same run. This is the only arch
    /// test that touches the process-global telemetry registry.
    #[test]
    fn exported_stall_metrics_equal_run_stats() {
        let mut machine = hot_machine(true);
        machine.inject_fault(MachineFault::FifoOverflowStorm {
            from_cycle: 10,
            cycles: 3,
        });
        let stats = run_hot(&mut machine, 100);
        sunder_telemetry::init(sunder_telemetry::Config::metrics());
        machine.export_telemetry("hot");
        let dump = sunder_telemetry::finish().unwrap();
        assert_eq!(
            dump.metrics
                .counter("machine_input_cycles_total", &[("bench", "hot")]),
            Some(stats.input_cycles)
        );
        assert_eq!(
            dump.metrics.counter(
                "machine_stall_cycles_total",
                &[("bench", "hot"), ("cause", "fifo_drain_wait")]
            ),
            Some(stats.stall_cycles)
        );
        assert_eq!(
            dump.metrics
                .counter("machine_forced_overflows_total", &[("bench", "hot")]),
            Some(3)
        );
        let h = dump
            .metrics
            .histogram(
                "machine_stall_episode_cycles",
                &[("bench", "hot"), ("cause", "fifo_drain_wait")],
            )
            .unwrap();
        assert_eq!(h.count(), 3);
        assert_eq!(h.total(), stats.stall_cycles);
    }

    #[test]
    fn single_state_placement_summary() {
        let machine = hot_machine(false);
        assert_eq!(machine.num_pus(), 1);
        let summary = machine.placement_summary();
        assert_eq!(summary.pus, 1);
        assert_eq!(summary.cross_pu_edges, 0);
        assert_eq!(summary.max_pus_per_component, 1);
        assert_eq!(machine.config().rate, Rate::Nibble2);
    }
}
