//! Mapping automata onto processing units.
//!
//! A processing unit hosts up to 256 states (subarray columns) of which
//! only the last `m` are report-capable (paper, Figure 5). Connected
//! components are the unit of placement; components that exceed either
//! capacity are split along BFS layers, and transitions that end up
//! crossing PUs ride the global memory-mapped switches (paper, Figure 7).

use std::collections::HashMap;

use sunder_automata::graph::{bfs_layers, connected_components};
use sunder_automata::{Nfa, StateId};

use crate::config::{SunderConfig, ROW_BITS};

/// Where one automaton state landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Location {
    /// Processing-unit index.
    pub pu: u32,
    /// Column within the PU's subarray.
    pub col: u8,
}

/// The per-PU plan: which states sit in which columns.
#[derive(Debug, Clone, Default)]
pub struct PuPlan {
    /// `column → state` for occupied columns (report states in the last
    /// `m` columns).
    pub columns: Vec<(u8, StateId)>,
}

impl PuPlan {
    /// Number of states placed in this PU.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when no states are placed.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }
}

/// A complete placement of an automaton.
#[derive(Debug, Clone)]
pub struct Placement {
    /// Per-PU plans.
    pub pus: Vec<PuPlan>,
    /// Per-state locations, indexed by state id.
    pub locations: Vec<Location>,
    /// Transitions that cross PUs (ride the global switches).
    pub cross_pu_edges: usize,
    /// Largest number of PUs any single component spans (the paper's
    /// global switches gang 4 PUs = 1024 states; larger spans are
    /// reported so capacity pressure is visible).
    pub max_pus_per_component: usize,
}

/// Errors from placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementError {
    /// The automaton has no states.
    EmptyAutomaton,
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::EmptyAutomaton => write!(f, "cannot place an empty automaton"),
        }
    }
}

impl std::error::Error for PlacementError {}

/// Splits components and bin-packs them into PUs.
///
/// # Errors
///
/// Returns [`PlacementError::EmptyAutomaton`] for an automaton without
/// states.
pub fn place(nfa: &Nfa, config: &SunderConfig) -> Result<Placement, PlacementError> {
    if nfa.num_states() == 0 {
        return Err(PlacementError::EmptyAutomaton);
    }
    // Non-reporting states must stay out of the report-capable tail: the
    // hardware ORs the last `m` columns of the active vector to detect
    // reports, so a plain state there would raise false report cycles.
    let report_cap = config.report_columns;
    let plain_cap = ROW_BITS - report_cap;

    // 1. Chunk every component under both capacities, visiting states in
    //    BFS-layer order so chains split along "time" (few cut edges).
    let layers = bfs_layers(nfa);
    let components = connected_components(nfa);
    let mut chunks: Vec<(usize, Vec<StateId>)> = Vec::new(); // (component, states)
    for (ci, mut members) in components.into_iter().enumerate() {
        members.sort_by_key(|s| (layers[s.index()], s.index()));
        let mut current: Vec<StateId> = Vec::new();
        let mut current_reports = 0usize;
        let mut current_plain = 0usize;
        for s in members {
            let is_report = nfa.state(s).is_reporting();
            let overflow = if is_report {
                current_reports + 1 > report_cap
            } else {
                current_plain + 1 > plain_cap
            };
            if overflow {
                chunks.push((ci, std::mem::take(&mut current)));
                current_reports = 0;
                current_plain = 0;
            }
            current_reports += usize::from(is_report);
            current_plain += usize::from(!is_report);
            current.push(s);
        }
        if !current.is_empty() {
            chunks.push((ci, current));
        }
    }

    // 2. First-fit-decreasing bin packing of chunks into PUs.
    chunks.sort_by_key(|(_, c)| std::cmp::Reverse(c.len()));
    struct Bin {
        plain: usize,
        reports: usize,
        chunks: Vec<usize>,
    }
    let mut bins: Vec<Bin> = Vec::new();
    let mut chunk_bin: Vec<usize> = vec![0; chunks.len()];
    for (idx, (_, chunk)) in chunks.iter().enumerate() {
        let reports = chunk
            .iter()
            .filter(|&&s| nfa.state(s).is_reporting())
            .count();
        let plain = chunk.len() - reports;
        let slot = bins
            .iter()
            .position(|b| b.plain + plain <= plain_cap && b.reports + reports <= report_cap);
        let bi = match slot {
            Some(bi) => bi,
            None => {
                bins.push(Bin {
                    plain: 0,
                    reports: 0,
                    chunks: Vec::new(),
                });
                bins.len() - 1
            }
        };
        bins[bi].plain += plain;
        bins[bi].reports += reports;
        bins[bi].chunks.push(idx);
        chunk_bin[idx] = bi;
    }

    // 3. Column assignment: non-report states from column 0 upward, report
    //    states from the report-capable tail (columns 256−m .. 255).
    let mut pus: Vec<PuPlan> = (0..bins.len()).map(|_| PuPlan::default()).collect();
    let mut locations = vec![
        Location {
            pu: u32::MAX,
            col: 0
        };
        nfa.num_states()
    ];
    for (bi, bin) in bins.iter().enumerate() {
        let mut next_plain: usize = 0;
        let mut next_report: usize = ROW_BITS - report_cap;
        for &ci in &bin.chunks {
            for &s in &chunks[ci].1 {
                let col = if nfa.state(s).is_reporting() {
                    let c = next_report;
                    next_report += 1;
                    c
                } else {
                    let c = next_plain;
                    next_plain += 1;
                    c
                };
                debug_assert!(col < ROW_BITS);
                pus[bi].columns.push((col as u8, s));
                locations[s.index()] = Location {
                    pu: bi as u32,
                    col: col as u8,
                };
            }
        }
    }

    // 4. Statistics: cross-PU edges and component spans.
    let mut cross = 0usize;
    for (id, _) in nfa.states() {
        let from = locations[id.index()].pu;
        for &t in nfa.successors(id) {
            if locations[t.index()].pu != from {
                cross += 1;
            }
        }
    }
    let mut span: HashMap<usize, Vec<u32>> = HashMap::new();
    for (idx, (ci, _)) in chunks.iter().enumerate() {
        span.entry(*ci).or_default().push(chunk_bin[idx] as u32);
    }
    let max_pus_per_component = span
        .values()
        .map(|pus| {
            let mut v = pus.clone();
            v.sort_unstable();
            v.dedup();
            v.len()
        })
        .max()
        .unwrap_or(0);

    Ok(Placement {
        pus,
        locations,
        cross_pu_edges: cross,
        max_pus_per_component,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sunder_automata::regex::compile_rule_set;
    use sunder_automata::{StartKind, Ste, SymbolSet};
    use sunder_transform::Rate;

    fn config() -> SunderConfig {
        SunderConfig::with_rate(Rate::Nibble4)
    }

    #[test]
    fn small_rule_set_fits_one_pu() {
        let nfa = compile_rule_set(&["abc", "de"]).unwrap();
        let p = place(&nfa, &config()).unwrap();
        assert_eq!(p.pus.len(), 1);
        assert_eq!(p.cross_pu_edges, 0);
        assert_eq!(p.max_pus_per_component, 1);
        // Every state has a valid location.
        for (i, loc) in p.locations.iter().enumerate() {
            assert_ne!(loc.pu, u32::MAX, "state {i} unplaced");
        }
    }

    #[test]
    fn report_states_sit_in_report_columns() {
        let nfa = compile_rule_set(&["abc"]).unwrap();
        let cfg = config();
        let p = place(&nfa, &cfg).unwrap();
        for (col, s) in &p.pus[0].columns {
            let reporting = nfa.state(*s).is_reporting();
            let in_tail = (*col as usize) >= ROW_BITS - cfg.report_columns;
            assert_eq!(reporting, in_tail, "column {col}");
        }
    }

    #[test]
    fn report_capacity_forces_split() {
        // 30 single-state reporting patterns: m = 12 → at least 3 PUs.
        let patterns: Vec<String> = (0..30)
            .map(|i| format!("{}", (b'a' + i % 26) as char))
            .collect();
        let refs: Vec<&str> = patterns.iter().map(String::as_str).collect();
        let nfa = compile_rule_set(&refs).unwrap();
        let p = place(&nfa, &config()).unwrap();
        assert_eq!(p.pus.len(), 3);
        for pu in &p.pus {
            let reports = pu
                .columns
                .iter()
                .filter(|(_, s)| nfa.state(*s).is_reporting())
                .count();
            assert!(reports <= 12);
        }
    }

    #[test]
    fn big_component_splits_across_pus_with_cross_edges() {
        // One long chain of 600 states must span ≥ 3 PUs.
        let mut nfa = sunder_automata::Nfa::new(8);
        let mut prev = None;
        for i in 0..600u32 {
            let mut ste = Ste::new(SymbolSet::singleton(8, (i % 256) as u16));
            if i == 0 {
                ste = ste.start(StartKind::AllInput);
            }
            if i == 599 {
                ste = ste.report(0);
            }
            let s = nfa.add_state(ste);
            if let Some(p) = prev {
                nfa.add_edge(p, s);
            }
            prev = Some(s);
        }
        let p = place(&nfa, &config()).unwrap();
        assert!(p.pus.len() >= 3);
        assert!(p.cross_pu_edges >= 2, "chain cut at least twice");
        assert!(p.max_pus_per_component >= 3);
    }

    #[test]
    fn state_capacity_respected() {
        let patterns: Vec<String> = (0..100)
            .map(|i| format!("x{:02}[0-9]ab", i % 100))
            .collect();
        let refs: Vec<&str> = patterns.iter().map(String::as_str).collect();
        let nfa = compile_rule_set(&refs).unwrap();
        let p = place(&nfa, &config()).unwrap();
        for pu in &p.pus {
            assert!(pu.len() <= ROW_BITS);
            // No duplicate columns.
            let mut cols: Vec<u8> = pu.columns.iter().map(|(c, _)| *c).collect();
            cols.sort_unstable();
            cols.dedup();
            assert_eq!(cols.len(), pu.columns.len());
        }
    }

    #[test]
    fn empty_automaton_rejected() {
        let nfa = sunder_automata::Nfa::new(8);
        assert_eq!(
            place(&nfa, &config()).unwrap_err(),
            PlacementError::EmptyAutomaton
        );
    }
}
