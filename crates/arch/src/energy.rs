//! First-order dynamic-energy accounting for machine runs.
//!
//! The paper reports subarray read powers (Table 2) but no end-to-end
//! energy; this module combines the run statistics the machine collects
//! (PU-work cycles, report entries, flushes) with the technology model's
//! power figures to estimate where a run's energy goes. Activity-gated
//! PUs consume only when they do work, which is exactly what
//! [`RunStats::pu_work_cycles`] counts.

use sunder_tech::params::SUNDER_8T;
use sunder_tech::{Architecture, PipelineTiming};

use crate::config::SunderConfig;
use crate::stats::RunStats;

/// Energy decomposition of one run, in picojoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyEstimate {
    /// Matching + interconnect reads on active PUs.
    pub kernel_pj: f64,
    /// Report-entry writes into the regions.
    pub reporting_pj: f64,
    /// Region drains (flush or FIFO row reads).
    pub drain_pj: f64,
}

impl EnergyEstimate {
    /// Total dynamic energy.
    pub fn total_pj(&self) -> f64 {
        self.kernel_pj + self.reporting_pj + self.drain_pj
    }

    /// Energy per input byte, if any input was consumed.
    pub fn pj_per_byte(&self, input_bytes: u64) -> f64 {
        if input_bytes == 0 {
            0.0
        } else {
            self.total_pj() / input_bytes as f64
        }
    }
}

/// Estimates the dynamic energy of a run.
///
/// Per PU-work cycle, one 8T matching read and one 8T crossbar read fire
/// (Table 2 read power over the Sunder clock); a report-entry write and a
/// row drain are charged as one row access each.
pub fn estimate(stats: &RunStats, config: &SunderConfig) -> EnergyEstimate {
    let freq_ghz = PipelineTiming::of(Architecture::Sunder).operating_freq_ghz;
    // mW / GHz = pJ per cycle.
    let read_pj = SUNDER_8T.read_power_mw / freq_ghz;
    let kernel_pj = stats.pu_work_cycles as f64 * 2.0 * read_pj;
    let reporting_pj = stats.report_entries as f64 * read_pj;
    let drained_rows = stats.fifo_drained_entries as f64 / config.entries_per_row() as f64
        + stats.flushes as f64 * config.report_rows() as f64;
    EnergyEstimate {
        kernel_pj,
        reporting_pj,
        drain_pj: drained_rows * read_pj,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sunder_transform::Rate;

    #[test]
    fn idle_run_costs_nothing() {
        let stats = RunStats {
            input_cycles: 1000,
            ..RunStats::default()
        };
        let e = estimate(&stats, &SunderConfig::with_rate(Rate::Nibble4));
        assert_eq!(e.total_pj(), 0.0);
        assert_eq!(e.pj_per_byte(2000), 0.0);
    }

    #[test]
    fn kernel_energy_scales_with_work() {
        let config = SunderConfig::with_rate(Rate::Nibble4);
        let one = estimate(
            &RunStats {
                pu_work_cycles: 1,
                ..RunStats::default()
            },
            &config,
        );
        let ten = estimate(
            &RunStats {
                pu_work_cycles: 10,
                ..RunStats::default()
            },
            &config,
        );
        assert!((ten.kernel_pj / one.kernel_pj - 10.0).abs() < 1e-9);
        // One PU-cycle = two 8T reads ≈ 3.4 pJ at 3.6 GHz.
        assert!((3.0..3.8).contains(&one.kernel_pj), "{}", one.kernel_pj);
    }

    #[test]
    fn reporting_and_drain_components() {
        let config = SunderConfig::with_rate(Rate::Nibble4);
        let e = estimate(
            &RunStats {
                pu_work_cycles: 100,
                report_entries: 50,
                flushes: 2,
                fifo_drained_entries: 16,
                ..RunStats::default()
            },
            &config,
        );
        assert!(e.reporting_pj > 0.0);
        assert!(e.drain_pj > 0.0);
        assert!(e.total_pj() > e.kernel_pj);
        // Flush of 192 rows dominates the 2-row FIFO drain.
        let flush_rows = 2.0 * 192.0;
        let fifo_rows = 16.0 / 8.0;
        assert!(
            (e.drain_pj / ((flush_rows + fifo_rows) * (SUNDER_8T.read_power_mw / 3.61)) - 1.0)
                .abs()
                < 0.05
        );
    }

    #[test]
    fn end_to_end_energy_from_machine_run() {
        use sunder_automata::regex::compile_rule_set;
        use sunder_automata::InputView;
        use sunder_transform::transform_to_rate;

        let nfa = compile_rule_set(&["abc"]).unwrap();
        let strided = transform_to_rate(&nfa, Rate::Nibble4).unwrap();
        let config = SunderConfig::with_rate(Rate::Nibble4);
        let mut machine = crate::SunderMachine::new(&strided, config).unwrap();
        let input = b"zzabczzabc";
        let view = InputView::new(input, 4, 4).unwrap();
        machine.run(&view, &mut sunder_sim::NullSink);
        let e = estimate(machine.stats(), &config);
        assert!(e.total_pj() > 0.0);
        assert!(e.pj_per_byte(input.len() as u64) > 0.0);
    }
}
