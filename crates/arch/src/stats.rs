//! Execution statistics of a Sunder run (feeds Table 4), plus the
//! cycle-level stall attribution that breaks the aggregate stall
//! counters down by cause.

use sunder_telemetry::Pow2Histogram;

/// Counters collected by a [`crate::machine::SunderMachine`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Input (kernel) cycles: one per consumed symbol vector.
    pub input_cycles: u64,
    /// Stall cycles added by the reporting architecture.
    pub stall_cycles: u64,
    /// Region fill events ("#Flushes" in Table 4).
    pub flushes: u64,
    /// Report events delivered (matches the functional simulator).
    pub reports: u64,
    /// Report entries written into reporting regions (one per PU per
    /// reporting cycle).
    pub report_entries: u64,
    /// Machine cycles in which at least one report fired.
    pub report_cycles: u64,
    /// Sum over cycles of active states (kernel load).
    pub active_state_cycles: u64,
    /// Sum over cycles of processing units that did any work.
    pub pu_work_cycles: u64,
    /// Stall cycles attributable to host-requested summarization.
    pub summarize_stall_cycles: u64,
    /// Entries drained to the host by the FIFO strategy during execution.
    pub fifo_drained_entries: u64,
    /// Report writes forced down the overflow path by an injected
    /// overflow storm (fault injection; zero in clean runs).
    pub forced_overflows: u64,
    /// Wedged overflows (FIFO drain blocked by a stuck report row)
    /// recovered via a full flush (fault injection; zero in clean runs).
    pub stuck_row_recoveries: u64,
}

impl RunStats {
    /// End-to-end cycles: kernel plus stalls.
    pub fn total_cycles(&self) -> u64 {
        self.input_cycles + self.stall_cycles + self.summarize_stall_cycles
    }

    /// The reporting overhead as Table 4 defines it: total over nominal.
    pub fn reporting_overhead(&self) -> f64 {
        if self.input_cycles == 0 {
            1.0
        } else {
            self.total_cycles() as f64 / self.input_cycles as f64
        }
    }
}

/// Why the machine stalled. Every cycle in [`RunStats::stall_cycles`]
/// and [`RunStats::summarize_stall_cycles`] is attributable to exactly
/// one cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallCause {
    /// FIFO mode: a region overflowed and the write waited one drain
    /// period for a row to free up.
    FifoDrainWait,
    /// Flush mode: a region filled and the whole device stalled while it
    /// burst out through Port 1.
    FlushDrain,
    /// FIFO mode, wedged: a stuck report row blocked the drain, and the
    /// machine recovered with a full flush.
    StuckRowRecovery,
    /// Host-requested summarization (Port 2 multi-row activation
    /// batches). Accounted separately from execution stalls, mirroring
    /// [`RunStats::summarize_stall_cycles`].
    Summarize,
}

impl StallCause {
    /// Every cause, in display order.
    pub const ALL: [StallCause; 4] = [
        StallCause::FifoDrainWait,
        StallCause::FlushDrain,
        StallCause::StuckRowRecovery,
        StallCause::Summarize,
    ];

    /// Stable snake_case name (the `cause` label in telemetry metrics).
    pub fn name(self) -> &'static str {
        match self {
            StallCause::FifoDrainWait => "fifo_drain_wait",
            StallCause::FlushDrain => "flush_drain",
            StallCause::StuckRowRecovery => "stuck_row_recovery",
            StallCause::Summarize => "summarize",
        }
    }

    fn index(self) -> usize {
        match self {
            StallCause::FifoDrainWait => 0,
            StallCause::FlushDrain => 1,
            StallCause::StuckRowRecovery => 2,
            StallCause::Summarize => 3,
        }
    }
}

/// Per-cause stall accounting: total cycles and an episode-length
/// histogram for each [`StallCause`].
///
/// Charged at exactly the same sites (and under the same same-cycle
/// deduplication) as the aggregate [`RunStats`] stall counters, so the
/// invariant holds by construction:
/// execution-cause totals sum to [`RunStats::stall_cycles`] and the
/// summarize total equals [`RunStats::summarize_stall_cycles`]. Lives
/// outside `RunStats` to keep that struct `Copy` (runs are compared
/// with `==` across the workspace).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StallAttribution {
    episodes: [Pow2Histogram; 4],
}

impl StallAttribution {
    /// Records one stall episode of `cycles` cycles.
    pub fn charge(&mut self, cause: StallCause, cycles: u64) {
        self.episodes[cause.index()].record(cycles);
        if sunder_telemetry::spans_enabled() {
            sunder_telemetry::instant(
                "machine.stall",
                &[
                    ("cause", sunder_telemetry::Value::from(cause.name())),
                    ("cycles", sunder_telemetry::Value::from(cycles)),
                ],
            );
        }
    }

    /// Total stall cycles attributed to `cause`.
    pub fn cycles(&self, cause: StallCause) -> u64 {
        self.episodes[cause.index()].total()
    }

    /// Stall episodes attributed to `cause`.
    pub fn count(&self, cause: StallCause) -> u64 {
        self.episodes[cause.index()].count()
    }

    /// Episode-length histogram for `cause`.
    pub fn episodes(&self, cause: StallCause) -> &Pow2Histogram {
        &self.episodes[cause.index()]
    }

    /// Execution stall cycles across causes — equals
    /// [`RunStats::stall_cycles`] for the same run.
    pub fn stall_cycles(&self) -> u64 {
        StallCause::ALL
            .iter()
            .filter(|c| !matches!(c, StallCause::Summarize))
            .map(|&c| self.cycles(c))
            .sum()
    }

    /// Exports per-cause counters and episode histograms into the
    /// telemetry registry under the given `bench` label. No-op when
    /// telemetry is disabled.
    pub fn export_metrics(&self, bench: &str) {
        if !sunder_telemetry::enabled() {
            return;
        }
        for cause in StallCause::ALL {
            if self.count(cause) == 0 {
                continue;
            }
            sunder_telemetry::counter_add(
                "machine_stall_cycles_total",
                &[("bench", bench), ("cause", cause.name())],
                self.cycles(cause),
            );
            sunder_telemetry::histogram_merge(
                "machine_stall_episode_cycles",
                &[("bench", bench), ("cause", cause.name())],
                self.episodes(cause),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_is_total_over_nominal() {
        let s = RunStats {
            input_cycles: 1000,
            stall_cycles: 40,
            summarize_stall_cycles: 10,
            ..RunStats::default()
        };
        assert_eq!(s.total_cycles(), 1050);
        assert!((s.reporting_overhead() - 1.05).abs() < 1e-12);
    }

    #[test]
    fn empty_run_has_unit_overhead() {
        assert_eq!(RunStats::default().reporting_overhead(), 1.0);
    }

    #[test]
    fn attribution_partitions_by_cause() {
        let mut att = StallAttribution::default();
        att.charge(StallCause::FlushDrain, 224);
        att.charge(StallCause::FlushDrain, 224);
        att.charge(StallCause::FifoDrainWait, 8);
        att.charge(StallCause::Summarize, 28);
        assert_eq!(att.cycles(StallCause::FlushDrain), 448);
        assert_eq!(att.count(StallCause::FlushDrain), 2);
        assert_eq!(att.cycles(StallCause::FifoDrainWait), 8);
        assert_eq!(att.cycles(StallCause::StuckRowRecovery), 0);
        // Summarize is host-side and excluded from execution stalls.
        assert_eq!(att.stall_cycles(), 456);
        assert_eq!(att.cycles(StallCause::Summarize), 28);
        // 224-cycle episodes land in bucket 7 (128..=255).
        assert_eq!(att.episodes(StallCause::FlushDrain).bucket(7), 2);
    }

    #[test]
    fn cause_names_are_stable() {
        let names: Vec<&str> = StallCause::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(
            names,
            vec![
                "fifo_drain_wait",
                "flush_drain",
                "stuck_row_recovery",
                "summarize"
            ]
        );
    }
}
