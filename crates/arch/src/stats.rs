//! Execution statistics of a Sunder run (feeds Table 4).

/// Counters collected by a [`crate::machine::SunderMachine`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Input (kernel) cycles: one per consumed symbol vector.
    pub input_cycles: u64,
    /// Stall cycles added by the reporting architecture.
    pub stall_cycles: u64,
    /// Region fill events ("#Flushes" in Table 4).
    pub flushes: u64,
    /// Report events delivered (matches the functional simulator).
    pub reports: u64,
    /// Report entries written into reporting regions (one per PU per
    /// reporting cycle).
    pub report_entries: u64,
    /// Machine cycles in which at least one report fired.
    pub report_cycles: u64,
    /// Sum over cycles of active states (kernel load).
    pub active_state_cycles: u64,
    /// Sum over cycles of processing units that did any work.
    pub pu_work_cycles: u64,
    /// Stall cycles attributable to host-requested summarization.
    pub summarize_stall_cycles: u64,
    /// Entries drained to the host by the FIFO strategy during execution.
    pub fifo_drained_entries: u64,
    /// Report writes forced down the overflow path by an injected
    /// overflow storm (fault injection; zero in clean runs).
    pub forced_overflows: u64,
    /// Wedged overflows (FIFO drain blocked by a stuck report row)
    /// recovered via a full flush (fault injection; zero in clean runs).
    pub stuck_row_recoveries: u64,
}

impl RunStats {
    /// End-to-end cycles: kernel plus stalls.
    pub fn total_cycles(&self) -> u64 {
        self.input_cycles + self.stall_cycles + self.summarize_stall_cycles
    }

    /// The reporting overhead as Table 4 defines it: total over nominal.
    pub fn reporting_overhead(&self) -> f64 {
        if self.input_cycles == 0 {
            1.0
        } else {
            self.total_cycles() as f64 / self.input_cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_is_total_over_nominal() {
        let s = RunStats {
            input_cycles: 1000,
            stall_cycles: 40,
            summarize_stall_cycles: 10,
            ..RunStats::default()
        };
        assert_eq!(s.total_cycles(), 1050);
        assert!((s.reporting_overhead() - 1.05).abs() < 1e-12);
    }

    #[test]
    fn empty_run_has_unit_overhead() {
        assert_eq!(RunStats::default().reporting_overhead(), 1.0);
    }
}
