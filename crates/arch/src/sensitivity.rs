//! Input-stream sensitivity model (paper, Section 7.5 / Figure 10).
//!
//! Figure 10 sweeps the fraction of reporting cycles from 1% to 100% for a
//! single subarray with 12 reporting states and plots the slowdown with
//! and without report summarization. The analytic model:
//!
//! * the region fills after `capacity / fraction` cycles (one entry per
//!   reporting cycle);
//! * **without summarization** a fill drains the whole region to the host
//!   at [`HOST_ROW_READ_CYCLES`] per row;
//! * **with summarization** the hardware NORs the region in 16-row batches
//!   (2 stall cycles each) and ships one summary row per batch instead.
//!
//! With the calibrated host read cost the model lands on the paper's
//! anchor points: ~7× worst-case slowdown without summarization and ~1.4×
//! with it.

use crate::config::{SunderConfig, SUMMARIZE_BATCH_ROWS};

/// Host read latency per region row when draining across the cache/host
/// interface (calibrated to Figure 10's 7× worst case; see EXPERIMENTS.md).
pub const HOST_ROW_READ_CYCLES: u64 = 48;

/// Stall cycles per 16-row summarization batch (Port 2 multi-row
/// activation; "1-2 cycles" in the paper).
pub const SUMMARIZE_BATCH_STALL: u64 = 2;

/// Slowdown of one subarray at a given report-cycle fraction.
///
/// `fraction` is the probability that a cycle generates a report entry
/// (`0 < fraction ≤ 1`); `summarize` selects the summarization strategy.
///
/// # Panics
///
/// Panics if `fraction` is not in `(0, 1]`.
pub fn slowdown(config: &SunderConfig, fraction: f64, summarize: bool) -> f64 {
    assert!(
        fraction > 0.0 && fraction <= 1.0,
        "fraction must be in (0,1]"
    );
    let capacity = config.region_capacity() as f64;
    let fill_interval = capacity / fraction; // cycles between overflows
    let rows = config.report_rows() as u64;
    let stall = if summarize {
        let batches = rows.div_ceil(SUMMARIZE_BATCH_ROWS as u64);
        batches * (SUMMARIZE_BATCH_STALL + HOST_ROW_READ_CYCLES)
    } else {
        rows * HOST_ROW_READ_CYCLES
    };
    (fill_interval + stall as f64) / fill_interval
}

/// The Figure 10 sweep: report-cycle percentages with both strategies.
pub fn figure10(config: &SunderConfig, percents: &[u32]) -> Vec<(u32, f64, f64)> {
    percents
        .iter()
        .map(|&p| {
            let f = f64::from(p) / 100.0;
            (p, slowdown(config, f, false), slowdown(config, f, true))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sunder_transform::Rate;

    fn config() -> SunderConfig {
        SunderConfig::with_rate(Rate::Nibble4)
    }

    #[test]
    fn worst_case_matches_paper_anchors() {
        // Paper: 7× at 100% without summarization, 1.4× with it.
        let no_sum = slowdown(&config(), 1.0, false);
        assert!((6.5..7.5).contains(&no_sum), "no-summarize {no_sum}");
        let with_sum = slowdown(&config(), 1.0, true);
        assert!((1.3..1.5).contains(&with_sum), "summarize {with_sum}");
    }

    #[test]
    fn negligible_below_five_percent() {
        // Paper: "negligible performance overhead when the reporting
        // cycles are less than 5%".
        let s = slowdown(&config(), 0.05, false);
        assert!(s < 1.35, "5% slowdown {s}");
        let s1 = slowdown(&config(), 0.01, false);
        assert!(s1 < 1.07, "1% slowdown {s1}");
    }

    #[test]
    fn monotone_in_fraction() {
        let c = config();
        let mut prev = 1.0;
        for p in [1, 5, 10, 25, 50, 75, 100] {
            let s = slowdown(&c, f64::from(p) / 100.0, false);
            assert!(s >= prev, "non-monotone at {p}%");
            prev = s;
        }
    }

    #[test]
    fn summarization_always_wins() {
        let c = config();
        for p in [1, 10, 50, 100] {
            let f = f64::from(p) / 100.0;
            assert!(slowdown(&c, f, true) < slowdown(&c, f, false));
        }
    }

    #[test]
    fn figure10_sweep_shape() {
        let rows = figure10(&config(), &[1, 25, 50, 100]);
        assert_eq!(rows.len(), 4);
        assert!(rows[3].1 > rows[0].1);
        assert!(rows[3].2 < rows[3].1);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn zero_fraction_panics() {
        let _ = slowdown(&config(), 0.0, false);
    }
}
