//! Bit-level model of the 256×256 dual-port 8T SRAM subarray.
//!
//! The subarray is the physical substrate of a processing unit: columns are
//! states, the top `16k` rows one-hot encode `k` nibbles of matching data,
//! and the remaining rows store reporting entries (paper, Figure 4).
//!
//! The 8T cell's two ports are modeled functionally:
//!
//! * **Port 1** (read/write wordlines, left 8:256 decoder) — configuration
//!   writes, report writes, and host report reads: [`Subarray::read_row`],
//!   [`Subarray::write_row`], [`Subarray::write_bits`].
//! * **Port 2** (read-only, right 4:16 decoders) — state matching via
//!   multi-row activation: activating one row per nibble group and sensing
//!   the wired-NOR computes the bitwise AND of the activated rows
//!   ([`Subarray::multi_row_and`]), and activating a batch of report rows
//!   computes their column-wise OR for summarization
//!   ([`Subarray::or_rows`]).

use crate::config::{ROW_BITS, SUBARRAY_ROWS};

/// One 256-bit row, as four machine words.
pub type Row = [u64; 4];

/// An all-zeroes row.
pub const ZERO_ROW: Row = [0; 4];

/// A 256×256 bit array with the operations Sunder uses.
#[derive(Debug, Clone)]
pub struct Subarray {
    rows: Vec<Row>,
}

impl Default for Subarray {
    fn default() -> Self {
        Self::new()
    }
}

impl Subarray {
    /// An all-zero subarray.
    pub fn new() -> Self {
        Subarray {
            rows: vec![ZERO_ROW; SUBARRAY_ROWS],
        }
    }

    /// Sets a single bit (configuration-time write through Port 1).
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of range.
    pub fn set_bit(&mut self, row: usize, col: usize, value: bool) {
        assert!(col < ROW_BITS, "column {col} out of range");
        let (w, b) = (col / 64, col % 64);
        if value {
            self.rows[row][w] |= 1 << b;
        } else {
            self.rows[row][w] &= !(1 << b);
        }
    }

    /// Reads a single bit.
    pub fn bit(&self, row: usize, col: usize) -> bool {
        assert!(col < ROW_BITS, "column {col} out of range");
        self.rows[row][col / 64] >> (col % 64) & 1 == 1
    }

    /// Reads a whole row (Port 1).
    pub fn read_row(&self, row: usize) -> Row {
        self.rows[row]
    }

    /// Overwrites a whole row (Port 1).
    pub fn write_row(&mut self, row: usize, value: Row) {
        self.rows[row] = value;
    }

    /// ORs `bits` into a row (masked write of a report entry: only the
    /// entry's bit-lines are driven, the rest of the row is untouched).
    pub fn write_bits(&mut self, row: usize, bits: Row) {
        for (dst, src) in self.rows[row].iter_mut().zip(bits) {
            *dst |= src;
        }
    }

    /// Clears a range of rows (region flush).
    pub fn clear_rows(&mut self, rows: std::ops::Range<usize>) {
        for r in rows {
            self.rows[r] = ZERO_ROW;
        }
    }

    /// Multi-row activation on Port 2: the bitwise AND of the selected
    /// rows. With one row activated per nibble group this is exactly the
    /// paper's partial-match combination (Section 5.1.1); Jeloka et al.
    /// demonstrated up to 64 simultaneous wordlines.
    ///
    /// # Panics
    ///
    /// Panics if more than 64 rows are activated (beyond the demonstrated
    /// stability envelope) or `rows` is empty.
    pub fn multi_row_and(&self, rows: &[usize]) -> Row {
        assert!(!rows.is_empty(), "must activate at least one row");
        assert!(rows.len() <= 64, "multi-row activation limited to 64 rows");
        let mut acc = self.rows[rows[0]];
        for &r in &rows[1..] {
            for (a, b) in acc.iter_mut().zip(self.rows[r]) {
                *a &= b;
            }
        }
        acc
    }

    /// Column-wise OR of a row range (Port 2 wired-NOR with an inverted
    /// sense): the primitive behind report summarization.
    pub fn or_rows(&self, rows: std::ops::Range<usize>) -> Row {
        let mut acc = ZERO_ROW;
        for r in rows {
            for (a, b) in acc.iter_mut().zip(self.rows[r]) {
                *a |= b;
            }
        }
        acc
    }
}

/// Bit-vector helpers for [`Row`] values.
pub mod rowops {
    use super::Row;

    /// Tests whether any bit is set.
    pub fn any(row: &Row) -> bool {
        row.iter().any(|&w| w != 0)
    }

    /// Bitwise AND.
    pub fn and(a: &Row, b: &Row) -> Row {
        [a[0] & b[0], a[1] & b[1], a[2] & b[2], a[3] & b[3]]
    }

    /// Bitwise OR into `a`.
    pub fn or_assign(a: &mut Row, b: &Row) {
        for (x, y) in a.iter_mut().zip(b) {
            *x |= y;
        }
    }

    /// Number of set bits.
    pub fn count(row: &Row) -> usize {
        row.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Tests one bit.
    pub fn get(row: &Row, col: usize) -> bool {
        row[col / 64] >> (col % 64) & 1 == 1
    }

    /// Sets one bit.
    pub fn set(row: &mut Row, col: usize) {
        row[col / 64] |= 1 << (col % 64);
    }

    /// Iterates over set-bit positions in ascending order.
    pub fn iter_ones(row: &Row) -> impl Iterator<Item = usize> + '_ {
        row.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::rowops::*;
    use super::*;

    #[test]
    fn bit_roundtrip() {
        let mut s = Subarray::new();
        s.set_bit(10, 200, true);
        assert!(s.bit(10, 200));
        assert!(!s.bit(10, 201));
        s.set_bit(10, 200, false);
        assert!(!s.bit(10, 200));
    }

    #[test]
    fn multi_row_and_is_intersection() {
        let mut s = Subarray::new();
        for col in [1, 2, 3] {
            s.set_bit(0, col, true);
        }
        for col in [2, 3, 4] {
            s.set_bit(16, col, true);
        }
        let m = s.multi_row_and(&[0, 16]);
        assert!(!get(&m, 1));
        assert!(get(&m, 2));
        assert!(get(&m, 3));
        assert!(!get(&m, 4));
    }

    #[test]
    fn or_rows_is_union() {
        let mut s = Subarray::new();
        s.set_bit(64, 7, true);
        s.set_bit(100, 9, true);
        let m = s.or_rows(64..256);
        assert!(get(&m, 7) && get(&m, 9));
        assert_eq!(count(&m), 2);
        let none = s.or_rows(0..64);
        assert!(!any(&none));
    }

    #[test]
    fn write_bits_is_masked_or() {
        let mut s = Subarray::new();
        s.set_bit(70, 0, true);
        let mut extra = ZERO_ROW;
        set(&mut extra, 255);
        s.write_bits(70, extra);
        assert!(s.bit(70, 0), "masked write must not clobber other bits");
        assert!(s.bit(70, 255));
    }

    #[test]
    fn clear_rows_flushes() {
        let mut s = Subarray::new();
        s.set_bit(64, 1, true);
        s.set_bit(63, 1, true);
        s.clear_rows(64..256);
        assert!(!s.bit(64, 1));
        assert!(s.bit(63, 1), "matching rows survive a region flush");
    }

    #[test]
    #[should_panic(expected = "limited to 64")]
    fn multi_row_activation_bound() {
        let s = Subarray::new();
        let rows: Vec<usize> = (0..65).collect();
        let _ = s.multi_row_and(&rows);
    }

    #[test]
    fn iter_ones_order() {
        let mut r = ZERO_ROW;
        set(&mut r, 3);
        set(&mut r, 64);
        set(&mut r, 255);
        let v: Vec<usize> = iter_ones(&r).collect();
        assert_eq!(v, vec![3, 64, 255]);
    }
}
