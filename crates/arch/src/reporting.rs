//! The in-place reporting region (paper, Section 5.1.2).
//!
//! Nibble processing leaves most of a state-matching subarray's 256 rows
//! unused; Sunder stores report entries there. Each entry packs an `m`-bit
//! report vector (which of the subarray's report-capable columns fired)
//! with an `n`-bit cycle stamp from the global counter. A local counter
//! (paper, Equation 1) addresses the next free row/slot.
//!
//! The region is a ring of entries:
//!
//! * **without FIFO**, the host only drains on overflow — a *flush* — and
//!   execution stalls while the region streams out through Port 1;
//! * **with FIFO**, the host continuously reads from the tail through
//!   Port 1 while Port 2 keeps matching, so overflow (and therefore any
//!   stall) only happens when generation outpaces the drain rate.
//!
//! *Report summarization* ORs the region's rows column-wise in 16-row
//! batches (wired-NOR on Port 2) and hands the host one `m`-bit occurrence
//! vector instead of the full cycle-accurate log.

use crate::config::{SunderConfig, SUMMARIZE_BATCH_ROWS};
use crate::subarray::{rowops, Row, Subarray};

/// One decoded report entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReportEntry {
    /// Which of the `m` report columns fired (bit `i` = report column `i`).
    pub report_mask: u32,
    /// The `n`-bit cycle stamp.
    pub cycle: u32,
}

/// Outcome of a report write attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOutcome {
    /// Entry stored.
    Stored,
    /// Region is full; the machine must stall (flush or FIFO wait).
    Full,
}

/// Ring-buffer state of one subarray's reporting region.
#[derive(Debug, Clone)]
pub struct ReportRegion {
    base_row: usize,
    rows: usize,
    entry_bits: usize,
    entries_per_row: usize,
    report_columns: usize,
    metadata_bits: usize,
    /// Next entry index to write (monotone; wraps modulo capacity).
    head: u64,
    /// Oldest unread entry index.
    tail: u64,
    /// Total entries ever written.
    pub entries_written: u64,
    /// Fill (overflow) events.
    pub fill_events: u64,
}

impl ReportRegion {
    /// Creates the region for a subarray under `config`.
    pub fn new(config: &SunderConfig) -> Self {
        assert!(config.entry_bits() <= 64, "entry must fit in 64 bits");
        ReportRegion {
            base_row: config.matching_rows(),
            rows: config.report_rows(),
            entry_bits: config.entry_bits(),
            entries_per_row: config.entries_per_row(),
            report_columns: config.report_columns,
            metadata_bits: config.metadata_bits,
            head: 0,
            tail: 0,
            entries_written: 0,
            fill_events: 0,
        }
    }

    /// Entries the region can hold.
    pub fn capacity(&self) -> u64 {
        (self.rows * self.entries_per_row) as u64
    }

    /// Entries currently stored.
    pub fn len(&self) -> u64 {
        self.head - self.tail
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.head == self.tail
    }

    /// True when the next write would overflow.
    pub fn is_full(&self) -> bool {
        self.len() == self.capacity()
    }

    fn entry_location(&self, index: u64) -> (usize, usize) {
        let e = (index % self.capacity()) as usize;
        let row = self.base_row + e / self.entries_per_row;
        let bit = (e % self.entries_per_row) * self.entry_bits;
        (row, bit)
    }

    /// Attempts to store an entry. `report_mask` holds the fired report
    /// columns, `cycle` the global-counter value (truncated to `n` bits,
    /// as the hardware's counter would wrap).
    pub fn write(&mut self, subarray: &mut Subarray, report_mask: u32, cycle: u64) -> WriteOutcome {
        if self.is_full() {
            self.fill_events += 1;
            return WriteOutcome::Full;
        }
        let meta_mask = if self.metadata_bits >= 32 {
            u32::MAX
        } else {
            (1u32 << self.metadata_bits) - 1
        };
        let value = (u64::from(report_mask) & ((1u64 << self.report_columns) - 1))
            | (u64::from((cycle as u32) & meta_mask) << self.report_columns);
        let (row, bit) = self.entry_location(self.head);
        let mut current = subarray.read_row(row);
        clear_field(&mut current, bit, self.entry_bits);
        set_field(&mut current, bit, value);
        subarray.write_row(row, current);
        self.head += 1;
        self.entries_written += 1;
        WriteOutcome::Stored
    }

    /// FIFO drain: the host reads (and frees) up to one row's worth of the
    /// oldest entries. Returns the decoded entries.
    pub fn drain_row(&mut self, subarray: &Subarray) -> Vec<ReportEntry> {
        let n = (self.entries_per_row as u64).min(self.len());
        let mut out = Vec::with_capacity(n as usize);
        for _ in 0..n {
            out.push(self.decode_at(subarray, self.tail));
            self.tail += 1;
        }
        out
    }

    /// Full flush: the host reads everything and the region empties.
    pub fn flush(&mut self, subarray: &mut Subarray) -> Vec<ReportEntry> {
        let mut out = Vec::with_capacity(self.len() as usize);
        while self.tail < self.head {
            out.push(self.decode_at(subarray, self.tail));
            self.tail += 1;
        }
        subarray.clear_rows(self.base_row..self.base_row + self.rows);
        out
    }

    fn decode_at(&self, subarray: &Subarray, index: u64) -> ReportEntry {
        let (row, bit) = self.entry_location(index);
        let raw = get_field(&subarray.read_row(row), bit, self.entry_bits);
        ReportEntry {
            report_mask: (raw & ((1u64 << self.report_columns) - 1)) as u32,
            cycle: (raw >> self.report_columns) as u32,
        }
    }

    /// Reads entry `index` (0 = oldest) without consuming it — the paper's
    /// *selective reporting*: the host can inspect any report row at any
    /// time through Port 1 in constant time.
    pub fn peek(&self, subarray: &Subarray, index: u64) -> Option<ReportEntry> {
        if index >= self.len() {
            return None;
        }
        Some(self.decode_at(subarray, self.tail + index))
    }

    /// Report summarization: column-wise OR over the region's rows (done
    /// by the hardware in 16-row batches on Port 2), folded across the
    /// entry slots into one `m`-bit occurrence vector.
    pub fn summarize(&self, subarray: &Subarray) -> u32 {
        let mut acc: Row = [0; 4];
        let mut row = self.base_row;
        while row < self.base_row + self.rows {
            let batch_end = (row + SUMMARIZE_BATCH_ROWS).min(self.base_row + self.rows);
            let batch = subarray.or_rows(row..batch_end);
            rowops::or_assign(&mut acc, &batch);
            row = batch_end;
        }
        let mut mask = 0u32;
        for slot in 0..self.entries_per_row {
            let v = get_field(&acc, slot * self.entry_bits, self.entry_bits);
            mask |= (v & ((1u64 << self.report_columns) - 1)) as u32;
        }
        mask
    }

    /// Number of 16-row batches one summarization touches (each stalls
    /// matching for the multi-row activation on Port 2).
    pub fn summarize_batches(&self) -> u64 {
        self.rows.div_ceil(SUMMARIZE_BATCH_ROWS) as u64
    }
}

/// Decodes every entry slot of one region row — the host-side view of a
/// row fetched through the cache (`clflush` spill or a plain load). Slots
/// the region never wrote decode as zeroed entries; callers track the fill
/// level separately (e.g. via the local counter or the machine's
/// `region_len`).
pub fn decode_row_entries(config: &SunderConfig, row: &Row) -> Vec<ReportEntry> {
    let m = config.report_columns;
    let entry_bits = config.entry_bits();
    (0..config.entries_per_row())
        .map(|slot| {
            let raw = get_field(row, slot * entry_bits, entry_bits);
            ReportEntry {
                report_mask: (raw & ((1u64 << m) - 1)) as u32,
                cycle: (raw >> m) as u32,
            }
        })
        .collect()
}

fn set_field(row: &mut Row, bit: usize, value: u64) {
    let w = bit / 64;
    let off = bit % 64;
    row[w] |= value << off;
    if off > 0 && w + 1 < 4 {
        let spill = value.checked_shr((64 - off) as u32).unwrap_or(0);
        if 64 - off < 64 {
            row[w + 1] |= spill;
        }
    }
}

fn clear_field(row: &mut Row, bit: usize, width: usize) {
    let mask = if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    let w = bit / 64;
    let off = bit % 64;
    row[w] &= !(mask << off);
    if off + width > 64 && w + 1 < 4 {
        row[w + 1] &= !(mask >> (64 - off));
    }
}

fn get_field(row: &Row, bit: usize, width: usize) -> u64 {
    let mask = if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    let w = bit / 64;
    let off = bit % 64;
    let mut v = row[w] >> off;
    if off + width > 64 && w + 1 < 4 {
        v |= row[w + 1] << (64 - off);
    }
    v & mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use sunder_transform::Rate;

    fn setup() -> (SunderConfig, Subarray, ReportRegion) {
        let config = SunderConfig::with_rate(Rate::Nibble4);
        let region = ReportRegion::new(&config);
        (config, Subarray::new(), region)
    }

    #[test]
    fn write_and_decode_round_trip() {
        let (_, mut sa, mut region) = setup();
        assert_eq!(region.write(&mut sa, 0b1010, 42), WriteOutcome::Stored);
        assert_eq!(
            region.write(&mut sa, 0xFFF, 1_000_000),
            WriteOutcome::Stored
        );
        let e0 = region.peek(&sa, 0).unwrap();
        assert_eq!(e0.report_mask, 0b1010);
        assert_eq!(e0.cycle, 42);
        let e1 = region.peek(&sa, 1).unwrap();
        assert_eq!(e1.report_mask, 0xFFF);
        // 20-bit metadata wraps the cycle counter.
        assert_eq!(e1.cycle, 1_000_000 & 0xFFFFF);
        assert!(region.peek(&sa, 2).is_none());
    }

    #[test]
    fn capacity_and_fill() {
        let (config, mut sa, mut region) = setup();
        for i in 0..config.region_capacity() {
            assert_eq!(
                region.write(&mut sa, 1, i as u64),
                WriteOutcome::Stored,
                "entry {i}"
            );
        }
        assert!(region.is_full());
        assert_eq!(region.write(&mut sa, 1, 9999), WriteOutcome::Full);
        assert_eq!(region.fill_events, 1);
    }

    #[test]
    fn flush_empties_and_returns_everything() {
        let (_, mut sa, mut region) = setup();
        for i in 0..10 {
            region.write(&mut sa, i as u32 + 1, i);
        }
        let drained = region.flush(&mut sa);
        assert_eq!(drained.len(), 10);
        assert_eq!(drained[3].report_mask, 4);
        assert!(region.is_empty());
        // Physical rows are cleared.
        assert_eq!(region.summarize(&sa), 0);
    }

    #[test]
    fn fifo_drain_preserves_order_and_frees_space() {
        let (config, mut sa, mut region) = setup();
        let cap = config.region_capacity();
        for i in 0..cap {
            region.write(&mut sa, 1 << (i % 12), i as u64);
        }
        assert!(region.is_full());
        let drained = region.drain_row(&sa);
        assert_eq!(drained.len(), config.entries_per_row());
        assert_eq!(drained[0].cycle, 0);
        assert!(!region.is_full());
        // Ring wrap: the freed slots accept new entries that decode right.
        for i in 0..config.entries_per_row() {
            assert_eq!(
                region.write(&mut sa, 0b111, 7000 + i as u64),
                WriteOutcome::Stored
            );
        }
        assert!(region.is_full());
        // The oldest remaining entry is the second original row.
        let e = region.peek(&sa, 0).unwrap();
        assert_eq!(e.cycle, config.entries_per_row() as u32);
    }

    #[test]
    fn summarize_is_or_of_report_masks() {
        let (_, mut sa, mut region) = setup();
        region.write(&mut sa, 0b0001, 5);
        region.write(&mut sa, 0b1000, 9);
        region.write(&mut sa, 0b0010, 100);
        assert_eq!(region.summarize(&sa), 0b1011);
        assert_eq!(region.summarize_batches(), 12); // 192 rows / 16
    }

    #[test]
    fn summarize_sees_entries_in_later_rows() {
        let (config, mut sa, mut region) = setup();
        // Fill 3 full rows so entries land beyond the first region row.
        for i in 0..3 * config.entries_per_row() {
            region.write(&mut sa, if i % 17 == 0 { 0b100 } else { 0 }, i as u64);
        }
        assert_eq!(region.summarize(&sa), 0b100);
    }

    #[test]
    fn field_helpers_straddle_words() {
        // A 24-bit entry layout straddles the 64-bit word boundary.
        let mut row = [0u64; 4];
        set_field(&mut row, 48, 0xAB_CDEF);
        assert_eq!(get_field(&row, 48, 24), 0xAB_CDEF);
        clear_field(&mut row, 48, 24);
        assert_eq!(get_field(&row, 48, 24), 0);
        assert_eq!(row, [0u64; 4]);
    }

    #[test]
    fn local_counter_addressing_matches_rows() {
        let (config, mut sa, mut region) = setup();
        // Write exactly one row of entries; the next entry must land in
        // the following physical row.
        for i in 0..config.entries_per_row() {
            region.write(&mut sa, 0xFFF, i as u64);
        }
        let row0 = sa.read_row(config.matching_rows());
        assert!(rowops::any(&row0));
        let row1 = sa.read_row(config.matching_rows() + 1);
        assert!(!rowops::any(&row1));
        region.write(&mut sa, 0xFFF, 99);
        let row1 = sa.read_row(config.matching_rows() + 1);
        assert!(rowops::any(&row1));
    }
}
