//! Sunder machine configuration (paper, Sections 5 and 7.1).

use sunder_transform::Rate;

/// Bits in one subarray row (and states per processing unit).
pub const ROW_BITS: usize = 256;
/// Rows in one subarray.
pub const SUBARRAY_ROWS: usize = 256;
/// Rows summarized per batch by the column-wise NOR (Section 7.5).
pub const SUMMARIZE_BATCH_ROWS: usize = 16;

/// Configuration of a Sunder device.
///
/// Defaults follow the paper's parameter selection (Section 7.1): 12
/// report-capable columns per subarray (3.9% × 256 ≈ 10, rounded up),
/// 20 metadata bits (a cycle counter covering the 1 MB input), and the
/// 16-bit (4-nibble) processing rate used in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SunderConfig {
    /// Processing rate (nibbles per cycle).
    pub rate: Rate,
    /// Report-capable columns per subarray (`m` in the paper).
    pub report_columns: usize,
    /// Metadata bits per report entry (`n`): the global cycle counter.
    pub metadata_bits: usize,
    /// Enable the FIFO drain strategy (Section 5.1.2): the host reads the
    /// reporting region continuously through Port 1 during execution.
    pub fifo: bool,
    /// FIFO: machine cycles between host row reads (one row = one batch of
    /// entries). 8 sustains one entry per cycle at 8 entries/row.
    pub drain_period_cycles: u32,
    /// Without FIFO: stall cycles per region row during a flush. The
    /// on-chip burst drain reads one row per cycle (cf. EXPERIMENTS.md for
    /// the calibration discussion).
    pub flush_cycles_per_row: u32,
}

impl SunderConfig {
    /// The paper's evaluated configuration at a given rate.
    pub fn with_rate(rate: Rate) -> Self {
        SunderConfig {
            rate,
            report_columns: 12,
            metadata_bits: 20,
            fifo: false,
            drain_period_cycles: 8,
            flush_cycles_per_row: 1,
        }
    }

    /// Enables or disables the FIFO strategy (chainable).
    pub fn fifo(mut self, on: bool) -> Self {
        self.fifo = on;
        self
    }

    /// Rows used for state matching (16 per nibble).
    pub fn matching_rows(&self) -> usize {
        self.rate.matching_rows()
    }

    /// Rows available for the reporting region.
    pub fn report_rows(&self) -> usize {
        SUBARRAY_ROWS - self.matching_rows()
    }

    /// Bits per report entry (`m + n`).
    pub fn entry_bits(&self) -> usize {
        self.report_columns + self.metadata_bits
    }

    /// Report entries stored per region row.
    pub fn entries_per_row(&self) -> usize {
        ROW_BITS / self.entry_bits()
    }

    /// Total report entries a region can hold before overflowing.
    pub fn region_capacity(&self) -> usize {
        self.report_rows() * self.entries_per_row()
    }

    /// Local-counter width from the paper's Equation 1:
    /// `⌈log₂ #ReportRows⌉ + ⌈log₂ (256 / (m + n))⌉`.
    pub fn local_counter_bits(&self) -> u32 {
        ceil_log2(self.report_rows()) + ceil_log2(ROW_BITS / self.entry_bits())
    }

    /// Stall cycles for one full-region flush (no FIFO).
    pub fn flush_stall_cycles(&self) -> u64 {
        self.report_rows() as u64 * u64::from(self.flush_cycles_per_row)
    }
}

impl Default for SunderConfig {
    fn default() -> Self {
        SunderConfig::with_rate(Rate::Nibble4)
    }
}

fn ceil_log2(v: usize) -> u32 {
    assert!(v > 0, "log2 of zero");
    usize::BITS - (v - 1).leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry_at_16_bit() {
        let c = SunderConfig::with_rate(Rate::Nibble4);
        assert_eq!(c.matching_rows(), 64);
        assert_eq!(c.report_rows(), 192);
        assert_eq!(c.entry_bits(), 32);
        assert_eq!(c.entries_per_row(), 8);
        assert_eq!(c.region_capacity(), 1536);
        assert_eq!(c.flush_stall_cycles(), 192);
    }

    #[test]
    fn four_bit_rate_keeps_60kb_for_reports() {
        // Paper, Section 5.1: "up to 60Kb reporting data".
        let c = SunderConfig::with_rate(Rate::Nibble1);
        assert_eq!(c.report_rows(), 240);
        assert_eq!(c.report_rows() * ROW_BITS, 61_440); // 60 Kib
    }

    #[test]
    fn local_counter_matches_equation1() {
        // 16-bit rate: ⌈log 192⌉ = 8, ⌈log (256/32)⌉ = 3.
        let c = SunderConfig::with_rate(Rate::Nibble4);
        assert_eq!(c.local_counter_bits(), 11);
    }

    #[test]
    fn ceil_log2_edges() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(256), 8);
    }

    #[test]
    fn builder_style_fifo() {
        let c = SunderConfig::default().fifo(true);
        assert!(c.fifo);
        assert_eq!(c.rate, Rate::Nibble4);
    }
}
