//! Global-switch resource accounting (paper, Figures 4 and 7).
//!
//! Within a processing unit, the local full-crossbar (one 8T 256×256
//! subarray) connects every pair of resident states. Automata spanning
//! PUs ride *global memory-mapped switches*: the paper gangs four PUs
//! (1024 states) per switch group, with the global switch itself realized
//! as 8T subarrays providing the same wired-NOR OR-reduction.
//!
//! The machine model applies cross-PU signals functionally; this module
//! accounts for the *resources* that wiring consumes: how many switch
//! groups a placement needs, how many switch columns each uses, and the
//! utilization that feeds the area model.

use std::collections::HashMap;

use sunder_automata::Nfa;

use crate::placement::Placement;

/// PUs ganged per global switch group (4 × 256 = 1024 states).
pub const PUS_PER_GROUP: usize = 4;
/// Signal columns available in one global switch subarray.
pub const SWITCH_COLUMNS: usize = 256;

/// Resource usage of the global interconnect for one placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterconnectUsage {
    /// Switch groups (one per 4 consecutive PUs with any cross traffic).
    pub groups: usize,
    /// Distinct source signals routed through each group, in group order.
    pub group_signals: Vec<usize>,
    /// Cross-PU edges that stay within a 4-PU group.
    pub intra_group_edges: usize,
    /// Cross-PU edges that leave their source's group (these need the
    /// second-level, inter-group routing the paper's hierarchical design
    /// implies for automata beyond 1024 states).
    pub inter_group_edges: usize,
    /// Groups whose signal demand exceeds one switch subarray's columns.
    pub oversubscribed_groups: usize,
}

impl InterconnectUsage {
    /// Computes usage for a placed automaton.
    pub fn of(nfa: &Nfa, placement: &Placement) -> Self {
        let group_of = |pu: u32| pu as usize / PUS_PER_GROUP;
        // Distinct (source PU, source column) signals entering each group.
        let mut signals: HashMap<usize, Vec<(u32, u8)>> = HashMap::new();
        let mut intra = 0usize;
        let mut inter = 0usize;
        for (id, _) in nfa.states() {
            let from = placement.locations[id.index()];
            for &t in nfa.successors(id) {
                let to = placement.locations[t.index()];
                if from.pu == to.pu {
                    continue;
                }
                if group_of(from.pu) == group_of(to.pu) {
                    intra += 1;
                } else {
                    inter += 1;
                }
                signals
                    .entry(group_of(to.pu))
                    .or_default()
                    .push((from.pu, from.col));
            }
        }
        let mut groups: Vec<usize> = signals.keys().copied().collect();
        groups.sort_unstable();
        let mut group_signals = Vec::with_capacity(groups.len());
        let mut oversubscribed = 0;
        for g in &groups {
            let mut sig = signals.remove(g).expect("listed group");
            sig.sort_unstable();
            sig.dedup();
            if sig.len() > SWITCH_COLUMNS {
                oversubscribed += 1;
            }
            group_signals.push(sig.len());
        }
        InterconnectUsage {
            groups: groups.len(),
            group_signals,
            intra_group_edges: intra,
            inter_group_edges: inter,
            oversubscribed_groups: oversubscribed,
        }
    }

    /// Switch subarrays needed (each serves up to 256 signal columns).
    pub fn switch_subarrays(&self) -> usize {
        self.group_signals
            .iter()
            .map(|&s| s.div_ceil(SWITCH_COLUMNS))
            .sum()
    }

    /// Mean fraction of switch columns used across groups.
    pub fn mean_utilization(&self) -> f64 {
        if self.group_signals.is_empty() {
            return 0.0;
        }
        let used: usize = self.group_signals.iter().sum();
        used as f64 / (self.switch_subarrays().max(1) * SWITCH_COLUMNS) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SunderConfig;
    use crate::placement::place;
    use sunder_automata::{Nfa, StartKind, StateId, Ste, SymbolSet};
    use sunder_transform::Rate;

    fn chain(n: u32, reports_every: u32) -> Nfa {
        let mut nfa = Nfa::new(4);
        let mut prev: Option<StateId> = None;
        for i in 0..n {
            let mut ste = Ste::new(SymbolSet::singleton(4, (i % 16) as u16));
            if i == 0 {
                ste = ste.start(StartKind::AllInput);
            }
            if i % reports_every == reports_every - 1 {
                ste = ste.report(i);
            }
            let id = nfa.add_state(ste);
            if let Some(p) = prev {
                nfa.add_edge(p, id);
            }
            prev = Some(id);
        }
        nfa
    }

    #[test]
    fn single_pu_needs_no_switches() {
        let nfa = chain(50, 50);
        let placement = place(&nfa, &SunderConfig::with_rate(Rate::Nibble1)).unwrap();
        let usage = InterconnectUsage::of(&nfa, &placement);
        assert_eq!(usage.groups, 0);
        assert_eq!(usage.switch_subarrays(), 0);
        assert_eq!(usage.mean_utilization(), 0.0);
    }

    #[test]
    fn split_chain_uses_one_group() {
        // 600 states split across ≥3 PUs, all within the first 4-PU group.
        let nfa = chain(600, 600);
        let placement = place(&nfa, &SunderConfig::with_rate(Rate::Nibble1)).unwrap();
        let usage = InterconnectUsage::of(&nfa, &placement);
        assert!(usage.groups >= 1);
        assert_eq!(usage.inter_group_edges, 0, "600 states fit one group");
        assert!(usage.intra_group_edges >= 2);
        assert_eq!(usage.oversubscribed_groups, 0);
        assert!(usage.mean_utilization() > 0.0);
    }

    #[test]
    fn huge_component_crosses_groups() {
        // 2000 states need ≥8 PUs = 2 groups; the cut edges between them
        // are inter-group.
        let nfa = chain(2000, 2000);
        let placement = place(&nfa, &SunderConfig::with_rate(Rate::Nibble1)).unwrap();
        let usage = InterconnectUsage::of(&nfa, &placement);
        assert!(usage.inter_group_edges >= 1, "{usage:?}");
    }

    #[test]
    fn report_heavy_split_counts_signals() {
        // Many report states force a split by the m = 12 budget even for a
        // small chain; the trigger fan-out becomes switch signals.
        let mut nfa = Nfa::new(4);
        let t = nfa.add_state(Ste::new(SymbolSet::singleton(4, 1)).start(StartKind::AllInput));
        for i in 0..40 {
            let r = nfa.add_state(Ste::new(SymbolSet::full(4)).report(i));
            nfa.add_edge(t, r);
        }
        let placement = place(&nfa, &SunderConfig::with_rate(Rate::Nibble1)).unwrap();
        assert!(placement.pus.len() >= 4);
        let usage = InterconnectUsage::of(&nfa, &placement);
        // One source state (t) broadcasts into several PUs: the distinct
        // signal count per group stays 1 per target group.
        assert!(usage.groups >= 1);
        for &s in &usage.group_signals {
            assert!(s >= 1);
        }
    }
}
