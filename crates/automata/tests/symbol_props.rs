//! Property tests for the symbol-set algebra.

use proptest::prelude::*;
use sunder_automata::SymbolSet;

fn set_of(bits: u8, symbols: &[u16]) -> SymbolSet {
    SymbolSet::from_symbols(
        bits,
        symbols
            .iter()
            .map(|&s| (u32::from(s) % (1u32 << bits)) as u16),
    )
}

fn symbols() -> impl Strategy<Value = Vec<u16>> {
    prop::collection::vec(any::<u16>(), 0..40)
}

fn widths() -> impl Strategy<Value = u8> {
    prop::sample::select(vec![4u8, 8, 12, 16])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn double_complement_is_identity(bits in widths(), syms in symbols()) {
        let a = set_of(bits, &syms);
        prop_assert_eq!(a.complement().complement(), a);
    }

    #[test]
    fn de_morgan(bits in widths(), xs in symbols(), ys in symbols()) {
        let a = set_of(bits, &xs);
        let b = set_of(bits, &ys);
        // ¬(a ∪ b) == ¬a ∩ ¬b
        let mut union = a.clone();
        union.union_with(&b);
        let lhs = union.complement();
        let mut rhs = a.complement();
        rhs.intersect_with(&b.complement());
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn union_and_intersection_cardinalities(bits in widths(), xs in symbols(), ys in symbols()) {
        let a = set_of(bits, &xs);
        let b = set_of(bits, &ys);
        let mut u = a.clone();
        u.union_with(&b);
        let mut i = a.clone();
        i.intersect_with(&b);
        // |A ∪ B| + |A ∩ B| = |A| + |B|
        prop_assert_eq!(u.len() + i.len(), a.len() + b.len());
        prop_assert!(u.len() >= a.len().max(b.len()));
        prop_assert!(i.len() <= a.len().min(b.len()));
        prop_assert_eq!(a.intersects(&b), !i.is_empty());
    }

    #[test]
    fn iteration_round_trips(bits in widths(), xs in symbols()) {
        let a = set_of(bits, &xs);
        let collected: Vec<u16> = a.iter().collect();
        prop_assert_eq!(collected.len(), a.len());
        // Sorted and unique.
        for w in collected.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        let rebuilt = SymbolSet::from_symbols(bits, collected);
        prop_assert_eq!(rebuilt, a);
    }

    #[test]
    fn nibble_decomposition_partitions(xs in symbols()) {
        // Splitting an 8-bit set by top nibble loses nothing.
        let a = set_of(8, &xs);
        let mut total = 0;
        for nib in 0..16u16 {
            let sub = a.sub_set_for_top_nibble(nib);
            total += sub.len();
            for low in sub.iter() {
                prop_assert!(a.contains((nib << 4) | low));
            }
        }
        prop_assert_eq!(total, a.len());
    }

    #[test]
    fn complement_partitions_alphabet(bits in widths(), xs in symbols()) {
        let a = set_of(bits, &xs);
        let c = a.complement();
        prop_assert!(!a.intersects(&c) || a.is_empty() || c.is_empty());
        prop_assert_eq!(a.len() + c.len(), a.alphabet_size());
    }

    #[test]
    fn density_bounds(bits in widths(), xs in symbols()) {
        let a = set_of(bits, &xs);
        let d = a.density();
        prop_assert!((0.0..=1.0).contains(&d));
        prop_assert_eq!(d == 0.0, a.is_empty());
        prop_assert_eq!(d == 1.0, a.is_full());
    }
}
