//! Property tests for the ANML-inspired exchange format: for any valid
//! automaton — any width, stride, start period, charset shape, start
//! kind, report set, and edge list — `parse(serialize(nfa))` must
//! reproduce the automaton exactly.

use proptest::prelude::*;
use sunder_automata::{anml, Nfa, ReportInfo, StartKind, StateId, Ste, SymbolSet};

/// Declarative description of one state, turned into an [`Ste`] once the
/// automaton's width and stride are fixed.
#[derive(Debug, Clone)]
struct StateSpec {
    /// Per-position charset selector: 0 empty, 1 full, 2 singleton,
    /// 3 range, 4 small set (the value doubles as the seed symbol).
    charsets: Vec<(u8, u16)>,
    start: u8,
    /// `(id, offset-seed)` pairs; offsets are reduced modulo the stride.
    reports: Vec<(u32, u8)>,
}

fn charset_from(bits: u8, kind: u8, seed: u16) -> SymbolSet {
    let max = 1u32 << bits;
    let sym = (u32::from(seed) % max) as u16;
    match kind % 5 {
        0 => SymbolSet::empty(bits),
        1 => SymbolSet::full(bits),
        2 => SymbolSet::singleton(bits, sym),
        3 => {
            let hi = (u32::from(sym) + 5).min(max - 1) as u16;
            SymbolSet::range(bits, sym, hi)
        }
        _ => SymbolSet::from_symbols(bits, [sym, sym / 2, (u32::from(sym) * 3 % max) as u16]),
    }
}

fn build_nfa(
    bits: u8,
    stride: usize,
    period: u32,
    specs: &[StateSpec],
    edges: &[(usize, usize)],
) -> Nfa {
    let mut nfa = Nfa::with_stride(bits, stride);
    nfa.set_start_period(period);
    let n = specs.len();
    for spec in specs {
        let charsets: Vec<SymbolSet> = (0..stride)
            .map(|j| {
                let (kind, seed) = spec.charsets[j % spec.charsets.len()];
                charset_from(bits, kind, seed)
            })
            .collect();
        let mut ste = Ste::with_charsets(charsets).start(match spec.start % 3 {
            0 => StartKind::None,
            1 => StartKind::StartOfData,
            _ => StartKind::AllInput,
        });
        for &(id, offset) in &spec.reports {
            ste.add_report(ReportInfo::at_offset(id, offset % stride as u8));
        }
        nfa.add_state(ste);
    }
    for &(a, b) in edges {
        nfa.add_edge(StateId((a % n) as u32), StateId((b % n) as u32));
    }
    nfa
}

fn state_specs() -> impl Strategy<Value = Vec<StateSpec>> {
    prop::collection::vec(
        (
            prop::collection::vec((any::<u8>(), any::<u16>()), 1..5),
            any::<u8>(),
            prop::collection::vec((0u32..1000, any::<u8>()), 0..3),
        )
            .prop_map(|(charsets, start, reports)| StateSpec {
                charsets,
                start,
                reports,
            }),
        1..8,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn serialize_parse_round_trips(
        bits in prop::sample::select(vec![4u8, 8, 16]),
        stride in 1usize..=4,
        period in 1u32..=4,
        specs in state_specs(),
        edges in prop::collection::vec((0usize..8, 0usize..8), 0..12),
    ) {
        let nfa = build_nfa(bits, stride, period, &specs, &edges);
        prop_assert!(nfa.validate().is_ok());
        let text = anml::serialize(&nfa);
        let back = anml::parse(&text);
        prop_assert!(back.is_ok(), "serialized form failed to parse: {:?}\n{text}", back.err());
        prop_assert_eq!(back.unwrap(), nfa, "round trip changed the automaton:\n{}", text);
    }

    #[test]
    fn parse_never_panics_on_arbitrary_ascii(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        // Malformed input must produce Err, never a panic — this is the
        // guarantee behind accepting reproducer files from disk. Map the
        // bytes onto printable ASCII + newline so lines actually form.
        let text: String = bytes
            .iter()
            .map(|&b| if b % 12 == 0 { '\n' } else { (b' ' + b % 95) as char })
            .collect();
        let _ = anml::parse(&text);
    }

    #[test]
    fn parse_never_panics_on_header_like_input(
        bits in any::<u8>(),
        stride in any::<u8>(),
        period in any::<u8>(),
    ) {
        let text = format!("automaton bits={bits} stride={stride} period={period}\n");
        let _ = anml::parse(&text);
    }
}
