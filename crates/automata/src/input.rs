//! Input-stream views for different symbol widths and strides.
//!
//! The benchmark inputs are byte streams; depending on the configured
//! processing rate the machine consumes them as 8-bit symbols, 4-bit nibbles,
//! 16-bit symbol pairs, or fixed-width vectors of nibbles. [`InputView`]
//! produces the per-cycle symbol vectors for any `(symbol_bits, stride)`
//! combination, including the partially-valid final vector.

use crate::error::AutomataError;

/// Splits a byte into its (high, low) nibbles, high first.
///
/// The nibble transformation consumes the most-significant nibble first, so
/// `0x3A` streams as `0x3` then `0xA`.
pub fn byte_to_nibbles(byte: u8) -> (u8, u8) {
    (byte >> 4, byte & 0x0F)
}

/// Expands a byte stream into a nibble stream (two nibbles per byte,
/// most-significant first).
pub fn nibbles_of_bytes(bytes: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(bytes.len() * 2);
    for &b in bytes {
        let (hi, lo) = byte_to_nibbles(b);
        out.push(hi);
        out.push(lo);
    }
    out
}

/// One per-cycle symbol vector: `stride` symbols, of which the first
/// `valid` carry real input (the rest are end-of-stream padding).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymbolVector {
    /// The symbols for this cycle; length equals the stride.
    pub symbols: Vec<u16>,
    /// Number of leading symbols that are real input.
    pub valid: usize,
}

/// A view of a byte stream as a sequence of per-cycle symbol vectors.
///
/// # Examples
///
/// ```
/// use sunder_automata::input::InputView;
///
/// // 4-bit symbols, four per cycle (Sunder's 16-bit processing rate).
/// let view = InputView::new(&[0x12, 0x34, 0x56], 4, 4)?;
/// let cycles: Vec<_> = view.iter().collect();
/// assert_eq!(cycles.len(), 2);
/// assert_eq!(cycles[0].symbols, vec![0x1, 0x2, 0x3, 0x4]);
/// assert_eq!(cycles[1].symbols, vec![0x5, 0x6, 0x0, 0x0]);
/// assert_eq!(cycles[1].valid, 2);
/// # Ok::<(), sunder_automata::AutomataError>(())
/// ```
#[derive(Debug, Clone)]
pub struct InputView {
    symbols: Vec<u16>,
    stride: usize,
    /// The final partial vector, pre-padded to `stride` symbols. Empty when
    /// the stream divides evenly. Kept here so [`InputView::iter_ref`] can
    /// hand out borrowed slices for every cycle, including the tail, without
    /// any per-cycle allocation.
    tail: Vec<u16>,
}

impl InputView {
    /// Builds a view of `bytes` as `stride`-wide vectors of
    /// `symbol_bits`-wide symbols.
    ///
    /// Supported widths are 4 (nibbles), 8 (bytes), and 16 (byte pairs,
    /// big-endian). A trailing odd byte for 16-bit symbols is padded with
    /// zero in the low byte and still marked valid (it carries real input).
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::UnsupportedWidth`] for other widths.
    pub fn new(bytes: &[u8], symbol_bits: u8, stride: usize) -> Result<Self, AutomataError> {
        assert!(stride >= 1, "stride must be at least 1");
        let symbols: Vec<u16> = match symbol_bits {
            4 => nibbles_of_bytes(bytes).into_iter().map(u16::from).collect(),
            8 => bytes.iter().map(|&b| u16::from(b)).collect(),
            16 => bytes
                .chunks(2)
                .map(|c| {
                    let hi = u16::from(c[0]) << 8;
                    let lo = c.get(1).copied().map(u16::from).unwrap_or(0);
                    hi | lo
                })
                .collect(),
            other => return Err(AutomataError::UnsupportedWidth(other)),
        };
        Ok(Self::from_symbols(symbols, stride))
    }

    /// Builds a view directly from pre-split symbols.
    pub fn from_symbols(symbols: Vec<u16>, stride: usize) -> Self {
        assert!(stride >= 1, "stride must be at least 1");
        let rem = symbols.len() % stride;
        let tail = if rem == 0 {
            Vec::new()
        } else {
            let mut t = symbols[symbols.len() - rem..].to_vec();
            t.resize(stride, 0);
            t
        };
        InputView {
            symbols,
            stride,
            tail,
        }
    }

    /// Number of per-cycle vectors the stream yields.
    pub fn num_cycles(&self) -> usize {
        self.symbols.len().div_ceil(self.stride)
    }

    /// Total number of real symbols.
    pub fn num_symbols(&self) -> usize {
        self.symbols.len()
    }

    /// Stride (symbols per cycle).
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The raw symbol stream.
    pub fn symbols(&self) -> &[u16] {
        &self.symbols
    }

    /// Iterates over the per-cycle symbol vectors.
    ///
    /// Each item owns its symbol buffer, costing one allocation per cycle.
    /// Hot paths should prefer [`InputView::iter_ref`], which borrows.
    pub fn iter(&self) -> Vectors<'_> {
        Vectors { view: self, pos: 0 }
    }

    /// Iterates over the per-cycle symbol vectors as borrowed slices.
    ///
    /// Unlike [`InputView::iter`], this performs no allocation: full
    /// vectors borrow directly from the symbol stream and the final
    /// partial vector borrows the view's pre-padded tail buffer. This is
    /// what the simulator engines use, so steady-state execution is
    /// allocation-free.
    ///
    /// ```
    /// use sunder_automata::input::InputView;
    ///
    /// let view = InputView::new(&[0x12, 0x34, 0x56], 4, 4)?;
    /// let cycles: Vec<_> = view.iter_ref().collect();
    /// assert_eq!(cycles[0].symbols, &[0x1, 0x2, 0x3, 0x4]);
    /// assert_eq!(cycles[1].symbols, &[0x5, 0x6, 0x0, 0x0]);
    /// assert_eq!(cycles[1].valid, 2);
    /// # Ok::<(), sunder_automata::AutomataError>(())
    /// ```
    pub fn iter_ref(&self) -> VectorRefs<'_> {
        VectorRefs { view: self, pos: 0 }
    }
}

impl<'a> IntoIterator for &'a InputView {
    type Item = SymbolVector;
    type IntoIter = Vectors<'a>;

    fn into_iter(self) -> Vectors<'a> {
        self.iter()
    }
}

/// Iterator over the per-cycle [`SymbolVector`]s of an [`InputView`].
#[derive(Debug, Clone)]
pub struct Vectors<'a> {
    view: &'a InputView,
    pos: usize,
}

impl Iterator for Vectors<'_> {
    type Item = SymbolVector;

    fn next(&mut self) -> Option<SymbolVector> {
        if self.pos >= self.view.symbols.len() {
            return None;
        }
        let stride = self.view.stride;
        let end = (self.pos + stride).min(self.view.symbols.len());
        let valid = end - self.pos;
        let mut symbols = Vec::with_capacity(stride);
        symbols.extend_from_slice(&self.view.symbols[self.pos..end]);
        symbols.resize(stride, 0);
        self.pos += stride;
        Some(SymbolVector { symbols, valid })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self
            .view
            .symbols
            .len()
            .saturating_sub(self.pos)
            .div_ceil(self.view.stride);
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Vectors<'_> {}

/// One borrowed per-cycle symbol vector: `stride` symbols, of which the
/// first `valid` carry real input (the rest are end-of-stream padding).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VectorRef<'a> {
    /// The symbols for this cycle; length equals the stride.
    pub symbols: &'a [u16],
    /// Number of leading symbols that are real input.
    pub valid: usize,
}

/// Zero-allocation iterator over the per-cycle vectors of an [`InputView`].
#[derive(Debug, Clone)]
pub struct VectorRefs<'a> {
    view: &'a InputView,
    pos: usize,
}

impl VectorRefs<'_> {
    /// Skips the next `cycles` vectors without yielding them. Used by the
    /// engines' prefilter to jump over cycles proven to produce an empty
    /// frontier. Skipping past the end is allowed and simply exhausts the
    /// iterator.
    pub fn advance_cycles(&mut self, cycles: usize) {
        self.pos = self
            .pos
            .saturating_add(cycles.saturating_mul(self.view.stride));
    }
}

impl<'a> Iterator for VectorRefs<'a> {
    type Item = VectorRef<'a>;

    fn next(&mut self) -> Option<VectorRef<'a>> {
        let len = self.view.symbols.len();
        if self.pos >= len {
            return None;
        }
        let stride = self.view.stride;
        let remaining = len - self.pos;
        let item = if remaining >= stride {
            VectorRef {
                symbols: &self.view.symbols[self.pos..self.pos + stride],
                valid: stride,
            }
        } else {
            VectorRef {
                symbols: &self.view.tail,
                valid: remaining,
            }
        };
        self.pos += stride;
        Some(item)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self
            .view
            .symbols
            .len()
            .saturating_sub(self.pos)
            .div_ceil(self.view.stride);
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for VectorRefs<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nibble_order_is_high_first() {
        assert_eq!(byte_to_nibbles(0x3A), (0x3, 0xA));
        assert_eq!(nibbles_of_bytes(&[0x12, 0xF0]), vec![1, 2, 0xF, 0]);
    }

    #[test]
    fn byte_view() {
        let v = InputView::new(b"ab", 8, 1).unwrap();
        let cycles: Vec<_> = v.iter().collect();
        assert_eq!(cycles.len(), 2);
        assert_eq!(cycles[0].symbols, vec![b'a' as u16]);
        assert_eq!(cycles[0].valid, 1);
    }

    #[test]
    fn sixteen_bit_view_pads_odd_tail() {
        let v = InputView::new(&[0xAB, 0xCD, 0xEF], 16, 1).unwrap();
        let cycles: Vec<_> = v.iter().collect();
        assert_eq!(cycles.len(), 2);
        assert_eq!(cycles[0].symbols, vec![0xABCD]);
        assert_eq!(cycles[1].symbols, vec![0xEF00]);
    }

    #[test]
    fn partial_final_vector() {
        let v = InputView::new(&[0x12], 4, 4).unwrap();
        let cycles: Vec<_> = v.iter().collect();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].symbols, vec![1, 2, 0, 0]);
        assert_eq!(cycles[0].valid, 2);
    }

    #[test]
    fn unsupported_width_errors() {
        assert!(matches!(
            InputView::new(&[1], 5, 1),
            Err(AutomataError::UnsupportedWidth(5))
        ));
    }

    #[test]
    fn exact_size_iterator() {
        let v = InputView::new(&[1, 2, 3, 4, 5], 4, 4).unwrap();
        assert_eq!(v.num_cycles(), 3);
        assert_eq!(v.iter().len(), 3);
        assert_eq!(v.num_symbols(), 10);
    }

    #[test]
    fn empty_input() {
        let v = InputView::new(&[], 8, 1).unwrap();
        assert_eq!(v.num_cycles(), 0);
        assert_eq!(v.iter().count(), 0);
        assert_eq!(v.iter_ref().count(), 0);
    }

    #[test]
    fn iter_ref_agrees_with_iter() {
        for (bytes, bits, stride) in [
            (vec![0x12u8, 0x34, 0x56], 4u8, 4usize),
            (vec![1, 2, 3, 4, 5], 8, 2),
            (vec![9; 7], 8, 3),
            (vec![0xAB, 0xCD, 0xEF], 16, 2),
            (vec![], 8, 1),
        ] {
            let v = InputView::new(&bytes, bits, stride).unwrap();
            let owned: Vec<_> = v.iter().collect();
            let borrowed: Vec<_> = v.iter_ref().collect();
            assert_eq!(owned.len(), borrowed.len());
            for (o, b) in owned.iter().zip(&borrowed) {
                assert_eq!(o.symbols.as_slice(), b.symbols);
                assert_eq!(o.valid, b.valid);
            }
        }
    }

    #[test]
    fn advance_cycles_skips_whole_vectors() {
        let v = InputView::new(&[1, 2, 3, 4, 5, 6, 7], 8, 2).unwrap();
        let mut it = v.iter_ref();
        it.advance_cycles(2);
        let next = it.next().unwrap();
        assert_eq!(next.symbols, &[5, 6]);
        it.advance_cycles(100);
        assert!(it.next().is_none(), "skipping past the end exhausts");
    }

    #[test]
    fn iter_ref_exact_size() {
        let v = InputView::new(&[1, 2, 3, 4, 5], 4, 4).unwrap();
        assert_eq!(v.iter_ref().len(), 3);
    }
}
