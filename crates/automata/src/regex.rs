//! A regular-expression subset compiler targeting homogeneous NFAs.
//!
//! The Glushkov (position) construction is a perfect fit for the homogeneous
//! automata executed by in-memory accelerators: every *position* of the
//! pattern becomes exactly one STE whose charset is the position's character
//! class, start states are the `first` set, reports are the `last` set, and
//! transitions are the `follow` relation — no epsilon transitions and no
//! labels on edges.
//!
//! Supported syntax: literals, escapes (`\n \t \r \0 \\ \xHH \d \w \s` and
//! escaped metacharacters), `.` (any byte), character classes
//! `[a-z0-9]` / negated `[^...]`, grouping `(...)`, alternation `|`,
//! repetition `* + ?` and counted `{m} {m,} {m,n}`, and a leading `^` anchor.
//! A pattern that can match the empty string is rejected: a homogeneous
//! automaton reports by activating a state on a consumed symbol, so an
//! empty match has no hardware meaning.

use std::collections::BTreeSet;

use crate::error::AutomataError;
use crate::nfa::{Nfa, StartKind, Ste};
use crate::symbol::SymbolSet;

/// Maximum expansion of a counted repetition, to bound state blowup.
const MAX_COUNTED_REPEAT: u32 = 256;

#[derive(Debug, Clone)]
enum Ast {
    Sym(SymbolSet),
    Cat(Vec<Ast>),
    Alt(Vec<Ast>),
    Star(Box<Ast>),
    Plus(Box<Ast>),
    Opt(Box<Ast>),
}

/// Compiles one pattern into a fresh 8-bit automaton.
///
/// All states in the `last` set report with id `report_id`. Unanchored
/// patterns (no leading `^`) get [`StartKind::AllInput`] starts, matching at
/// any offset of the stream, like an IDS rule.
///
/// # Errors
///
/// Returns [`AutomataError::Regex`] on syntax errors, unsupported syntax
/// (`$`, backreferences), or a pattern that matches the empty string.
///
/// # Examples
///
/// ```
/// use sunder_automata::regex::compile_regex;
///
/// let nfa = compile_regex(r"ab[0-9]+c", 42)?;
/// assert_eq!(nfa.num_states(), 4);
/// assert_eq!(nfa.report_states().len(), 1);
/// # Ok::<(), sunder_automata::AutomataError>(())
/// ```
pub fn compile_regex(pattern: &str, report_id: u32) -> Result<Nfa, AutomataError> {
    let mut parser = Parser {
        bytes: pattern.as_bytes(),
        pos: 0,
    };
    let anchored = parser.eat(b'^');
    let ast = parser.parse_alt()?;
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("unexpected trailing input"));
    }

    let mut positions: Vec<SymbolSet> = Vec::new();
    let mut follow: Vec<BTreeSet<usize>> = Vec::new();
    let info = analyze(&ast, &mut positions, &mut follow);
    if info.nullable {
        return Err(AutomataError::Regex {
            position: 0,
            message: "pattern matches the empty string".into(),
        });
    }

    let start_kind = if anchored {
        StartKind::StartOfData
    } else {
        StartKind::AllInput
    };
    let mut nfa = Nfa::new(8);
    let last: BTreeSet<usize> = info.last.iter().copied().collect();
    let first: BTreeSet<usize> = info.first.iter().copied().collect();
    for (i, cs) in positions.iter().enumerate() {
        let mut ste = Ste::new(cs.clone());
        if first.contains(&i) {
            ste = ste.start(start_kind);
        }
        if last.contains(&i) {
            ste = ste.report(report_id);
        }
        nfa.add_state(ste);
    }
    for (i, follows) in follow.iter().enumerate() {
        for &j in follows {
            nfa.add_edge(crate::nfa::StateId(i as u32), crate::nfa::StateId(j as u32));
        }
    }
    Ok(nfa)
}

/// Compiles a rule set: one automaton per pattern, unioned, with report ids
/// equal to the pattern's index.
///
/// # Errors
///
/// Returns the first pattern's compilation error, annotated with its index
/// in the message.
pub fn compile_rule_set<S: AsRef<str>>(patterns: &[S]) -> Result<Nfa, AutomataError> {
    let mut out = Nfa::new(8);
    for (i, p) in patterns.iter().enumerate() {
        let one = compile_regex(p.as_ref(), i as u32).map_err(|e| match e {
            AutomataError::Regex { position, message } => AutomataError::Regex {
                position,
                message: format!("rule {i}: {message}"),
            },
            other => other,
        })?;
        out.absorb(&one).expect("same width and stride");
    }
    Ok(out)
}

#[derive(Debug)]
struct Info {
    nullable: bool,
    first: Vec<usize>,
    last: Vec<usize>,
}

fn analyze(ast: &Ast, positions: &mut Vec<SymbolSet>, follow: &mut Vec<BTreeSet<usize>>) -> Info {
    match ast {
        Ast::Sym(cs) => {
            let p = positions.len();
            positions.push(cs.clone());
            follow.push(BTreeSet::new());
            Info {
                nullable: false,
                first: vec![p],
                last: vec![p],
            }
        }
        Ast::Cat(parts) => {
            let mut nullable = true;
            let mut first: Vec<usize> = Vec::new();
            let mut last: Vec<usize> = Vec::new();
            for part in parts {
                let info = analyze(part, positions, follow);
                // follow: every last-so-far flows into this part's first.
                for &l in &last {
                    for &f in &info.first {
                        follow[l].insert(f);
                    }
                }
                if nullable {
                    first.extend(&info.first);
                }
                if info.nullable {
                    last.extend(&info.last);
                } else {
                    last = info.last;
                }
                nullable &= info.nullable;
            }
            Info {
                nullable,
                first,
                last,
            }
        }
        Ast::Alt(parts) => {
            let mut nullable = false;
            let mut first = Vec::new();
            let mut last = Vec::new();
            for part in parts {
                let info = analyze(part, positions, follow);
                nullable |= info.nullable;
                first.extend(info.first);
                last.extend(info.last);
            }
            Info {
                nullable,
                first,
                last,
            }
        }
        Ast::Star(inner) | Ast::Plus(inner) => {
            let info = analyze(inner, positions, follow);
            for &l in &info.last {
                for &f in &info.first {
                    follow[l].insert(f);
                }
            }
            Info {
                nullable: matches!(ast, Ast::Star(_)) || info.nullable,
                first: info.first,
                last: info.last,
            }
        }
        Ast::Opt(inner) => {
            let info = analyze(inner, positions, follow);
            Info {
                nullable: true,
                first: info.first,
                last: info.last,
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> AutomataError {
        AutomataError::Regex {
            position: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn parse_alt(&mut self) -> Result<Ast, AutomataError> {
        let mut parts = vec![self.parse_cat()?];
        while self.eat(b'|') {
            parts.push(self.parse_cat()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one part")
        } else {
            Ast::Alt(parts)
        })
    }

    fn parse_cat(&mut self) -> Result<Ast, AutomataError> {
        let mut parts = Vec::new();
        while let Some(b) = self.peek() {
            if b == b'|' || b == b')' {
                break;
            }
            parts.push(self.parse_rep()?);
        }
        if parts.is_empty() {
            return Err(self.error("empty expression"));
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one part")
        } else {
            Ast::Cat(parts)
        })
    }

    fn parse_rep(&mut self) -> Result<Ast, AutomataError> {
        let mut atom = self.parse_atom()?;
        loop {
            match self.peek() {
                Some(b'*') => {
                    self.pos += 1;
                    atom = Ast::Star(Box::new(atom));
                }
                Some(b'+') => {
                    self.pos += 1;
                    atom = Ast::Plus(Box::new(atom));
                }
                Some(b'?') => {
                    self.pos += 1;
                    atom = Ast::Opt(Box::new(atom));
                }
                Some(b'{') => {
                    self.pos += 1;
                    atom = self.parse_counted(atom)?;
                }
                _ => break,
            }
        }
        Ok(atom)
    }

    fn parse_counted(&mut self, atom: Ast) -> Result<Ast, AutomataError> {
        let m = self.parse_number()?;
        let (m, n) = if self.eat(b',') {
            if self.peek() == Some(b'}') {
                (m, None) // {m,}
            } else {
                (m, Some(self.parse_number()?))
            }
        } else {
            (m, Some(m))
        };
        if !self.eat(b'}') {
            return Err(self.error("expected '}' in counted repetition"));
        }
        if let Some(n) = n {
            if n < m {
                return Err(self.error("counted repetition with max < min"));
            }
            if n > MAX_COUNTED_REPEAT {
                return Err(self.error("counted repetition too large"));
            }
        }
        if m > MAX_COUNTED_REPEAT {
            return Err(self.error("counted repetition too large"));
        }
        // Expand: X{m,n} = X^m (X?)^(n-m) ; X{m,} = X^(m-1) X+ ; X{0,..} ok.
        let mut parts: Vec<Ast> = Vec::new();
        match n {
            Some(n) => {
                for _ in 0..m {
                    parts.push(atom.clone());
                }
                for _ in m..n {
                    parts.push(Ast::Opt(Box::new(atom.clone())));
                }
            }
            None => {
                if m == 0 {
                    return Ok(Ast::Star(Box::new(atom)));
                }
                for _ in 0..m - 1 {
                    parts.push(atom.clone());
                }
                parts.push(Ast::Plus(Box::new(atom)));
            }
        }
        Ok(match parts.len() {
            0 => return Err(self.error("counted repetition of zero length")),
            1 => parts.pop().expect("one part"),
            _ => Ast::Cat(parts),
        })
    }

    fn parse_number(&mut self) -> Result<u32, AutomataError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.error("expected a number"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are utf8")
            .parse()
            .map_err(|_| self.error("number too large"))
    }

    fn parse_atom(&mut self) -> Result<Ast, AutomataError> {
        match self.bump() {
            None => Err(self.error("unexpected end of pattern")),
            Some(b'(') => {
                let inner = self.parse_alt()?;
                if !self.eat(b')') {
                    return Err(self.error("unclosed group"));
                }
                Ok(inner)
            }
            Some(b'.') => Ok(Ast::Sym(SymbolSet::full(8))),
            Some(b'[') => self.parse_class(),
            Some(b'\\') => Ok(Ast::Sym(self.parse_escape()?)),
            Some(b'$') => Err(self.error("end anchor '$' is not supported")),
            Some(b @ (b'*' | b'+' | b'?' | b'{' | b')')) => {
                Err(self.error(format!("unexpected metacharacter '{}'", b as char)))
            }
            Some(b) => Ok(Ast::Sym(SymbolSet::singleton(8, u16::from(b)))),
        }
    }

    fn parse_escape(&mut self) -> Result<SymbolSet, AutomataError> {
        let Some(b) = self.bump() else {
            return Err(self.error("dangling escape"));
        };
        let set = match b {
            b'n' => SymbolSet::singleton(8, u16::from(b'\n')),
            b't' => SymbolSet::singleton(8, u16::from(b'\t')),
            b'r' => SymbolSet::singleton(8, u16::from(b'\r')),
            b'0' => SymbolSet::singleton(8, 0),
            b'd' => SymbolSet::range(8, u16::from(b'0'), u16::from(b'9')),
            b'D' => SymbolSet::range(8, u16::from(b'0'), u16::from(b'9')).complement(),
            b'w' => {
                let mut s = SymbolSet::range(8, u16::from(b'0'), u16::from(b'9'));
                s.insert_range(u16::from(b'a'), u16::from(b'z'));
                s.insert_range(u16::from(b'A'), u16::from(b'Z'));
                s.insert(u16::from(b'_'));
                s
            }
            b's' => {
                SymbolSet::from_symbols(8, [b' ', b'\t', b'\r', b'\n', 0x0b, 0x0c].map(u16::from))
            }
            b'x' => {
                let hi = self.parse_hex_digit()?;
                let lo = self.parse_hex_digit()?;
                SymbolSet::singleton(8, u16::from(hi * 16 + lo))
            }
            // Escaped metacharacters and everything else: the literal byte.
            other => SymbolSet::singleton(8, u16::from(other)),
        };
        Ok(set)
    }

    fn parse_hex_digit(&mut self) -> Result<u8, AutomataError> {
        match self.bump() {
            Some(b @ b'0'..=b'9') => Ok(b - b'0'),
            Some(b @ b'a'..=b'f') => Ok(b - b'a' + 10),
            Some(b @ b'A'..=b'F') => Ok(b - b'A' + 10),
            _ => Err(self.error("expected a hex digit")),
        }
    }

    fn parse_class(&mut self) -> Result<Ast, AutomataError> {
        let negated = self.eat(b'^');
        let mut set = SymbolSet::empty(8);
        let mut any = false;
        loop {
            match self.peek() {
                None => return Err(self.error("unclosed character class")),
                Some(b']') if any => {
                    self.pos += 1;
                    break;
                }
                _ => {}
            }
            let lo_set = self.parse_class_item()?;
            // Range only when the item was a single literal byte and '-' is
            // followed by something other than ']'.
            if lo_set.len() == 1
                && self.peek() == Some(b'-')
                && self.bytes.get(self.pos + 1) != Some(&b']')
            {
                self.pos += 1; // consume '-'
                let hi_set = self.parse_class_item()?;
                if hi_set.len() != 1 {
                    return Err(self.error("invalid range bound in class"));
                }
                let lo = lo_set.iter().next().expect("singleton");
                let hi = hi_set.iter().next().expect("singleton");
                if hi < lo {
                    return Err(self.error("class range out of order"));
                }
                set.insert_range(lo, hi);
            } else {
                set.union_with(&lo_set);
            }
            any = true;
        }
        let set = if negated { set.complement() } else { set };
        if set.is_empty() {
            return Err(self.error("empty character class"));
        }
        Ok(Ast::Sym(set))
    }

    fn parse_class_item(&mut self) -> Result<SymbolSet, AutomataError> {
        match self.bump() {
            None => Err(self.error("unclosed character class")),
            Some(b'\\') => self.parse_escape(),
            Some(b) => Ok(SymbolSet::singleton(8, u16::from(b))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_chain() {
        let nfa = compile_regex("abc", 0).unwrap();
        assert_eq!(nfa.num_states(), 3);
        assert_eq!(nfa.num_transitions(), 2);
        assert_eq!(nfa.start_states().len(), 1);
        assert_eq!(nfa.report_states().len(), 1);
        assert_eq!(
            nfa.state(nfa.start_states()[0]).start_kind(),
            StartKind::AllInput
        );
    }

    #[test]
    fn anchored_pattern() {
        let nfa = compile_regex("^abc", 0).unwrap();
        assert_eq!(
            nfa.state(nfa.start_states()[0]).start_kind(),
            StartKind::StartOfData
        );
    }

    #[test]
    fn alternation_multiplies_starts_and_reports() {
        let nfa = compile_regex("ab|cd|ef", 0).unwrap();
        assert_eq!(nfa.num_states(), 6);
        assert_eq!(nfa.start_states().len(), 3);
        assert_eq!(nfa.report_states().len(), 3);
    }

    #[test]
    fn star_creates_loop() {
        // ab*c : b follows itself.
        let nfa = compile_regex("ab*c", 0).unwrap();
        assert_eq!(nfa.num_states(), 3);
        // b's successors include b and c; a's include b and c (b nullable).
        let b = crate::nfa::StateId(1);
        assert!(nfa.successors(b).contains(&b));
        assert_eq!(nfa.successors(crate::nfa::StateId(0)).len(), 2);
    }

    #[test]
    fn plus_is_not_nullable() {
        assert!(compile_regex("a*", 0).is_err()); // empty match
        let nfa = compile_regex("a+", 0).unwrap();
        assert_eq!(nfa.num_states(), 1);
        let a = crate::nfa::StateId(0);
        assert!(nfa.successors(a).contains(&a));
        assert!(nfa.state(a).is_reporting());
    }

    #[test]
    fn classes_and_ranges() {
        let nfa = compile_regex("[a-c0]", 0).unwrap();
        let cs = nfa.state(crate::nfa::StateId(0)).charset();
        assert_eq!(cs.len(), 4);
        assert!(cs.contains(u16::from(b'b')));
        assert!(cs.contains(u16::from(b'0')));
    }

    #[test]
    fn negated_class() {
        let nfa = compile_regex("[^a]", 0).unwrap();
        let cs = nfa.state(crate::nfa::StateId(0)).charset();
        assert_eq!(cs.len(), 255);
        assert!(!cs.contains(u16::from(b'a')));
    }

    #[test]
    fn dot_matches_everything() {
        let nfa = compile_regex(".", 0).unwrap();
        assert!(nfa.state(crate::nfa::StateId(0)).charset().is_full());
    }

    #[test]
    fn escapes() {
        let nfa = compile_regex(r"\d\x41\\", 0).unwrap();
        assert_eq!(nfa.num_states(), 3);
        assert_eq!(nfa.state(crate::nfa::StateId(0)).charset().len(), 10);
        assert!(nfa
            .state(crate::nfa::StateId(1))
            .charset()
            .contains(u16::from(b'A')));
        assert!(nfa
            .state(crate::nfa::StateId(2))
            .charset()
            .contains(u16::from(b'\\')));
    }

    #[test]
    fn counted_repetitions() {
        assert_eq!(compile_regex("a{3}", 0).unwrap().num_states(), 3);
        assert_eq!(compile_regex("a{2,4}", 0).unwrap().num_states(), 4);
        let open = compile_regex("a{2,}", 0).unwrap();
        assert_eq!(open.num_states(), 2);
        let last = crate::nfa::StateId(1);
        assert!(open.successors(last).contains(&last));
    }

    #[test]
    fn counted_repetition_errors() {
        assert!(compile_regex("a{4,2}", 0).is_err());
        assert!(compile_regex("a{999}", 0).is_err());
        assert!(compile_regex("a{", 0).is_err());
    }

    #[test]
    fn dotstar_prefix() {
        // The classic unanchored-with-dotstar IDS idiom.
        let nfa = compile_regex(".*evil", 0).unwrap();
        // dot position loops on itself and feeds 'e'.
        assert!(nfa.validate().is_ok());
        assert_eq!(nfa.num_states(), 5);
    }

    #[test]
    fn syntax_errors() {
        assert!(compile_regex("", 0).is_err());
        assert!(compile_regex("(ab", 0).is_err());
        assert!(compile_regex("ab)", 0).is_err());
        assert!(compile_regex("[z-a]", 0).is_err());
        assert!(compile_regex("[", 0).is_err());
        assert!(compile_regex("*a", 0).is_err());
        assert!(compile_regex("a$", 0).is_err());
        assert!(compile_regex("a\\", 0).is_err());
        assert!(compile_regex(r"\xZZ", 0).is_err());
    }

    #[test]
    fn class_with_leading_bracket_meta() {
        // ']' right after '[' is a literal in common dialects; we require
        // at least one item first, so escape it instead.
        let nfa = compile_regex(r"[\]]", 0).unwrap();
        assert!(nfa
            .state(crate::nfa::StateId(0))
            .charset()
            .contains(u16::from(b']')));
    }

    #[test]
    fn rule_set_assigns_sequential_ids() {
        let nfa = compile_rule_set(&["ab", "cd"]).unwrap();
        assert_eq!(nfa.num_states(), 4);
        let reports = nfa.report_states();
        assert_eq!(nfa.state(reports[0]).reports()[0].id, 0);
        assert_eq!(nfa.state(reports[1]).reports()[0].id, 1);
    }

    #[test]
    fn rule_set_error_names_rule() {
        let err = compile_rule_set(&["ab", "("]).unwrap_err();
        assert!(err.to_string().contains("rule 1"));
    }

    #[test]
    fn nested_groups() {
        let nfa = compile_regex("(a(b|c))+d", 0).unwrap();
        assert!(nfa.validate().is_ok());
        assert_eq!(nfa.num_states(), 4);
    }
}
