//! Spatial partitioning of an automaton into STE-budgeted shards.
//!
//! In-memory automata hardware places STEs into fixed-capacity subarrays
//! (the paper's 256×256 arrays hold one STE per memory column, so a
//! subarray fits 256 STEs). Multi-pattern rule sets decompose into many
//! small weakly-connected components, and the mapper's job is to pack
//! whole components into as few subarrays as possible without ever
//! splitting a component — a cut transition would have to cross the
//! subarray interconnect every cycle, and worse, software shards could no
//! longer execute independently.
//!
//! This module is the software analogue: [`partition`] bin-packs the
//! connected components of an [`Nfa`] toward a per-shard STE budget and
//! extracts each shard as a standalone sub-automaton. Because shards are
//! unions of whole components, running every shard over the same input
//! and merging the report traces is observably identical to running the
//! monolithic automaton (see `sunder-sim`'s `ShardedEngine`, which is
//! locked to that property by the conformance oracle).
//!
//! Determinism: components are packed first-fit in decreasing size order
//! (ties broken by lowest member id), so the same automaton and options
//! always produce the same plan.

use crate::error::AutomataError;
use crate::graph::{connected_components, extract_subautomaton};
use crate::nfa::{Nfa, StateId};

/// Default per-shard STE budget: one 256×256 subarray, one STE per column.
pub const DEFAULT_STE_BUDGET: usize = 256;

/// What to do with a connected component larger than the STE budget.
///
/// Components are never split across shards — a shard must be executable
/// on its own, and cut transitions would break that — so an oversized
/// component either fails the plan or gets a dedicated over-budget shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OversizePolicy {
    /// Reject the automaton with [`AutomataError::Capacity`]. This is the
    /// hardware-faithful behavior: a component that does not fit in a
    /// subarray cannot be placed.
    #[default]
    Error,
    /// Give the component its own shard, flagged
    /// [`Shard::oversized`]. Software execution does not share the
    /// hardware capacity limit, so this keeps batch services running on
    /// pathological rule sets while still surfacing the violation.
    Dedicate,
}

/// Options controlling [`partition`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionOptions {
    /// Maximum STEs per shard (default [`DEFAULT_STE_BUDGET`]).
    pub ste_budget: usize,
    /// Policy for components exceeding the budget.
    pub oversize: OversizePolicy,
}

impl Default for PartitionOptions {
    fn default() -> Self {
        PartitionOptions {
            ste_budget: DEFAULT_STE_BUDGET,
            oversize: OversizePolicy::Error,
        }
    }
}

impl PartitionOptions {
    /// Options with an explicit budget and the default [`OversizePolicy`].
    pub fn with_budget(ste_budget: usize) -> Self {
        PartitionOptions {
            ste_budget,
            ..PartitionOptions::default()
        }
    }
}

/// One shard: a union of whole connected components, extracted as a
/// standalone automaton.
#[derive(Debug, Clone)]
pub struct Shard {
    /// Original state ids of the shard's members, ascending. Local state
    /// `StateId(i)` of [`Shard::nfa`] corresponds to `members[i]`.
    pub members: Vec<StateId>,
    /// The extracted sub-automaton (same symbol width, stride, and start
    /// period as the source).
    pub nfa: Nfa,
    /// `true` when the shard holds a single component that exceeded the
    /// STE budget under [`OversizePolicy::Dedicate`].
    pub oversized: bool,
}

impl Shard {
    /// Number of STEs in this shard.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` when the shard holds no states.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Maps a shard-local state id back to the original automaton.
    ///
    /// # Panics
    ///
    /// Panics if `local` is out of range for this shard.
    pub fn to_original(&self, local: StateId) -> StateId {
        self.members[local.index()]
    }
}

/// A complete partitioning of an automaton into executable shards.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// The shards, in packing order. Every original state appears in
    /// exactly one shard.
    pub shards: Vec<Shard>,
    /// The budget the plan was packed toward.
    pub ste_budget: usize,
    /// Total states in the source automaton.
    pub total_states: usize,
}

impl ShardPlan {
    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Largest shard size in STEs.
    pub fn max_shard_states(&self) -> usize {
        self.shards.iter().map(Shard::len).max().unwrap_or(0)
    }

    /// Verifies the exact-cover invariant: every state of `nfa` appears
    /// in exactly one shard, and shard members match their extracted
    /// automata. Used by tests and debug assertions.
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::InvalidState`] naming the first state
    /// covered zero or multiple times.
    pub fn validate_cover(&self, nfa: &Nfa) -> Result<(), AutomataError> {
        let n = nfa.num_states();
        let mut seen = vec![0usize; n];
        for shard in &self.shards {
            debug_assert_eq!(shard.members.len(), shard.nfa.num_states());
            for &m in &shard.members {
                if m.index() >= n {
                    return Err(AutomataError::InvalidState {
                        index: m.0,
                        len: n as u32,
                    });
                }
                seen[m.index()] += 1;
            }
        }
        for (i, &count) in seen.iter().enumerate() {
            if count != 1 {
                return Err(AutomataError::InvalidState {
                    index: i as u32,
                    len: n as u32,
                });
            }
        }
        Ok(())
    }
}

/// Connected components in deterministic packing order: decreasing size,
/// ties broken by the smallest member id (components are produced with
/// sorted members, so `members[0]` is the minimum).
fn ordered_components(nfa: &Nfa) -> Vec<Vec<StateId>> {
    let mut comps = connected_components(nfa);
    comps.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a[0].cmp(&b[0])));
    comps
}

fn build_shard(nfa: &Nfa, mut members: Vec<StateId>, oversized: bool) -> Shard {
    members.sort_unstable();
    let sub = extract_subautomaton(nfa, &members);
    Shard {
        members,
        nfa: sub,
        oversized,
    }
}

/// Partitions `nfa` into shards of at most `opts.ste_budget` STEs using
/// first-fit-decreasing bin packing over whole connected components.
///
/// An empty automaton yields an empty plan. The result satisfies
/// [`ShardPlan::validate_cover`] by construction.
///
/// # Errors
///
/// Returns [`AutomataError::Capacity`] when a component exceeds the
/// budget under [`OversizePolicy::Error`], and propagates
/// [`AutomataError::InvalidState`] from malformed automata.
pub fn partition(nfa: &Nfa, opts: &PartitionOptions) -> Result<ShardPlan, AutomataError> {
    let budget = opts.ste_budget.max(1);
    let mut bins: Vec<Vec<StateId>> = Vec::new();
    let mut oversized_bins: Vec<Vec<StateId>> = Vec::new();
    for comp in ordered_components(nfa) {
        if comp.len() > budget {
            match opts.oversize {
                OversizePolicy::Error => {
                    return Err(AutomataError::Capacity {
                        needed: comp.len(),
                        budget,
                    });
                }
                OversizePolicy::Dedicate => {
                    oversized_bins.push(comp);
                    continue;
                }
            }
        }
        // First fit: the earliest bin with room. Components arrive in
        // decreasing size order, so this is classic FFD.
        match bins.iter_mut().find(|bin| bin.len() + comp.len() <= budget) {
            Some(bin) => bin.extend(comp),
            None => bins.push(comp),
        }
    }
    let shards = bins
        .into_iter()
        .map(|members| build_shard(nfa, members, false))
        .chain(
            oversized_bins
                .into_iter()
                .map(|members| build_shard(nfa, members, true)),
        )
        .collect();
    let plan = ShardPlan {
        shards,
        ste_budget: budget,
        total_states: nfa.num_states(),
    };
    debug_assert!(plan.validate_cover(nfa).is_ok());
    Ok(plan)
}

/// Partitions `nfa` into at most `max_shards` shards, balancing STE
/// counts with greedy longest-processing-time scheduling (each component,
/// largest first, goes to the currently smallest shard).
///
/// This is the count-driven form used by throughput sweeps ("run this
/// automaton as 4 shards"); [`partition`] is the capacity-driven form
/// modeling subarray budgets. Yields `min(max_shards, components)`
/// shards; an empty automaton yields an empty plan.
///
/// # Errors
///
/// Returns [`AutomataError::Capacity`] when `max_shards` is zero and the
/// automaton is non-empty.
pub fn partition_into(nfa: &Nfa, max_shards: usize) -> Result<ShardPlan, AutomataError> {
    let comps = ordered_components(nfa);
    if max_shards == 0 && !comps.is_empty() {
        return Err(AutomataError::Capacity {
            needed: nfa.num_states(),
            budget: 0,
        });
    }
    let mut bins: Vec<Vec<StateId>> = Vec::new();
    for comp in comps {
        if bins.len() < max_shards {
            bins.push(comp);
            continue;
        }
        let smallest = bins
            .iter_mut()
            .min_by_key(|bin| bin.len())
            .expect("max_shards > 0 implies at least one bin");
        smallest.extend(comp);
    }
    let ste_budget = bins.iter().map(Vec::len).max().unwrap_or(0).max(1);
    let shards = bins
        .into_iter()
        .map(|members| build_shard(nfa, members, false))
        .collect();
    let plan = ShardPlan {
        shards,
        ste_budget,
        total_states: nfa.num_states(),
    };
    debug_assert!(plan.validate_cover(nfa).is_ok());
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfa::{StartKind, Ste};
    use crate::symbol::SymbolSet;

    /// A chain of singleton-charset states; the last one reports.
    fn add_chain(nfa: &mut Nfa, syms: &[u8], report: u32) -> Vec<StateId> {
        let mut ids = Vec::new();
        for (i, &c) in syms.iter().enumerate() {
            let mut ste = Ste::new(SymbolSet::singleton(8, u16::from(c)));
            if i == 0 {
                ste = ste.start(StartKind::AllInput);
            }
            if i == syms.len() - 1 {
                ste = ste.report(report);
            }
            ids.push(nfa.add_state(ste));
        }
        for w in ids.windows(2) {
            nfa.add_edge(w[0], w[1]);
        }
        ids
    }

    #[test]
    fn empty_nfa_yields_empty_plan() {
        let nfa = Nfa::new(8);
        let plan = partition(&nfa, &PartitionOptions::default()).unwrap();
        assert_eq!(plan.num_shards(), 0);
        assert_eq!(plan.max_shard_states(), 0);
        plan.validate_cover(&nfa).unwrap();
        let plan = partition_into(&nfa, 4).unwrap();
        assert_eq!(plan.num_shards(), 0);
        // Zero shards is only an error when there are states to place.
        partition_into(&nfa, 0).unwrap();
    }

    #[test]
    fn oversized_component_errors_deterministically() {
        let mut nfa = Nfa::new(8);
        add_chain(&mut nfa, b"abcdef", 0);
        let opts = PartitionOptions::with_budget(4);
        let err = partition(&nfa, &opts).unwrap_err();
        assert_eq!(
            err,
            AutomataError::Capacity {
                needed: 6,
                budget: 4
            }
        );
        // Same input, same error, every time.
        assert_eq!(partition(&nfa, &opts).unwrap_err(), err);
        assert!(err.to_string().contains("6"), "{err}");
    }

    #[test]
    fn oversized_component_dedicates_under_policy() {
        let mut nfa = Nfa::new(8);
        add_chain(&mut nfa, b"abcdef", 0);
        add_chain(&mut nfa, b"xy", 1);
        let opts = PartitionOptions {
            ste_budget: 4,
            oversize: OversizePolicy::Dedicate,
        };
        let plan = partition(&nfa, &opts).unwrap();
        plan.validate_cover(&nfa).unwrap();
        assert_eq!(plan.num_shards(), 2);
        let oversized: Vec<_> = plan.shards.iter().filter(|s| s.oversized).collect();
        assert_eq!(oversized.len(), 1);
        assert_eq!(oversized[0].len(), 6);
    }

    #[test]
    fn report_only_states_are_their_own_components() {
        // Isolated reporting STEs (no edges at all) must each land in
        // exactly one shard and survive extraction with reports intact.
        let mut nfa = Nfa::new(8);
        let a = nfa.add_state(Ste::new(SymbolSet::singleton(8, 1)).report(7));
        let b = nfa.add_state(Ste::new(SymbolSet::singleton(8, 2)).report(8));
        let plan = partition(&nfa, &PartitionOptions::with_budget(1)).unwrap();
        plan.validate_cover(&nfa).unwrap();
        assert_eq!(plan.num_shards(), 2);
        for shard in &plan.shards {
            assert_eq!(shard.nfa.num_states(), 1);
            assert!(shard.nfa.state(StateId(0)).is_reporting());
        }
        let covered: Vec<_> = plan
            .shards
            .iter()
            .flat_map(|s| s.members.iter().copied())
            .collect();
        assert!(covered.contains(&a) && covered.contains(&b));
    }

    #[test]
    fn self_loop_start_states_survive_extraction() {
        let mut nfa = Nfa::new(8);
        let s = nfa.add_state(
            Ste::new(SymbolSet::singleton(8, b'a' as u16))
                .start(StartKind::StartOfData)
                .report(0),
        );
        nfa.add_edge(s, s);
        add_chain(&mut nfa, b"zz", 1);
        let plan = partition(&nfa, &PartitionOptions::with_budget(2)).unwrap();
        plan.validate_cover(&nfa).unwrap();
        let shard = plan
            .shards
            .iter()
            .find(|sh| sh.members.contains(&s))
            .expect("self-loop state must be covered");
        let local = StateId(shard.members.iter().position(|&m| m == s).unwrap() as u32);
        assert_eq!(shard.nfa.successors(local), &[local], "self-loop kept");
        assert_eq!(shard.nfa.state(local).start_kind(), StartKind::StartOfData);
    }

    #[test]
    fn union_covers_every_ste_exactly_once() {
        let mut nfa = Nfa::new(8);
        for (i, pat) in [b"abc".as_slice(), b"de", b"fghi", b"j", b"klm"]
            .iter()
            .enumerate()
        {
            add_chain(&mut nfa, pat, i as u32);
        }
        for budget in 1..=nfa.num_states() + 1 {
            let plan = partition(
                &nfa,
                &PartitionOptions {
                    ste_budget: budget,
                    oversize: OversizePolicy::Dedicate,
                },
            )
            .unwrap();
            plan.validate_cover(&nfa).unwrap();
            let total: usize = plan.shards.iter().map(Shard::len).sum();
            assert_eq!(total, nfa.num_states(), "budget {budget}");
        }
        for k in 1..=8 {
            let plan = partition_into(&nfa, k).unwrap();
            plan.validate_cover(&nfa).unwrap();
            assert!(plan.num_shards() <= k);
            assert_eq!(plan.num_shards(), k.min(5));
        }
    }

    #[test]
    fn packing_is_deterministic_and_respects_budget() {
        let mut nfa = Nfa::new(8);
        for (i, pat) in [b"abcd".as_slice(), b"ef", b"ghj", b"k", b"lmnop"]
            .iter()
            .enumerate()
        {
            add_chain(&mut nfa, pat, i as u32);
        }
        let opts = PartitionOptions::with_budget(5);
        let a = partition(&nfa, &opts).unwrap();
        let b = partition(&nfa, &opts).unwrap();
        let sizes = |p: &ShardPlan| {
            p.shards
                .iter()
                .map(|s| s.members.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(sizes(&a), sizes(&b));
        for shard in &a.shards {
            assert!(shard.len() <= 5);
        }
        // FFD: the 5-chain and 4-chain each anchor a bin; small ones fill in.
        assert_eq!(a.num_shards(), 3);
    }

    #[test]
    fn validate_cover_rejects_double_cover() {
        let mut nfa = Nfa::new(8);
        add_chain(&mut nfa, b"ab", 0);
        let mut plan = partition(&nfa, &PartitionOptions::default()).unwrap();
        let dup = plan.shards[0].clone();
        plan.shards.push(dup);
        assert!(plan.validate_cover(&nfa).is_err());
    }
}
