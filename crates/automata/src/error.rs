//! Error types shared across the automata toolchain.

use std::error::Error;
use std::fmt;

/// Errors produced by automata construction, parsing, and transformation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AutomataError {
    /// Two symbol sets (or automata) with different symbol widths were mixed.
    WidthMismatch {
        /// Width the operation required.
        expected: u8,
        /// Width that was actually provided.
        found: u8,
    },
    /// A state id referred to a state that does not exist.
    InvalidState {
        /// The offending state index.
        index: u32,
        /// Number of states in the automaton.
        len: u32,
    },
    /// A state's charset vector did not match the automaton stride.
    StrideMismatch {
        /// Stride of the automaton.
        expected: usize,
        /// Length of the state's charset vector.
        found: usize,
    },
    /// A report offset pointed past the end of the stride vector.
    InvalidReportOffset {
        /// The offending offset.
        offset: u8,
        /// Stride of the automaton.
        stride: usize,
    },
    /// Failure while parsing the textual automaton format.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Explanation of the failure.
        message: String,
    },
    /// Failure while compiling a regular expression.
    Regex {
        /// Byte offset in the pattern.
        position: usize,
        /// Explanation of the failure.
        message: String,
    },
    /// The symbol width requested is unsupported.
    UnsupportedWidth(u8),
    /// A placement unit (connected component) exceeded a capacity budget.
    Capacity {
        /// STEs the component needs.
        needed: usize,
        /// STEs the budget allows.
        budget: usize,
    },
}

impl fmt::Display for AutomataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AutomataError::WidthMismatch { expected, found } => {
                write!(
                    f,
                    "symbol width mismatch: expected {expected} bits, found {found}"
                )
            }
            AutomataError::InvalidState { index, len } => {
                write!(
                    f,
                    "state index {index} out of bounds for automaton with {len} states"
                )
            }
            AutomataError::StrideMismatch { expected, found } => {
                write!(
                    f,
                    "charset vector length {found} does not match stride {expected}"
                )
            }
            AutomataError::InvalidReportOffset { offset, stride } => {
                write!(f, "report offset {offset} exceeds stride {stride}")
            }
            AutomataError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            AutomataError::Regex { position, message } => {
                write!(f, "regex error at byte {position}: {message}")
            }
            AutomataError::UnsupportedWidth(bits) => {
                write!(f, "unsupported symbol width: {bits} bits")
            }
            AutomataError::Capacity { needed, budget } => {
                write!(
                    f,
                    "connected component needs {needed} STEs but the shard budget is {budget} \
                     (components are never split across shards)"
                )
            }
        }
    }
}

impl Error for AutomataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = AutomataError::WidthMismatch {
            expected: 4,
            found: 8,
        };
        assert!(e.to_string().contains("expected 4"));
        let e = AutomataError::Parse {
            line: 3,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AutomataError>();
    }
}
