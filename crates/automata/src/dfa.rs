//! Deterministic automata: subset construction and a software matcher.
//!
//! The paper's motivation (Section 1) is that pattern matching on
//! von Neumann hardware struggles: DFA-based software matchers avoid the
//! NFA's per-cycle active-set work but pay exponential state blowup on
//! rule sets with wildcards and counters, while NFA software pays poor
//! memory locality. This module provides the DFA side of that story —
//! subset construction over a homogeneous NFA (with a state cap, since
//! blowup is the point) and a dense-table matcher that models the software
//! baseline.

use std::collections::HashMap;

use crate::error::AutomataError;
use crate::nfa::{Nfa, StartKind, StateId};

/// A deterministic automaton over the same alphabet as its source NFA.
///
/// State 0 is the start state. The transition table is dense:
/// `next[state × alphabet + symbol]`. Reports fire on *entering* a state,
/// matching the homogeneous NFA's report-on-activation semantics.
#[derive(Debug, Clone)]
pub struct Dfa {
    symbol_bits: u8,
    next: Vec<u32>,
    /// Report ids fired on entering each state.
    reports: Vec<Vec<u32>>,
}

/// Subset construction exceeded the configured state budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DfaBlowup {
    /// States materialized before giving up.
    pub states_reached: usize,
}

impl std::fmt::Display for DfaBlowup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "subset construction exceeded the budget after {} states",
            self.states_reached
        )
    }
}

impl std::error::Error for DfaBlowup {}

impl Dfa {
    /// Determinizes `nfa` with a state budget.
    ///
    /// Unanchored (all-input) start states are folded in by keeping the
    /// start set enabled in every subset — the standard trick that turns
    /// scanning into a single DFA pass.
    ///
    /// # Errors
    ///
    /// Returns [`DfaBlowup`] if more than `max_states` subsets appear —
    /// which, for the rule-set shapes this repository studies, is the
    /// expected outcome and the quantity worth measuring.
    pub fn determinize(nfa: &Nfa, max_states: usize) -> Result<Dfa, DfaBlowup> {
        assert_eq!(nfa.stride(), 1, "determinize stride-1 automata");
        let alphabet = 1usize << nfa.symbol_bits();
        let all_input: Vec<StateId> = nfa
            .states()
            .filter(|(_, s)| s.start_kind() == StartKind::AllInput)
            .map(|(id, _)| id)
            .collect();
        let sod: Vec<StateId> = nfa
            .states()
            .filter(|(_, s)| s.start_kind() == StartKind::StartOfData)
            .map(|(id, _)| id)
            .collect();

        // Subset = sorted state list; the empty "dead but rearmed" subset
        // is the set of enabled-but-unmatched states = just the starts.
        let mut subsets: HashMap<Vec<u32>, u32> = HashMap::new();
        let mut worklist: Vec<Vec<u32>> = Vec::new();
        let mut next: Vec<u32> = Vec::new();
        let mut reports: Vec<Vec<u32>> = Vec::new();

        // The DFA's state tracks the *active* NFA set after a symbol. The
        // initial "no symbols consumed" state must stay distinct from a
        // mid-stream empty active set (only the former enables anchored
        // starts), so it carries a sentinel marker.
        const INITIAL_SENTINEL: u32 = u32::MAX;
        let initial: Vec<u32> = vec![INITIAL_SENTINEL];

        let intern = |set: Vec<u32>,
                      worklist: &mut Vec<Vec<u32>>,
                      subsets: &mut HashMap<Vec<u32>, u32>,
                      next: &mut Vec<u32>,
                      reports: &mut Vec<Vec<u32>>|
         -> u32 {
            if let Some(&id) = subsets.get(&set) {
                return id;
            }
            let id = subsets.len() as u32;
            let mut rs: Vec<u32> = Vec::new();
            for &s in &set {
                if s == u32::MAX {
                    continue; // initial-state sentinel
                }
                for r in nfa.state(StateId(s)).reports() {
                    rs.push(r.id);
                }
            }
            rs.sort_unstable();
            rs.dedup();
            subsets.insert(set.clone(), id);
            worklist.push(set);
            next.resize(next.len() + (1 << nfa.symbol_bits()), u32::MAX);
            reports.push(rs);
            id
        };
        intern(
            initial,
            &mut worklist,
            &mut subsets,
            &mut next,
            &mut reports,
        );

        let mut cursor = 0usize;
        while cursor < worklist.len() {
            if subsets.len() > max_states {
                return Err(DfaBlowup {
                    states_reached: subsets.len(),
                });
            }
            let current = worklist[cursor].clone();
            let is_initial = current.as_slice() == [INITIAL_SENTINEL];
            // Enabled set: successors of the current actives plus the
            // rearmed start states; anchored starts only from the initial
            // state.
            let mut enabled: Vec<u32> = Vec::new();
            if !is_initial {
                for &s in &current {
                    enabled.extend(nfa.successors(StateId(s)).iter().map(|t| t.0));
                }
            }
            enabled.extend(all_input.iter().map(|s| s.0));
            if is_initial {
                enabled.extend(sod.iter().map(|s| s.0));
            }
            enabled.sort_unstable();
            enabled.dedup();

            for sym in 0..alphabet {
                let mut target: Vec<u32> = enabled
                    .iter()
                    .copied()
                    .filter(|&s| nfa.state(StateId(s)).charset().contains(sym as u16))
                    .collect();
                target.sort_unstable();
                let tid = intern(target, &mut worklist, &mut subsets, &mut next, &mut reports);
                next[cursor * alphabet + sym] = tid;
            }
            cursor += 1;
        }
        Ok(Dfa {
            symbol_bits: nfa.symbol_bits(),
            next,
            reports,
        })
    }

    /// Number of DFA states.
    pub fn num_states(&self) -> usize {
        self.reports.len()
    }

    /// Symbol width in bits.
    pub fn symbol_bits(&self) -> u8 {
        self.symbol_bits
    }

    /// Scans `input`, returning `(position, report id)` pairs — the same
    /// view the NFA simulator produces, for equivalence checks.
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::UnsupportedWidth`] if the input cannot be
    /// viewed at the DFA's symbol width.
    pub fn scan(&self, input: &[u8]) -> Result<Vec<(u64, u32)>, AutomataError> {
        let view = crate::input::InputView::new(input, self.symbol_bits, 1)?;
        let alphabet = 1usize << self.symbol_bits;
        let mut state = 0usize;
        let mut out = Vec::new();
        for (pos, v) in view.iter().enumerate() {
            state = self.next[state * alphabet + v.symbols[0] as usize] as usize;
            for &r in &self.reports[state] {
                out.push((pos as u64, r));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::{compile_regex, compile_rule_set};

    fn nfa_positions(nfa: &Nfa, input: &[u8]) -> Vec<(u64, u32)> {
        // Reference: the (deduplicated) NFA report positions.
        use crate::input::InputView;
        let view = InputView::new(input, 8, 1).unwrap();
        let mut active: Vec<StateId> = Vec::new();
        let mut out = Vec::new();
        for (cycle, v) in view.iter().enumerate() {
            let mut enabled: Vec<StateId> = Vec::new();
            for &a in &active {
                enabled.extend_from_slice(nfa.successors(a));
            }
            for (id, s) in nfa.states() {
                match s.start_kind() {
                    StartKind::AllInput => enabled.push(id),
                    StartKind::StartOfData if cycle == 0 => enabled.push(id),
                    _ => {}
                }
            }
            enabled.sort_unstable();
            enabled.dedup();
            active = enabled
                .into_iter()
                .filter(|&id| nfa.state(id).matches(&v.symbols, v.valid))
                .collect();
            let mut ids: Vec<u32> = active
                .iter()
                .flat_map(|&id| nfa.state(id).reports().iter().map(|r| r.id))
                .collect();
            ids.sort_unstable();
            ids.dedup();
            for id in ids {
                out.push((cycle as u64, id));
            }
        }
        out
    }

    fn assert_dfa_equals_nfa(patterns: &[&str], input: &[u8]) {
        let nfa = compile_rule_set(patterns).unwrap();
        let dfa = Dfa::determinize(&nfa, 1 << 16).unwrap();
        assert_eq!(
            dfa.scan(input).unwrap(),
            nfa_positions(&nfa, input),
            "patterns {patterns:?}"
        );
    }

    #[test]
    fn dfa_matches_simple_patterns() {
        assert_dfa_equals_nfa(&["abc"], b"xxabcxabc");
        assert_dfa_equals_nfa(&["a"], b"aaa");
        assert_dfa_equals_nfa(&["cat", "dog"], b"cat dog catdog");
    }

    #[test]
    fn dfa_matches_classes_and_loops() {
        assert_dfa_equals_nfa(&["a[0-9]+b"], b"a12b a5 b a9b");
        assert_dfa_equals_nfa(&[".*zz"], b"qzzqzz");
        assert_dfa_equals_nfa(&["(ab|ba)+"], b"ababab");
    }

    #[test]
    fn dfa_handles_anchors() {
        assert_dfa_equals_nfa(&["^ab"], b"abab");
        assert_dfa_equals_nfa(&["^a", "b"], b"ab ba");
        // The anchor must NOT re-arm after a mid-stream dead state.
        assert_dfa_equals_nfa(&["^ab"], b"xab");
        assert_dfa_equals_nfa(&["^ab"], b"x ab ab");
    }

    #[test]
    fn overlapping_reports_dedup_like_active_sets() {
        assert_dfa_equals_nfa(&["aa"], b"aaaa");
        assert_dfa_equals_nfa(&["ab", "b"], b"abb");
    }

    #[test]
    fn blowup_is_detected() {
        // The classic (a|b)*a(a|b){n}: the DFA needs ~2^n states.
        let nfa = compile_regex("[ab]*a[ab]{12}", 0).unwrap();
        let err = Dfa::determinize(&nfa, 1000).unwrap_err();
        assert!(err.states_reached > 1000);
        assert!(err.to_string().contains("exceeded"));
        // With a big enough budget it succeeds and needs ≥ 2^12 states.
        let dfa = Dfa::determinize(&nfa, 1 << 15).unwrap();
        assert!(dfa.num_states() >= 1 << 12, "{}", dfa.num_states());
    }

    #[test]
    fn small_rule_sets_stay_small() {
        let nfa = compile_rule_set(&["abc", "def"]).unwrap();
        let dfa = Dfa::determinize(&nfa, 1 << 16).unwrap();
        assert!(dfa.num_states() < 20, "{}", dfa.num_states());
    }
}
