//! Dense symbol sets over small alphabets.
//!
//! An automaton state in the homogeneous (ANML-style) model owns the set of
//! input symbols on which it can be entered. Symbols are `w`-bit values with
//! `1 <= w <= 16`, so a set is a dense bitset over an alphabet of at most
//! 65,536 symbols. The common cases are `w = 8` (byte-oriented automata) and
//! `w = 4` (*nibble* automata, the representation Sunder executes).

use std::fmt;

use crate::error::AutomataError;

/// Maximum supported symbol width in bits.
pub const MAX_SYMBOL_BITS: u8 = 16;

/// A dense set of `w`-bit symbols.
///
/// The set remembers its symbol width; operations that combine two sets
/// (union, intersection, …) panic if the widths differ, because mixing
/// alphabets is always a logic error in automata transformations.
///
/// # Examples
///
/// ```
/// use sunder_automata::SymbolSet;
///
/// let mut set = SymbolSet::empty(8);
/// set.insert(b'a' as u16);
/// set.insert_range(b'0' as u16, b'9' as u16);
/// assert!(set.contains(b'5' as u16));
/// assert_eq!(set.len(), 11);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct SymbolSet {
    bits: u8,
    words: Vec<u64>,
}

impl SymbolSet {
    /// Creates an empty set over `bits`-wide symbols.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or greater than [`MAX_SYMBOL_BITS`].
    pub fn empty(bits: u8) -> Self {
        assert!(
            (1..=MAX_SYMBOL_BITS).contains(&bits),
            "symbol width must be in 1..=16, got {bits}"
        );
        let words = 1usize.max((1usize << bits) / 64);
        SymbolSet {
            bits,
            words: vec![0; words],
        }
    }

    /// Creates the full set (every symbol present) over `bits`-wide symbols.
    pub fn full(bits: u8) -> Self {
        let mut s = SymbolSet::empty(bits);
        let n = s.alphabet_size();
        if n >= 64 {
            for w in &mut s.words {
                *w = u64::MAX;
            }
        } else {
            s.words[0] = (1u64 << n) - 1;
        }
        s
    }

    /// Creates a set containing exactly one symbol.
    ///
    /// # Panics
    ///
    /// Panics if `symbol` does not fit in `bits` bits.
    pub fn singleton(bits: u8, symbol: u16) -> Self {
        let mut s = SymbolSet::empty(bits);
        s.insert(symbol);
        s
    }

    /// Creates a set from an inclusive range of symbols.
    pub fn range(bits: u8, lo: u16, hi: u16) -> Self {
        let mut s = SymbolSet::empty(bits);
        s.insert_range(lo, hi);
        s
    }

    /// Creates a set from an iterator of symbols.
    pub fn from_symbols<I: IntoIterator<Item = u16>>(bits: u8, symbols: I) -> Self {
        let mut s = SymbolSet::empty(bits);
        for sym in symbols {
            s.insert(sym);
        }
        s
    }

    /// Builds a 4-bit set directly from a 16-entry bitmask (one bit per nibble).
    pub fn from_nibble_mask(mask: u16) -> Self {
        let mut s = SymbolSet::empty(4);
        s.words[0] = mask as u64;
        s
    }

    /// Returns the low 16 bits of the set as a nibble mask.
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::WidthMismatch`] if the set is not 4-bit wide.
    pub fn to_nibble_mask(&self) -> Result<u16, AutomataError> {
        if self.bits != 4 {
            return Err(AutomataError::WidthMismatch {
                expected: 4,
                found: self.bits,
            });
        }
        Ok((self.words[0] & 0xFFFF) as u16)
    }

    /// Symbol width in bits.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// The raw 64-bit membership words, least-significant symbol first.
    ///
    /// Word `i` holds symbols `64·i ..= 64·i + 63`, one bit per symbol.
    /// This is the export used to build the dense engine's per-symbol
    /// accept masks: each state's charset contributes one column bit per
    /// symbol row, exactly the layout a memory subarray stores.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Calls `f(symbol)` for every member, in ascending order.
    ///
    /// Walks the membership words with `trailing_zeros`, so the cost is
    /// proportional to the set size plus the word count — much cheaper
    /// than [`SymbolSet::iter`] for sparse sets over wide alphabets.
    pub fn for_each_symbol<F: FnMut(u16)>(&self, mut f: F) {
        for (wi, &word) in self.words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let b = w.trailing_zeros();
                f((wi * 64 + b as usize) as u16);
                w &= w - 1;
            }
        }
    }

    /// Number of distinct symbols representable at this width.
    pub fn alphabet_size(&self) -> usize {
        1usize << self.bits
    }

    fn check(&self, symbol: u16) {
        assert!(
            (symbol as usize) < self.alphabet_size(),
            "symbol {symbol} out of range for {}-bit alphabet",
            self.bits
        );
    }

    /// Inserts a symbol. Returns `true` if the symbol was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if the symbol does not fit in the alphabet.
    pub fn insert(&mut self, symbol: u16) -> bool {
        self.check(symbol);
        let (w, b) = (symbol as usize / 64, symbol as usize % 64);
        let had = self.words[w] >> b & 1 == 1;
        self.words[w] |= 1u64 << b;
        !had
    }

    /// Removes a symbol. Returns `true` if the symbol was present.
    pub fn remove(&mut self, symbol: u16) -> bool {
        self.check(symbol);
        let (w, b) = (symbol as usize / 64, symbol as usize % 64);
        let had = self.words[w] >> b & 1 == 1;
        self.words[w] &= !(1u64 << b);
        had
    }

    /// Inserts every symbol in the inclusive range `lo..=hi`.
    pub fn insert_range(&mut self, lo: u16, hi: u16) {
        for sym in lo..=hi {
            self.insert(sym);
        }
    }

    /// Tests membership.
    pub fn contains(&self, symbol: u16) -> bool {
        if symbol as usize >= self.alphabet_size() {
            return false;
        }
        self.words[symbol as usize / 64] >> (symbol as usize % 64) & 1 == 1
    }

    /// Returns `true` if no symbol is present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Returns `true` if every symbol of the alphabet is present.
    pub fn is_full(&self) -> bool {
        self.len() == self.alphabet_size()
    }

    /// Number of symbols in the set.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Fraction of the alphabet covered by this set, in `[0, 1]`.
    ///
    /// The paper calls states with large values *symbol-dense*; they drive
    /// the state blowup of the nibble transformation (Section 7.2).
    pub fn density(&self) -> f64 {
        self.len() as f64 / self.alphabet_size() as f64
    }

    /// In-place union with another set of the same width.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn union_with(&mut self, other: &SymbolSet) {
        assert_eq!(self.bits, other.bits, "symbol width mismatch in union");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection with another set of the same width.
    pub fn intersect_with(&mut self, other: &SymbolSet) {
        assert_eq!(
            self.bits, other.bits,
            "symbol width mismatch in intersection"
        );
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Returns the complement of the set.
    pub fn complement(&self) -> SymbolSet {
        let mut out = self.clone();
        let n = self.alphabet_size();
        for w in &mut out.words {
            *w = !*w;
        }
        if n < 64 {
            out.words[0] &= (1u64 << n) - 1;
        }
        out
    }

    /// Returns `true` if the two sets share at least one symbol.
    pub fn intersects(&self, other: &SymbolSet) -> bool {
        assert_eq!(self.bits, other.bits, "symbol width mismatch");
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Iterates over the symbols in ascending order.
    pub fn iter(&self) -> Symbols<'_> {
        Symbols { set: self, next: 0 }
    }

    /// Extracts the sub-set of symbols whose top nibble equals `nibble`,
    /// returned as a set over symbols that are 4 bits narrower.
    ///
    /// This is the decomposition step of the FlexAmata-style nibble
    /// transformation: an 8-bit set splits into up to sixteen 4-bit
    /// *low-nibble* sets indexed by the high nibble.
    ///
    /// # Panics
    ///
    /// Panics if the set is only 4 bits wide (there is no lower half).
    pub fn sub_set_for_top_nibble(&self, nibble: u16) -> SymbolSet {
        assert!(self.bits > 4, "cannot split a 4-bit set further");
        let low_bits = self.bits - 4;
        let mut out = SymbolSet::empty(low_bits);
        let base = (nibble as usize) << low_bits;
        for low in 0..(1usize << low_bits) {
            let sym = base + low;
            if self.words[sym / 64] >> (sym % 64) & 1 == 1 {
                out.insert(low as u16);
            }
        }
        out
    }
}

impl fmt::Debug for SymbolSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SymbolSet({}b, {})", self.bits, self)
    }
}

impl fmt::Display for SymbolSet {
    /// Renders the set as a compact list of ranges, e.g. `[0x30-0x39,0x61]`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_full() {
            return write!(f, "[*]");
        }
        write!(f, "[")?;
        let mut first = true;
        let mut iter = self.iter().peekable();
        while let Some(lo) = iter.next() {
            let mut hi = lo;
            while iter.peek() == Some(&(hi + 1)) {
                hi = iter.next().unwrap();
            }
            if !first {
                write!(f, ",")?;
            }
            first = false;
            if lo == hi {
                write!(f, "{lo:#04x}")?;
            } else {
                write!(f, "{lo:#04x}-{hi:#04x}")?;
            }
        }
        write!(f, "]")
    }
}

/// Iterator over the symbols of a [`SymbolSet`] in ascending order.
#[derive(Debug, Clone)]
pub struct Symbols<'a> {
    set: &'a SymbolSet,
    next: usize,
}

impl Iterator for Symbols<'_> {
    type Item = u16;

    fn next(&mut self) -> Option<u16> {
        let n = self.set.alphabet_size();
        while self.next < n {
            let sym = self.next;
            self.next += 1;
            if self.set.words[sym / 64] >> (sym % 64) & 1 == 1 {
                return Some(sym as u16);
            }
        }
        None
    }
}

impl<'a> IntoIterator for &'a SymbolSet {
    type Item = u16;
    type IntoIter = Symbols<'a>;

    fn into_iter(self) -> Symbols<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        let e = SymbolSet::empty(8);
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        let f = SymbolSet::full(8);
        assert!(f.is_full());
        assert_eq!(f.len(), 256);
        let f4 = SymbolSet::full(4);
        assert_eq!(f4.len(), 16);
        assert!(f4.is_full());
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = SymbolSet::empty(8);
        assert!(s.insert(42));
        assert!(!s.insert(42));
        assert!(s.contains(42));
        assert!(s.remove(42));
        assert!(!s.remove(42));
        assert!(!s.contains(42));
    }

    #[test]
    fn range_and_iter() {
        let s = SymbolSet::range(8, 10, 14);
        let v: Vec<u16> = s.iter().collect();
        assert_eq!(v, vec![10, 11, 12, 13, 14]);
    }

    #[test]
    fn union_intersection_complement() {
        let a = SymbolSet::range(8, 0, 9);
        let b = SymbolSet::range(8, 5, 14);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.len(), 15);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.len(), 5);
        let c = a.complement();
        assert_eq!(c.len(), 246);
        assert!(!c.intersects(&a));
    }

    #[test]
    fn complement_small_width() {
        let a = SymbolSet::singleton(4, 3);
        let c = a.complement();
        assert_eq!(c.len(), 15);
        assert!(!c.contains(3));
        assert!(c.contains(0));
    }

    #[test]
    fn top_nibble_decomposition() {
        // 0x3A has top nibble 3, low nibble 0xA.
        let s = SymbolSet::from_symbols(8, [0x3A, 0x3B, 0x51]);
        let low3 = s.sub_set_for_top_nibble(3);
        assert_eq!(low3.iter().collect::<Vec<_>>(), vec![0xA, 0xB]);
        let low5 = s.sub_set_for_top_nibble(5);
        assert_eq!(low5.iter().collect::<Vec<_>>(), vec![0x1]);
        let low0 = s.sub_set_for_top_nibble(0);
        assert!(low0.is_empty());
    }

    #[test]
    fn sixteen_bit_sets() {
        let mut s = SymbolSet::empty(16);
        s.insert(0xFFFF);
        s.insert(0);
        assert_eq!(s.len(), 2);
        assert!(s.contains(0xFFFF));
        let top = s.sub_set_for_top_nibble(0xF);
        assert!(top.contains(0xFFF));
        assert_eq!(top.bits(), 12);
    }

    #[test]
    fn nibble_mask_round_trip() {
        let s = SymbolSet::from_nibble_mask(0b1010_0000_0000_0101);
        assert_eq!(s.to_nibble_mask().unwrap(), 0b1010_0000_0000_0101);
        assert_eq!(s.len(), 4);
        assert!(SymbolSet::empty(8).to_nibble_mask().is_err());
    }

    #[test]
    fn words_export_matches_membership() {
        let s = SymbolSet::from_symbols(8, [0, 63, 64, 255]);
        let w = s.words();
        assert_eq!(w.len(), 4);
        assert_eq!(w[0], 1 | (1 << 63));
        assert_eq!(w[1], 1);
        assert_eq!(w[3], 1 << 63);
        let mut seen = Vec::new();
        s.for_each_symbol(|sym| seen.push(sym));
        assert_eq!(seen, vec![0, 63, 64, 255]);
    }

    #[test]
    fn for_each_symbol_agrees_with_iter() {
        let s = SymbolSet::range(4, 3, 11);
        let mut fast = Vec::new();
        s.for_each_symbol(|sym| fast.push(sym));
        assert_eq!(fast, s.iter().collect::<Vec<_>>());
    }

    #[test]
    fn density() {
        let s = SymbolSet::range(8, 0, 127);
        assert!((s.density() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn display_ranges() {
        let s = SymbolSet::from_symbols(8, [1, 2, 3, 9]);
        assert_eq!(format!("{s}"), "[0x01-0x03,0x09]");
        assert_eq!(format!("{}", SymbolSet::full(4)), "[*]");
    }

    #[test]
    #[should_panic(expected = "symbol width must be in 1..=16")]
    fn width_zero_panics() {
        let _ = SymbolSet::empty(0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        let mut s = SymbolSet::empty(4);
        s.insert(16);
    }
}
