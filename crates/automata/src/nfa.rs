//! Homogeneous nondeterministic finite automata.
//!
//! In a *homogeneous* NFA every transition entering a state fires on the same
//! symbol set, so the set can be attached to the state itself (the paper calls
//! such states STEs, *state transition elements*, after ANML). This is the
//! representation that maps directly onto in-memory automata hardware: one
//! memory column per state, one-hot symbol encoding down the rows, and a
//! label-independent interconnect (paper, Figure 1).
//!
//! To support Impala/Sunder-style multi-symbol processing, an [`Nfa`] has a
//! *stride*: every cycle consumes a vector of `stride` symbols and a state
//! carries one [`SymbolSet`] per vector position. A classic automaton is
//! simply `stride == 1`.

use std::fmt;

use crate::error::AutomataError;
use crate::symbol::SymbolSet;

/// Identifier of a state within an [`Nfa`].
///
/// Ids are dense indexes assigned in insertion order, so they double as
/// vector positions in the simulator and hardware-mapping code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)] // guarantees &[u32] and &[StateId] share a layout,
                     // which the mapped pattern database (`sunder-artifact`) relies on to
                     // borrow state-id tables straight from an `.sdb` mapping
pub struct StateId(pub u32);

impl StateId {
    /// Index usable for slice addressing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// How a state participates in starting a match.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StartKind {
    /// Not a start state; enabled only via incoming transitions.
    #[default]
    None,
    /// Enabled only on the very first cycle (anchored match).
    StartOfData,
    /// Enabled on every aligned cycle (unanchored match). Alignment is
    /// governed by the automaton's [`start period`](Nfa::start_period).
    AllInput,
}

impl StartKind {
    /// Returns `true` for either start variant.
    pub fn is_start(self) -> bool {
        !matches!(self, StartKind::None)
    }
}

/// A report attached to a state.
///
/// `offset` locates the report within the stride vector: when a state with
/// stride `k` activates on a vector of `k` symbols, a report with offset `o`
/// corresponds to a match that completed after consuming symbol `o` of the
/// vector. Strided automata produced by temporal striding use this to keep
/// reports cycle-accurate with respect to the original symbol stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReportInfo {
    /// User-assigned report code (e.g. rule number).
    pub id: u32,
    /// Position within the stride vector at which the match completed.
    pub offset: u8,
}

impl ReportInfo {
    /// A report at the last position of a stride-1 vector (the common case).
    pub fn new(id: u32) -> Self {
        ReportInfo { id, offset: 0 }
    }

    /// A report at an explicit vector offset.
    pub fn at_offset(id: u32, offset: u8) -> Self {
        ReportInfo { id, offset }
    }
}

/// One homogeneous automaton state (STE).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ste {
    charsets: Vec<SymbolSet>,
    start: StartKind,
    reports: Vec<ReportInfo>,
}

impl Ste {
    /// Creates a stride-1 state with the given symbol set.
    pub fn new(charset: SymbolSet) -> Self {
        Ste {
            charsets: vec![charset],
            start: StartKind::None,
            reports: Vec::new(),
        }
    }

    /// Creates a strided state from one symbol set per vector position.
    ///
    /// # Panics
    ///
    /// Panics if `charsets` is empty.
    pub fn with_charsets(charsets: Vec<SymbolSet>) -> Self {
        assert!(!charsets.is_empty(), "a state needs at least one charset");
        Ste {
            charsets,
            start: StartKind::None,
            reports: Vec::new(),
        }
    }

    /// Sets the start kind (chainable).
    pub fn start(mut self, kind: StartKind) -> Self {
        self.start = kind;
        self
    }

    /// Adds a report at offset 0 (chainable).
    pub fn report(mut self, id: u32) -> Self {
        self.reports.push(ReportInfo::new(id));
        self
    }

    /// Adds a report at an explicit offset (chainable).
    pub fn report_at(mut self, id: u32, offset: u8) -> Self {
        self.reports.push(ReportInfo::at_offset(id, offset));
        self
    }

    /// The symbol sets, one per stride position.
    pub fn charsets(&self) -> &[SymbolSet] {
        &self.charsets
    }

    /// The symbol set at stride position 0 (the whole set for stride 1).
    pub fn charset(&self) -> &SymbolSet {
        &self.charsets[0]
    }

    /// Mutable access to the symbol sets.
    pub fn charsets_mut(&mut self) -> &mut [SymbolSet] {
        &mut self.charsets
    }

    /// Start kind of this state.
    pub fn start_kind(&self) -> StartKind {
        self.start
    }

    /// Sets the start kind in place.
    pub fn set_start_kind(&mut self, kind: StartKind) {
        self.start = kind;
    }

    /// Reports attached to this state.
    pub fn reports(&self) -> &[ReportInfo] {
        &self.reports
    }

    /// Returns `true` if the state carries at least one report.
    pub fn is_reporting(&self) -> bool {
        !self.reports.is_empty()
    }

    /// Adds a report in place.
    pub fn add_report(&mut self, report: ReportInfo) {
        self.reports.push(report);
    }

    /// Removes all reports.
    pub fn clear_reports(&mut self) {
        self.reports.clear();
    }

    /// Tests whether a symbol vector activates this state.
    ///
    /// Only the first `valid` positions carry real input; the remainder are
    /// end-of-stream padding and match only *don't care* (full) charsets.
    /// This mirrors the hardware masking used for the final partial vector.
    ///
    /// # Panics
    ///
    /// Panics (in all build profiles) if the vector length does not match
    /// this state's stride.
    pub fn matches(&self, vector: &[u16], valid: usize) -> bool {
        assert_eq!(
            vector.len(),
            self.charsets.len(),
            "symbol vector length must equal the state's stride"
        );
        for (i, cs) in self.charsets.iter().enumerate() {
            if i < valid {
                if !cs.contains(vector[i]) {
                    return false;
                }
            } else if !cs.is_full() {
                return false;
            }
        }
        true
    }
}

/// A homogeneous NFA with configurable symbol width and stride.
///
/// # Examples
///
/// Build the two-state automaton accepting `A|BC` from the paper's Figure 3:
///
/// ```
/// use sunder_automata::{Nfa, Ste, SymbolSet, StartKind};
///
/// let mut nfa = Nfa::new(8);
/// let a = nfa.add_state(
///     Ste::new(SymbolSet::singleton(8, b'A' as u16))
///         .start(StartKind::AllInput)
///         .report(0),
/// );
/// let b = nfa.add_state(Ste::new(SymbolSet::singleton(8, b'B' as u16)).start(StartKind::AllInput));
/// let c = nfa.add_state(Ste::new(SymbolSet::singleton(8, b'C' as u16)).report(1));
/// nfa.add_edge(b, c);
/// assert_eq!(nfa.num_states(), 3);
/// assert_eq!(nfa.num_transitions(), 1);
/// # let _ = (a, c);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Nfa {
    symbol_bits: u8,
    stride: usize,
    start_period: u32,
    states: Vec<Ste>,
    succ: Vec<Vec<StateId>>,
}

impl Nfa {
    /// Creates an empty stride-1 automaton over `symbol_bits`-wide symbols.
    ///
    /// # Panics
    ///
    /// Panics if `symbol_bits` is 0 or greater than 16.
    pub fn new(symbol_bits: u8) -> Self {
        Self::with_stride(symbol_bits, 1)
    }

    /// Creates an empty automaton consuming `stride` symbols per cycle.
    pub fn with_stride(symbol_bits: u8, stride: usize) -> Self {
        assert!(
            (1..=16).contains(&symbol_bits),
            "symbol width must be 1..=16"
        );
        assert!(stride >= 1, "stride must be at least 1");
        Nfa {
            symbol_bits,
            stride,
            start_period: 1,
            states: Vec::new(),
            succ: Vec::new(),
        }
    }

    /// Symbol width in bits.
    pub fn symbol_bits(&self) -> u8 {
        self.symbol_bits
    }

    /// Symbols consumed per cycle.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Input bits consumed per cycle (`symbol_bits × stride`).
    pub fn bits_per_cycle(&self) -> usize {
        self.symbol_bits as usize * self.stride
    }

    /// Period, in cycles, at which [`StartKind::AllInput`] states are
    /// enabled.
    ///
    /// A byte-oriented automaton transformed to nibbles has period 2: an
    /// unanchored pattern may start only at byte boundaries, i.e. every
    /// other nibble. Temporal striding halves the period (and materializes
    /// phase-shifted start states once the period reaches 1).
    pub fn start_period(&self) -> u32 {
        self.start_period
    }

    /// Sets the start period. See [`Nfa::start_period`].
    pub fn set_start_period(&mut self, period: u32) {
        assert!(period >= 1, "start period must be at least 1");
        self.start_period = period;
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Total number of transitions.
    pub fn num_transitions(&self) -> usize {
        self.succ.iter().map(Vec::len).sum()
    }

    /// Adds a state and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the state's charset vector length differs from the stride,
    /// or any charset width differs from the automaton symbol width, or a
    /// report offset is out of range.
    pub fn add_state(&mut self, ste: Ste) -> StateId {
        assert_eq!(
            ste.charsets.len(),
            self.stride,
            "charset vector length must equal stride"
        );
        for cs in &ste.charsets {
            assert_eq!(cs.bits(), self.symbol_bits, "charset width mismatch");
        }
        for r in &ste.reports {
            assert!(
                (r.offset as usize) < self.stride,
                "report offset out of range"
            );
        }
        let id = StateId(self.states.len() as u32);
        self.states.push(ste);
        self.succ.push(Vec::new());
        id
    }

    /// Adds a transition `from → to`. Duplicate edges are ignored.
    ///
    /// # Panics
    ///
    /// Panics if either state id is out of bounds.
    pub fn add_edge(&mut self, from: StateId, to: StateId) {
        assert!(
            from.index() < self.states.len(),
            "edge source out of bounds"
        );
        assert!(to.index() < self.states.len(), "edge target out of bounds");
        let list = &mut self.succ[from.index()];
        if !list.contains(&to) {
            list.push(to);
        }
    }

    /// Borrows a state.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of bounds.
    pub fn state(&self, id: StateId) -> &Ste {
        &self.states[id.index()]
    }

    /// Mutably borrows a state.
    pub fn state_mut(&mut self, id: StateId) -> &mut Ste {
        &mut self.states[id.index()]
    }

    /// Successors of a state.
    pub fn successors(&self, id: StateId) -> &[StateId] {
        &self.succ[id.index()]
    }

    /// Iterates over `(id, state)` pairs.
    pub fn states(&self) -> impl Iterator<Item = (StateId, &Ste)> {
        self.states
            .iter()
            .enumerate()
            .map(|(i, s)| (StateId(i as u32), s))
    }

    /// Ids of all start states.
    pub fn start_states(&self) -> Vec<StateId> {
        self.states()
            .filter(|(_, s)| s.start_kind().is_start())
            .map(|(id, _)| id)
            .collect()
    }

    /// Ids of all reporting states.
    pub fn report_states(&self) -> Vec<StateId> {
        self.states()
            .filter(|(_, s)| s.is_reporting())
            .map(|(id, _)| id)
            .collect()
    }

    /// Computes the predecessor lists (inverse of the successor relation).
    pub fn predecessors(&self) -> Vec<Vec<StateId>> {
        let mut pred = vec![Vec::new(); self.states.len()];
        for (i, outs) in self.succ.iter().enumerate() {
            for &t in outs {
                pred[t.index()].push(StateId(i as u32));
            }
        }
        pred
    }

    /// Merges another automaton into this one, returning the id offset that
    /// was applied to the other automaton's states.
    ///
    /// This is how multi-pattern rule sets are assembled: each pattern
    /// compiles to its own small automaton and they are unioned into one
    /// machine (they share nothing but the input stream).
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::WidthMismatch`] or
    /// [`AutomataError::StrideMismatch`] if the automata are incompatible.
    pub fn absorb(&mut self, other: &Nfa) -> Result<u32, AutomataError> {
        if other.symbol_bits != self.symbol_bits {
            return Err(AutomataError::WidthMismatch {
                expected: self.symbol_bits,
                found: other.symbol_bits,
            });
        }
        if other.stride != self.stride {
            return Err(AutomataError::StrideMismatch {
                expected: self.stride,
                found: other.stride,
            });
        }
        let offset = self.states.len() as u32;
        self.states.extend(other.states.iter().cloned());
        for outs in &other.succ {
            self.succ
                .push(outs.iter().map(|s| StateId(s.0 + offset)).collect());
        }
        Ok(offset)
    }

    /// Validates internal invariants, returning the first violation found.
    ///
    /// `add_state`/`add_edge` enforce these on the fly; `validate` exists for
    /// automata deserialized from text or assembled by transformations.
    ///
    /// # Errors
    ///
    /// Returns the specific [`AutomataError`] describing the violation.
    pub fn validate(&self) -> Result<(), AutomataError> {
        for (i, s) in self.states.iter().enumerate() {
            if s.charsets.len() != self.stride {
                return Err(AutomataError::StrideMismatch {
                    expected: self.stride,
                    found: s.charsets.len(),
                });
            }
            for cs in &s.charsets {
                if cs.bits() != self.symbol_bits {
                    return Err(AutomataError::WidthMismatch {
                        expected: self.symbol_bits,
                        found: cs.bits(),
                    });
                }
            }
            for r in &s.reports {
                if r.offset as usize >= self.stride {
                    return Err(AutomataError::InvalidReportOffset {
                        offset: r.offset,
                        stride: self.stride,
                    });
                }
            }
            for &t in &self.succ[i] {
                if t.index() >= self.states.len() {
                    return Err(AutomataError::InvalidState {
                        index: t.0,
                        len: self.states.len() as u32,
                    });
                }
            }
        }
        Ok(())
    }

    /// Rebuilds the automaton keeping only the states for which `keep` is
    /// true, preserving relative order. Returns the old→new id map
    /// (`None` for dropped states).
    pub fn retain_states(&mut self, keep: &[bool]) -> Vec<Option<StateId>> {
        assert_eq!(keep.len(), self.states.len());
        let mut map = vec![None; self.states.len()];
        let mut next = 0u32;
        for (i, &k) in keep.iter().enumerate() {
            if k {
                map[i] = Some(StateId(next));
                next += 1;
            }
        }
        let mut states = Vec::with_capacity(next as usize);
        let mut succ = Vec::with_capacity(next as usize);
        for (i, &k) in keep.iter().enumerate() {
            if k {
                states.push(self.states[i].clone());
                succ.push(self.succ[i].iter().filter_map(|t| map[t.index()]).collect());
            }
        }
        self.states = states;
        self.succ = succ;
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn byte(c: u8) -> SymbolSet {
        SymbolSet::singleton(8, c as u16)
    }

    #[test]
    fn build_simple() {
        let mut nfa = Nfa::new(8);
        let a = nfa.add_state(Ste::new(byte(b'a')).start(StartKind::AllInput));
        let b = nfa.add_state(Ste::new(byte(b'b')).report(7));
        nfa.add_edge(a, b);
        nfa.add_edge(a, b); // duplicate ignored
        assert_eq!(nfa.num_states(), 2);
        assert_eq!(nfa.num_transitions(), 1);
        assert_eq!(nfa.successors(a), &[b]);
        assert!(nfa.state(b).is_reporting());
        assert_eq!(nfa.state(b).reports()[0].id, 7);
        assert_eq!(nfa.start_states(), vec![a]);
        assert_eq!(nfa.report_states(), vec![b]);
        assert!(nfa.validate().is_ok());
    }

    #[test]
    fn predecessors_inverse() {
        let mut nfa = Nfa::new(8);
        let a = nfa.add_state(Ste::new(byte(b'a')));
        let b = nfa.add_state(Ste::new(byte(b'b')));
        let c = nfa.add_state(Ste::new(byte(b'c')));
        nfa.add_edge(a, c);
        nfa.add_edge(b, c);
        let pred = nfa.predecessors();
        assert_eq!(pred[c.index()], vec![a, b]);
        assert!(pred[a.index()].is_empty());
    }

    #[test]
    fn strided_state_matching() {
        let mut nfa = Nfa::with_stride(4, 2);
        let s = nfa.add_state(Ste::with_charsets(vec![
            SymbolSet::singleton(4, 3),
            SymbolSet::full(4),
        ]));
        let ste = nfa.state(s);
        assert!(ste.matches(&[3, 9], 2));
        assert!(!ste.matches(&[4, 9], 2));
        // Padding: second position is don't-care, so a 1-valid vector matches.
        assert!(ste.matches(&[3, 0], 1));
        // But a non-full charset in the padding region must not match.
        let t = nfa.add_state(Ste::with_charsets(vec![
            SymbolSet::full(4),
            SymbolSet::singleton(4, 1),
        ]));
        assert!(!nfa.state(t).matches(&[3, 1], 1));
        assert!(nfa.state(t).matches(&[3, 1], 2));
    }

    #[test]
    fn absorb_offsets_ids() {
        let mut a = Nfa::new(8);
        let a0 = a.add_state(Ste::new(byte(b'x')));
        let mut b = Nfa::new(8);
        let b0 = b.add_state(Ste::new(byte(b'y')).start(StartKind::StartOfData));
        let b1 = b.add_state(Ste::new(byte(b'z')).report(1));
        b.add_edge(b0, b1);
        let off = a.absorb(&b).unwrap();
        assert_eq!(off, 1);
        assert_eq!(a.num_states(), 3);
        assert_eq!(a.successors(StateId(1)), &[StateId(2)]);
        let _ = a0;
    }

    #[test]
    fn absorb_width_mismatch() {
        let mut a = Nfa::new(8);
        let b = Nfa::new(4);
        assert!(matches!(
            a.absorb(&b),
            Err(AutomataError::WidthMismatch { .. })
        ));
    }

    #[test]
    fn retain_states_remaps_edges() {
        let mut nfa = Nfa::new(8);
        let a = nfa.add_state(Ste::new(byte(b'a')));
        let b = nfa.add_state(Ste::new(byte(b'b')));
        let c = nfa.add_state(Ste::new(byte(b'c')));
        nfa.add_edge(a, b);
        nfa.add_edge(b, c);
        nfa.add_edge(a, c);
        let map = nfa.retain_states(&[true, false, true]);
        assert_eq!(nfa.num_states(), 2);
        assert_eq!(map[0], Some(StateId(0)));
        assert_eq!(map[1], None);
        assert_eq!(map[2], Some(StateId(1)));
        // a → c survives, a → b and b → c vanish.
        assert_eq!(nfa.successors(StateId(0)), &[StateId(1)]);
        assert!(nfa.successors(StateId(1)).is_empty());
    }

    #[test]
    #[should_panic(expected = "charset vector length")]
    fn stride_mismatch_panics() {
        let mut nfa = Nfa::with_stride(4, 2);
        nfa.add_state(Ste::new(SymbolSet::full(4)));
    }

    #[test]
    fn validate_catches_bad_offset() {
        let mut nfa = Nfa::new(8);
        nfa.add_state(Ste::new(byte(b'a')));
        // Corrupt via direct mutation.
        nfa.state_mut(StateId(0))
            .add_report(ReportInfo::at_offset(0, 5));
        assert!(matches!(
            nfa.validate(),
            Err(AutomataError::InvalidReportOffset { .. })
        ));
    }

    #[test]
    fn start_period_default_and_set() {
        let mut nfa = Nfa::new(8);
        assert_eq!(nfa.start_period(), 1);
        nfa.set_start_period(2);
        assert_eq!(nfa.start_period(), 2);
    }
}
