//! Classic (edge-labeled) NFAs and their conversion to homogeneous form.
//!
//! Textbook NFAs label *transitions* with symbol sets; in-memory automata
//! hardware needs the *homogeneous* form, where every transition entering
//! a state fires on the same set (the set moves onto the state). The
//! paper's Figure 1 shows the conversion: a classic state whose incoming
//! edges carry different labels splits into one homogeneous state per
//! distinct incoming label class.
//!
//! This module implements the classic model plus the label-splitting
//! conversion, so automata imported from textbook descriptions can enter
//! the Sunder pipeline.

use std::collections::HashMap;

use crate::nfa::{Nfa, StartKind, StateId, Ste};
use crate::symbol::SymbolSet;

/// A classic NFA: labeled edges, accepting states.
///
/// Epsilon transitions are not represented; eliminate them before
/// construction (the usual closure construction), as the hardware model
/// has no epsilon either.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassicNfa {
    symbol_bits: u8,
    states: usize,
    start: Vec<usize>,
    accepting: Vec<(usize, u32)>,
    edges: Vec<(usize, usize, SymbolSet)>,
    anchored: bool,
}

impl ClassicNfa {
    /// Creates an empty classic NFA over `symbol_bits`-wide symbols.
    ///
    /// `anchored` selects whether matching is pinned to the start of the
    /// input (start-of-data) or may begin anywhere (all-input).
    pub fn new(symbol_bits: u8, anchored: bool) -> Self {
        ClassicNfa {
            symbol_bits,
            states: 0,
            start: Vec::new(),
            accepting: Vec::new(),
            edges: Vec::new(),
            anchored,
        }
    }

    /// Adds a state, returning its index.
    pub fn add_state(&mut self) -> usize {
        self.states += 1;
        self.states - 1
    }

    /// Marks a start state.
    pub fn mark_start(&mut self, state: usize) {
        assert!(state < self.states, "state out of range");
        if !self.start.contains(&state) {
            self.start.push(state);
        }
    }

    /// Marks an accepting state with a report id.
    pub fn mark_accepting(&mut self, state: usize, report_id: u32) {
        assert!(state < self.states, "state out of range");
        self.accepting.push((state, report_id));
    }

    /// Adds a labeled transition.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range states or a label of the wrong width.
    pub fn add_edge(&mut self, from: usize, to: usize, label: SymbolSet) {
        assert!(from < self.states && to < self.states, "state out of range");
        assert_eq!(label.bits(), self.symbol_bits, "label width mismatch");
        self.edges.push((from, to, label));
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.states
    }

    /// Converts to the homogeneous form by label splitting.
    ///
    /// Each classic state `q` becomes one homogeneous STE per distinct
    /// incoming label (labels are compared as sets); start states that
    /// can be entered "spontaneously" at the beginning of a match get an
    /// extra entry for each outgoing step, which the Glushkov-style
    /// construction below realizes by making the *targets* of start-state
    /// edges start STEs.
    pub fn to_homogeneous(&self) -> Nfa {
        let mut out = Nfa::new(self.symbol_bits);
        // (classic state, incoming label) → homogeneous STE.
        let mut variants: HashMap<(usize, String), StateId> = HashMap::new();
        let accepting: HashMap<usize, Vec<u32>> = {
            let mut m: HashMap<usize, Vec<u32>> = HashMap::new();
            for &(s, id) in &self.accepting {
                m.entry(s).or_default().push(id);
            }
            m
        };
        let start_kind = if self.anchored {
            StartKind::StartOfData
        } else {
            StartKind::AllInput
        };

        // Materialize one STE per (target, label-class).
        let mut get_variant = |out: &mut Nfa, state: usize, label: &SymbolSet| -> StateId {
            let key = (state, format!("{label}"));
            if let Some(&id) = variants.get(&key) {
                return id;
            }
            let mut ste = Ste::new(label.clone());
            if let Some(ids) = accepting.get(&state) {
                for &r in ids {
                    ste.add_report(crate::nfa::ReportInfo::new(r));
                }
            }
            let id = out.add_state(ste);
            variants.insert(key, id);
            id
        };

        // Create all edge-target variants first.
        let mut variant_of_edge: Vec<StateId> = Vec::with_capacity(self.edges.len());
        for (_, to, label) in &self.edges {
            variant_of_edge.push(get_variant(&mut out, *to, label));
        }
        // Wire: an edge u→v lands in v's variant; from there, every edge
        // v→w continues into w's variant.
        for (i, (_, v, _)) in self.edges.iter().enumerate() {
            let from_ste = variant_of_edge[i];
            for (j, (u2, _, _)) in self.edges.iter().enumerate() {
                if u2 == v {
                    out.add_edge(from_ste, variant_of_edge[j]);
                }
            }
        }
        // Start: edges leaving a classic start state begin matches, so
        // their target variants are start STEs.
        for (i, (u, _, _)) in self.edges.iter().enumerate() {
            if self.start.contains(u) {
                out.state_mut(variant_of_edge[i]).set_start_kind(start_kind);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::InputView;

    fn run(nfa: &Nfa, input: &[u8]) -> Vec<(u64, u32)> {
        // A tiny inline simulator to keep this crate dependency-free.
        let view = InputView::new(input, 8, 1).unwrap();
        let mut active: Vec<StateId> = Vec::new();
        let mut out = Vec::new();
        for (cycle, v) in view.iter().enumerate() {
            let mut enabled: Vec<StateId> = Vec::new();
            for &a in &active {
                enabled.extend_from_slice(nfa.successors(a));
            }
            for (id, s) in nfa.states() {
                match s.start_kind() {
                    StartKind::AllInput => enabled.push(id),
                    StartKind::StartOfData if cycle == 0 => enabled.push(id),
                    _ => {}
                }
            }
            enabled.sort_unstable();
            enabled.dedup();
            active = enabled
                .into_iter()
                .filter(|&id| nfa.state(id).matches(&v.symbols, v.valid))
                .collect();
            for &id in &active {
                for r in nfa.state(id).reports() {
                    out.push((cycle as u64, r.id));
                }
            }
        }
        out
    }

    fn sym(c: u8) -> SymbolSet {
        SymbolSet::singleton(8, u16::from(c))
    }

    /// The paper's Figure 1 example: classic NFA accepting (A|(C* G))-ish
    /// structure — here the simpler `A|BC` of Figure 3 in classic form.
    #[test]
    fn figure_style_conversion() {
        let mut classic = ClassicNfa::new(8, true);
        let q0 = classic.add_state();
        let q1 = classic.add_state();
        let q2 = classic.add_state();
        classic.mark_start(q0);
        classic.mark_accepting(q2, 0);
        classic.add_edge(q0, q2, sym(b'A')); // A
        classic.add_edge(q0, q1, sym(b'B')); // B…
        classic.add_edge(q1, q2, sym(b'C')); // …C
        let homog = classic.to_homogeneous();
        assert!(homog.validate().is_ok());
        // q2 splits into an 'A' variant and a 'C' variant.
        assert_eq!(homog.num_states(), 3);
        assert_eq!(homog.report_states().len(), 2);

        assert_eq!(run(&homog, b"A"), vec![(0, 0)]);
        assert_eq!(run(&homog, b"BC"), vec![(1, 0)]);
        assert!(run(&homog, b"BA").is_empty());
        assert!(run(&homog, b"C").is_empty());
    }

    #[test]
    fn incoming_label_classes_split_states() {
        // q1 reachable on 'x' from q0 and on 'y' from itself: two variants.
        let mut classic = ClassicNfa::new(8, false);
        let q0 = classic.add_state();
        let q1 = classic.add_state();
        classic.mark_start(q0);
        classic.mark_accepting(q1, 7);
        classic.add_edge(q0, q1, sym(b'x'));
        classic.add_edge(q1, q1, sym(b'y'));
        let homog = classic.to_homogeneous();
        assert_eq!(homog.num_states(), 2);
        assert_eq!(homog.report_states().len(), 2);
        assert_eq!(run(&homog, b"xyy"), vec![(0, 7), (1, 7), (2, 7)]);
        assert!(run(&homog, b"y").is_empty());
    }

    #[test]
    fn identical_labels_share_a_variant() {
        // Two edges into q1, both on 'z': one homogeneous state.
        let mut classic = ClassicNfa::new(8, false);
        let q0 = classic.add_state();
        let qa = classic.add_state();
        let q1 = classic.add_state();
        classic.mark_start(q0);
        classic.mark_accepting(q1, 1);
        classic.add_edge(q0, q1, sym(b'z'));
        classic.add_edge(qa, q1, sym(b'z'));
        classic.add_edge(q0, qa, sym(b'w'));
        let homog = classic.to_homogeneous();
        // Variants: q1/'z' (shared), qa/'w'.
        assert_eq!(homog.num_states(), 2);
        assert_eq!(run(&homog, b"z"), vec![(0, 1)]);
        assert_eq!(run(&homog, b"wz"), vec![(1, 1)]);
    }

    #[test]
    fn unanchored_matches_anywhere() {
        let mut classic = ClassicNfa::new(8, false);
        let q0 = classic.add_state();
        let q1 = classic.add_state();
        classic.mark_start(q0);
        classic.mark_accepting(q1, 0);
        classic.add_edge(q0, q1, sym(b'k'));
        let homog = classic.to_homogeneous();
        assert_eq!(run(&homog, b"akbk"), vec![(1, 0), (3, 0)]);
    }
}
