//! Static (structure-only) automaton statistics.
//!
//! These are the "Static Analysis" columns of the paper's Table 1 plus the
//! structural quantities that drive the transformation overheads of Table 3
//! (symbol density in particular).

use std::fmt;

use crate::graph::connected_components;
use crate::nfa::Nfa;

/// Structure-only statistics of an automaton.
#[derive(Debug, Clone, PartialEq)]
pub struct StaticStats {
    /// Total number of states (`#States` in Table 1).
    pub states: usize,
    /// Total number of transitions.
    pub transitions: usize,
    /// Number of reporting states (`#Report States`).
    pub report_states: usize,
    /// Number of start states.
    pub start_states: usize,
    /// Number of weakly connected components (≈ independent patterns).
    pub components: usize,
    /// Largest component size (bounds the placement granularity).
    pub largest_component: usize,
    /// Mean fraction of the alphabet accepted per state. Symbol-dense
    /// benchmarks (Brill, Protomata, …) pay the largest nibble-transform
    /// overhead (paper, Section 7.2).
    pub mean_symbol_density: f64,
    /// Maximum out-degree over all states.
    pub max_fan_out: usize,
}

impl StaticStats {
    /// Computes the statistics for an automaton.
    pub fn of(nfa: &Nfa) -> Self {
        let comps = connected_components(nfa);
        let mut density_sum = 0.0;
        let mut max_fan_out = 0;
        for (id, ste) in nfa.states() {
            let d: f64 = ste.charsets().iter().map(|c| c.density()).sum::<f64>()
                / ste.charsets().len() as f64;
            density_sum += d;
            max_fan_out = max_fan_out.max(nfa.successors(id).len());
        }
        let states = nfa.num_states();
        StaticStats {
            states,
            transitions: nfa.num_transitions(),
            report_states: nfa.report_states().len(),
            start_states: nfa.start_states().len(),
            components: comps.len(),
            largest_component: comps.iter().map(Vec::len).max().unwrap_or(0),
            mean_symbol_density: if states == 0 {
                0.0
            } else {
                density_sum / states as f64
            },
            max_fan_out,
        }
    }

    /// `#Report States / #States`, as a percentage (Table 1, fifth column).
    pub fn report_state_percent(&self) -> f64 {
        if self.states == 0 {
            0.0
        } else {
            100.0 * self.report_states as f64 / self.states as f64
        }
    }
}

impl fmt::Display for StaticStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} states, {} transitions, {} report states ({:.1}%), {} components (max {}), density {:.3}",
            self.states,
            self.transitions,
            self.report_states,
            self.report_state_percent(),
            self.components,
            self.largest_component,
            self.mean_symbol_density,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::compile_rule_set;

    #[test]
    fn stats_of_rule_set() {
        let nfa = compile_rule_set(&["abc", "x[0-9]z"]).unwrap();
        let s = StaticStats::of(&nfa);
        assert_eq!(s.states, 6);
        assert_eq!(s.transitions, 4);
        assert_eq!(s.report_states, 2);
        assert_eq!(s.start_states, 2);
        assert_eq!(s.components, 2);
        assert_eq!(s.largest_component, 3);
        assert!((s.report_state_percent() - 100.0 * 2.0 / 6.0).abs() < 1e-9);
        assert!(s.mean_symbol_density > 0.0 && s.mean_symbol_density < 0.02);
    }

    #[test]
    fn empty_automaton() {
        let s = StaticStats::of(&Nfa::new(8));
        assert_eq!(s.states, 0);
        assert_eq!(s.report_state_percent(), 0.0);
        assert_eq!(s.mean_symbol_density, 0.0);
    }

    #[test]
    fn display_is_nonempty() {
        let nfa = compile_rule_set(&["ab"]).unwrap();
        let text = StaticStats::of(&nfa).to_string();
        assert!(text.contains("2 states"));
    }
}
