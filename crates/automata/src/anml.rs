//! A plain-text automaton exchange format (ANML-inspired).
//!
//! The real benchmark suites ship automata in Micron's XML-based ANML.
//! This module defines an equivalent, line-oriented format that is easy to
//! diff and to generate, and supports the strided extension used by the
//! transformation toolchain:
//!
//! ```text
//! # comment
//! automaton bits=8 stride=1 period=1
//! ste q0 [0x61] start=all-input
//! ste q1 [0x30-0x39,0x5f] report=7
//! ste q2 [*] report=3@0
//! edge q0 q1
//! edge q1 q2
//! ```
//!
//! For `stride > 1`, each state lists one bracketed charset per position:
//! `ste q0 [0x1][*]`. Reports use `id` or `id@offset`.

use std::fmt::Write as _;

use crate::error::AutomataError;
use crate::nfa::{Nfa, ReportInfo, StartKind, StateId, Ste};
use crate::symbol::SymbolSet;

/// Serializes an automaton to the textual format.
///
/// The output round-trips through [`parse`] to an automaton equal to the
/// input (state order preserved).
pub fn serialize(nfa: &Nfa) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "automaton bits={} stride={} period={}",
        nfa.symbol_bits(),
        nfa.stride(),
        nfa.start_period()
    );
    for (id, ste) in nfa.states() {
        let _ = write!(out, "ste q{}", id.0);
        for cs in ste.charsets() {
            let _ = write!(out, " {}", format_charset(cs));
        }
        match ste.start_kind() {
            StartKind::None => {}
            StartKind::StartOfData => out.push_str(" start=start-of-data"),
            StartKind::AllInput => out.push_str(" start=all-input"),
        }
        for r in ste.reports() {
            let _ = write!(out, " report={}@{}", r.id, r.offset);
        }
        out.push('\n');
    }
    for (id, _) in nfa.states() {
        for &t in nfa.successors(id) {
            let _ = writeln!(out, "edge q{} q{}", id.0, t.0);
        }
    }
    out
}

fn format_charset(cs: &SymbolSet) -> String {
    format!("{cs}") // the Display impl prints [..] range syntax
}

/// Parses the textual format into an automaton.
///
/// # Errors
///
/// Returns [`AutomataError::Parse`] with a 1-based line number on any
/// malformed line, unknown state reference, or header/state inconsistency.
pub fn parse(text: &str) -> Result<Nfa, AutomataError> {
    let mut nfa: Option<Nfa> = None;
    // Name -> id index; a linear scan here would make parsing quadratic,
    // which the artifact loader (one parse per shard) cannot afford.
    let mut names: std::collections::HashMap<String, StateId> = std::collections::HashMap::new();

    let err = |line: usize, msg: &str| AutomataError::Parse {
        line,
        message: msg.to_string(),
    };

    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut words = line.split_whitespace();
        match words.next() {
            Some("automaton") => {
                let mut bits = None;
                let mut stride = 1usize;
                let mut period = 1u32;
                for w in words {
                    if let Some(v) = w.strip_prefix("bits=") {
                        bits = Some(v.parse().map_err(|_| err(lineno, "bad bits value"))?);
                    } else if let Some(v) = w.strip_prefix("stride=") {
                        stride = v.parse().map_err(|_| err(lineno, "bad stride value"))?;
                    } else if let Some(v) = w.strip_prefix("period=") {
                        period = v.parse().map_err(|_| err(lineno, "bad period value"))?;
                    } else {
                        return Err(err(lineno, "unknown automaton attribute"));
                    }
                }
                let bits: u8 = bits.ok_or_else(|| err(lineno, "missing bits= in header"))?;
                // Validate here rather than letting the Nfa constructors
                // assert: malformed *input* must surface as a parse error,
                // never a panic.
                if bits == 0 || bits > 16 {
                    return Err(err(lineno, "bits must be between 1 and 16"));
                }
                if stride == 0 {
                    return Err(err(lineno, "stride must be at least 1"));
                }
                if period == 0 {
                    return Err(err(lineno, "period must be at least 1"));
                }
                let mut a = Nfa::with_stride(bits, stride);
                a.set_start_period(period);
                nfa = Some(a);
            }
            Some("ste") => {
                let nfa = nfa
                    .as_mut()
                    .ok_or_else(|| err(lineno, "ste before automaton header"))?;
                let name = words
                    .next()
                    .ok_or_else(|| err(lineno, "ste needs a name"))?
                    .to_string();
                let mut charsets = Vec::new();
                let mut start = StartKind::None;
                let mut reports = Vec::new();
                for w in words {
                    if w.starts_with('[') {
                        charsets.push(parse_charset(w, nfa.symbol_bits(), lineno)?);
                    } else if let Some(v) = w.strip_prefix("start=") {
                        start = match v {
                            "start-of-data" => StartKind::StartOfData,
                            "all-input" => StartKind::AllInput,
                            "none" => StartKind::None,
                            _ => return Err(err(lineno, "unknown start kind")),
                        };
                    } else if let Some(v) = w.strip_prefix("report=") {
                        let (id, offset) = match v.split_once('@') {
                            Some((i, o)) => (
                                i.parse().map_err(|_| err(lineno, "bad report id"))?,
                                o.parse().map_err(|_| err(lineno, "bad report offset"))?,
                            ),
                            None => (v.parse().map_err(|_| err(lineno, "bad report id"))?, 0),
                        };
                        reports.push(ReportInfo::at_offset(id, offset));
                    } else {
                        return Err(err(lineno, "unknown ste attribute"));
                    }
                }
                if charsets.len() != nfa.stride() {
                    return Err(err(lineno, "charset count does not match stride"));
                }
                if names.contains_key(&name) {
                    return Err(err(lineno, "duplicate state name"));
                }
                let mut ste = Ste::with_charsets(charsets).start(start);
                for r in reports {
                    if usize::from(r.offset) >= nfa.stride() {
                        return Err(err(lineno, "report offset exceeds stride"));
                    }
                    ste.add_report(r);
                }
                let id = StateId(names.len() as u32);
                nfa.add_state(ste);
                names.insert(name, id);
            }
            Some("edge") => {
                let nfa = nfa
                    .as_mut()
                    .ok_or_else(|| err(lineno, "edge before automaton header"))?;
                let a = words
                    .next()
                    .ok_or_else(|| err(lineno, "edge needs two states"))?;
                let b = words
                    .next()
                    .ok_or_else(|| err(lineno, "edge needs two states"))?;
                let fa = names
                    .get(a)
                    .copied()
                    .ok_or_else(|| err(lineno, "unknown edge source"))?;
                let fb = names
                    .get(b)
                    .copied()
                    .ok_or_else(|| err(lineno, "unknown edge target"))?;
                nfa.add_edge(fa, fb);
            }
            _ => return Err(err(lineno, "unknown directive")),
        }
    }
    let nfa = nfa.ok_or_else(|| err(0, "missing automaton header"))?;
    nfa.validate()?;
    Ok(nfa)
}

fn parse_charset(token: &str, bits: u8, lineno: usize) -> Result<SymbolSet, AutomataError> {
    let err = |msg: &str| AutomataError::Parse {
        line: lineno,
        message: msg.to_string(),
    };
    let inner = token
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| err("charset must be bracketed"))?;
    if inner == "*" {
        return Ok(SymbolSet::full(bits));
    }
    let mut set = SymbolSet::empty(bits);
    if inner.is_empty() {
        return Ok(set);
    }
    for part in inner.split(',') {
        let parse_sym = |s: &str| -> Result<u16, AutomataError> {
            let s = s.trim();
            let v = if let Some(hex) = s.strip_prefix("0x") {
                u16::from_str_radix(hex, 16).map_err(|_| err("bad hex symbol"))?
            } else {
                s.parse().map_err(|_| err("bad symbol"))?
            };
            if (v as usize) >= (1usize << bits) {
                return Err(err("symbol out of alphabet range"));
            }
            Ok(v)
        };
        match part.split_once('-') {
            Some((lo, hi)) => {
                let lo = parse_sym(lo)?;
                let hi = parse_sym(hi)?;
                if hi < lo {
                    return Err(err("range out of order"));
                }
                set.insert_range(lo, hi);
            }
            None => {
                set.insert(parse_sym(part)?);
            }
        }
    }
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::compile_regex;

    #[test]
    fn round_trip_simple() {
        let nfa = compile_regex("ab[0-9]+", 3).unwrap();
        let text = serialize(&nfa);
        let back = parse(&text).unwrap();
        assert_eq!(nfa, back);
    }

    #[test]
    fn round_trip_strided() {
        let mut nfa = Nfa::with_stride(4, 2);
        nfa.set_start_period(2);
        let a = nfa.add_state(
            Ste::with_charsets(vec![SymbolSet::singleton(4, 1), SymbolSet::full(4)])
                .start(StartKind::AllInput)
                .report_at(5, 1),
        );
        nfa.add_edge(a, a);
        let text = serialize(&nfa);
        let back = parse(&text).unwrap();
        assert_eq!(nfa, back);
        assert_eq!(back.start_period(), 2);
    }

    #[test]
    fn parse_hand_written() {
        let text = "\n# two-state chain\nautomaton bits=8 stride=1 period=1\n\
                    ste s0 [0x61] start=all-input\n\
                    ste s1 [0x62-0x63] report=9\n\
                    edge s0 s1\n";
        let nfa = parse(text).unwrap();
        assert_eq!(nfa.num_states(), 2);
        assert_eq!(nfa.num_transitions(), 1);
        assert_eq!(nfa.state(StateId(1)).reports()[0].id, 9);
    }

    #[test]
    fn parse_full_and_empty_charsets() {
        let text = "automaton bits=4 stride=1\nste a [*]\nste b []\n";
        let nfa = parse(text).unwrap();
        assert!(nfa.state(StateId(0)).charset().is_full());
        assert!(nfa.state(StateId(1)).charset().is_empty());
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let bad = "automaton bits=8\nste s0 [0x61]\nedge s0 s9\n";
        let e = parse(bad).unwrap_err();
        match e {
            AutomataError::Parse { line, .. } => assert_eq!(line, 3),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("bogus line").is_err());
        assert!(parse("ste s [0x1]").is_err()); // before header
        assert!(parse("automaton bits=8\nste s [0x1] report=x").is_err());
        assert!(parse("automaton stride=2").is_err()); // missing bits
        assert!(parse("automaton bits=8\nste s [0x1] [0x2]").is_err()); // stride 1, two sets
        assert!(parse("automaton bits=4\nste s [0x1f]").is_err()); // out of range
        assert!(parse("").is_err());
    }

    #[test]
    fn malformed_headers_error_instead_of_panicking() {
        // Each of these previously tripped an assert inside the Nfa
        // constructors; the parser must reject them itself.
        for (bad, what) in [
            ("automaton bits=0", "zero bits"),
            ("automaton bits=17", "too many bits"),
            ("automaton bits=8 stride=0", "zero stride"),
            ("automaton bits=8 period=0", "zero period"),
        ] {
            match parse(bad) {
                Err(AutomataError::Parse { line, .. }) => assert_eq!(line, 1, "{what}"),
                other => panic!("{what}: expected a parse error, got {other:?}"),
            }
        }
    }

    #[test]
    fn report_offset_beyond_stride_is_a_parse_error() {
        let bad = "automaton bits=4 stride=2\nste s [0x1] [0x2] report=3@2\n";
        match parse(bad) {
            Err(AutomataError::Parse { line, message }) => {
                assert_eq!(line, 2);
                assert!(message.contains("offset"));
            }
            other => panic!("expected a parse error, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_state_names_rejected() {
        let bad = "automaton bits=8\nste s [0x1]\nste s [0x2]\n";
        match parse(bad) {
            Err(AutomataError::Parse { line, message }) => {
                assert_eq!(line, 3);
                assert!(message.contains("duplicate"));
            }
            other => panic!("expected a parse error, got {other:?}"),
        }
    }

    #[test]
    fn decimal_symbols_accepted() {
        let nfa = parse("automaton bits=8\nste s [97,98-99]\n").unwrap();
        assert_eq!(nfa.state(StateId(0)).charset().len(), 3);
    }
}
