//! Graph utilities over the automaton transition structure.
//!
//! Placement onto processing units, pruning, and the workload statistics all
//! view the automaton as a directed graph; this module collects the shared
//! algorithms.

use crate::nfa::{Nfa, StateId};

/// Weakly connected components of the transition graph.
///
/// Each component is a sorted list of state ids. Multi-pattern rule sets
/// decompose into one component per independent pattern, which is the unit
/// the hardware mapper bin-packs into processing units.
pub fn connected_components(nfa: &Nfa) -> Vec<Vec<StateId>> {
    let n = nfa.num_states();
    let mut comp = vec![usize::MAX; n];
    let pred = nfa.predecessors();
    let mut components = Vec::new();
    let mut stack = Vec::new();
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        let cid = components.len();
        let mut members = Vec::new();
        stack.push(start);
        comp[start] = cid;
        while let Some(v) = stack.pop() {
            members.push(StateId(v as u32));
            for &t in nfa.successors(StateId(v as u32)) {
                if comp[t.index()] == usize::MAX {
                    comp[t.index()] = cid;
                    stack.push(t.index());
                }
            }
            for &p in &pred[v] {
                if comp[p.index()] == usize::MAX {
                    comp[p.index()] = cid;
                    stack.push(p.index());
                }
            }
        }
        members.sort_unstable();
        components.push(members);
    }
    components
}

/// States reachable from any start state by following transitions.
pub fn reachable_from_starts(nfa: &Nfa) -> Vec<bool> {
    let n = nfa.num_states();
    let mut seen = vec![false; n];
    let mut stack: Vec<StateId> = nfa.start_states();
    for s in &stack {
        seen[s.index()] = true;
    }
    while let Some(v) = stack.pop() {
        for &t in nfa.successors(v) {
            if !seen[t.index()] {
                seen[t.index()] = true;
                stack.push(t);
            }
        }
    }
    seen
}

/// States from which some reporting state is reachable (including reporting
/// states themselves).
pub fn can_reach_report(nfa: &Nfa) -> Vec<bool> {
    let n = nfa.num_states();
    let pred = nfa.predecessors();
    let mut useful = vec![false; n];
    let mut stack: Vec<StateId> = nfa.report_states();
    for s in &stack {
        useful[s.index()] = true;
    }
    while let Some(v) = stack.pop() {
        for &p in &pred[v.index()] {
            if !useful[p.index()] {
                useful[p.index()] = true;
                stack.push(p);
            }
        }
    }
    useful
}

/// Removes states that are unreachable from the starts or cannot contribute
/// to a report. Returns the number of states removed.
///
/// Transformations can leave such dead states behind; hardware capacity is
/// too precious to configure them (cf. Liu et al. (MICRO '18) in the paper, who
/// exploit the same observation dynamically).
pub fn prune_useless(nfa: &mut Nfa) -> usize {
    let reach = reachable_from_starts(nfa);
    let useful = can_reach_report(nfa);
    let keep: Vec<bool> = reach.iter().zip(&useful).map(|(&r, &u)| r && u).collect();
    let removed = keep.iter().filter(|&&k| !k).count();
    if removed > 0 {
        nfa.retain_states(&keep);
    }
    removed
}

/// Extracts the sub-automaton induced by `members`, remapping ids densely.
///
/// States outside `members` are dropped along with any edges touching them.
/// Returned ids follow the order of `members`.
pub fn extract_subautomaton(nfa: &Nfa, members: &[StateId]) -> Nfa {
    let mut map = vec![None; nfa.num_states()];
    for (new, old) in members.iter().enumerate() {
        map[old.index()] = Some(StateId(new as u32));
    }
    let mut out = Nfa::with_stride(nfa.symbol_bits(), nfa.stride());
    out.set_start_period(nfa.start_period());
    for &old in members {
        out.add_state(nfa.state(old).clone());
    }
    for &old in members {
        let from = map[old.index()].expect("member must be mapped");
        for &t in nfa.successors(old) {
            if let Some(to) = map[t.index()] {
                out.add_edge(from, to);
            }
        }
    }
    out
}

/// Breadth-first layering from the start states; states unreachable from a
/// start get layer `usize::MAX`.
///
/// Used by the placement heuristics to split oversized components along
/// "time" layers, which minimizes the number of cut transitions for the
/// chain-like automata that dominate pattern-matching rule sets.
pub fn bfs_layers(nfa: &Nfa) -> Vec<usize> {
    let n = nfa.num_states();
    let mut layer = vec![usize::MAX; n];
    let mut frontier: Vec<StateId> = nfa.start_states();
    for s in &frontier {
        layer[s.index()] = 0;
    }
    let mut depth = 0;
    while !frontier.is_empty() {
        depth += 1;
        let mut next = Vec::new();
        for v in frontier.drain(..) {
            for &t in nfa.successors(v) {
                if layer[t.index()] == usize::MAX {
                    layer[t.index()] = depth;
                    next.push(t);
                }
            }
        }
        frontier = next;
    }
    layer
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfa::{StartKind, Ste};
    use crate::symbol::SymbolSet;

    fn chain(nfa: &mut Nfa, syms: &[u8], report: u32) -> Vec<StateId> {
        let mut ids = Vec::new();
        for (i, &c) in syms.iter().enumerate() {
            let mut ste = Ste::new(SymbolSet::singleton(8, c as u16));
            if i == 0 {
                ste = ste.start(StartKind::AllInput);
            }
            if i == syms.len() - 1 {
                ste = ste.report(report);
            }
            ids.push(nfa.add_state(ste));
        }
        for w in ids.windows(2) {
            nfa.add_edge(w[0], w[1]);
        }
        ids
    }

    #[test]
    fn components_of_two_chains() {
        let mut nfa = Nfa::new(8);
        chain(&mut nfa, b"abc", 0);
        chain(&mut nfa, b"xy", 1);
        let comps = connected_components(&nfa);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].len(), 3);
        assert_eq!(comps[1].len(), 2);
    }

    #[test]
    fn components_follow_reverse_edges() {
        // a → c ← b : one component even though no path a→b.
        let mut nfa = Nfa::new(8);
        let a = nfa.add_state(Ste::new(SymbolSet::singleton(8, 1)));
        let b = nfa.add_state(Ste::new(SymbolSet::singleton(8, 2)));
        let c = nfa.add_state(Ste::new(SymbolSet::singleton(8, 3)));
        nfa.add_edge(a, c);
        nfa.add_edge(b, c);
        assert_eq!(connected_components(&nfa).len(), 1);
    }

    #[test]
    fn prune_removes_dead_states() {
        let mut nfa = Nfa::new(8);
        let ids = chain(&mut nfa, b"ab", 0);
        // Orphan state: unreachable and reportless.
        nfa.add_state(Ste::new(SymbolSet::singleton(8, 99)));
        // Reachable but cannot reach a report.
        let dead_end = nfa.add_state(Ste::new(SymbolSet::singleton(8, 98)));
        nfa.add_edge(ids[1], dead_end);
        let removed = prune_useless(&mut nfa);
        assert_eq!(removed, 2);
        assert_eq!(nfa.num_states(), 2);
        assert!(nfa.validate().is_ok());
    }

    #[test]
    fn extract_preserves_internal_edges() {
        let mut nfa = Nfa::new(8);
        let ids = chain(&mut nfa, b"abcd", 0);
        let sub = extract_subautomaton(&nfa, &ids[1..3]);
        assert_eq!(sub.num_states(), 2);
        assert_eq!(sub.num_transitions(), 1);
        assert_eq!(sub.successors(StateId(0)), &[StateId(1)]);
    }

    #[test]
    fn bfs_layers_count_depth() {
        let mut nfa = Nfa::new(8);
        let ids = chain(&mut nfa, b"abc", 0);
        let layers = bfs_layers(&nfa);
        assert_eq!(layers[ids[0].index()], 0);
        assert_eq!(layers[ids[1].index()], 1);
        assert_eq!(layers[ids[2].index()], 2);
    }

    #[test]
    fn reachability_and_usefulness() {
        let mut nfa = Nfa::new(8);
        let ids = chain(&mut nfa, b"ab", 3);
        let orphan = nfa.add_state(Ste::new(SymbolSet::singleton(8, 9)).report(4));
        let reach = reachable_from_starts(&nfa);
        assert!(reach[ids[0].index()] && reach[ids[1].index()]);
        assert!(!reach[orphan.index()]);
        let useful = can_reach_report(&nfa);
        assert!(useful[ids[0].index()]);
        assert!(useful[orphan.index()]); // it reports, even if unreachable
    }
}
