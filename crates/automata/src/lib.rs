//! Homogeneous NFA toolkit for in-memory automata processing.
//!
//! This crate is the foundation of the Sunder reproduction: it defines the
//! automata representation that every other crate (transformation, functional
//! simulation, hardware model, workloads) builds on.
//!
//! # Model
//!
//! Automata are *homogeneous* (ANML-style): every state — called an STE,
//! state transition element — owns the symbol set on which it activates, so
//! edges carry no labels. This is exactly the structure in-memory automata
//! accelerators implement: one memory column per STE, one-hot symbol
//! encoding down the rows, and a label-independent interconnect.
//!
//! Two generalizations support Sunder's reconfigurable processing rates:
//!
//! * **symbol width** — an [`Nfa`] ranges over `w`-bit symbols, `w ≤ 16`;
//!   byte automata use `w = 8` and Sunder's *nibble* automata use `w = 4`;
//! * **stride** — a state may carry one charset per position of a
//!   fixed-width symbol *vector* consumed each cycle (vectorized temporal
//!   striding), with reports pinned to vector offsets to stay
//!   cycle-accurate.
//!
//! # Quick start
//!
//! ```
//! use sunder_automata::regex::compile_rule_set;
//! use sunder_automata::stats::StaticStats;
//!
//! let nfa = compile_rule_set(&["ab+c", ".*evil", "[0-9]{4}"])?;
//! let stats = StaticStats::of(&nfa);
//! assert_eq!(stats.components, 3);
//! # Ok::<(), sunder_automata::AutomataError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod anml;
pub mod classes;
pub mod classic;
pub mod dfa;
pub mod error;
pub mod graph;
pub mod input;
pub mod minimize;
pub mod nfa;
pub mod partition;
pub mod regex;
pub mod stats;
pub mod symbol;

pub use classes::ByteClasses;
pub use classic::ClassicNfa;
pub use dfa::{Dfa, DfaBlowup};
pub use error::AutomataError;
pub use input::InputView;
pub use nfa::{Nfa, ReportInfo, StartKind, StateId, Ste};
pub use symbol::SymbolSet;
