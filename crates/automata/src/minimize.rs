//! State reduction for homogeneous NFAs.
//!
//! Two exact, report-preserving merges run to a joint fixpoint:
//!
//! * **Forward merge** — states with identical charset vectors, start
//!   behavior, reports, *and successor sets* are interchangeable: the merged
//!   state activates exactly when either original would, enables the same
//!   successors, and emits the same reports. This collapses shared
//!   *suffixes*.
//! * **Backward merge** — states with identical charset vectors, start
//!   behavior, reports, *and predecessor sets* are always active
//!   simultaneously, so they merge taking the union of their successors.
//!   This collapses shared *prefixes*, which is where most of the nibble
//!   transformation's redundancy lives (every pattern beginning with the
//!   same byte grows an identical high-nibble state). Requiring equal
//!   reports keeps distinct rules on distinct states: a hardware report
//!   column can only be attributed to one rule set, so merging two
//!   different reporting states would break report attribution (and make
//!   the reporting-pressure experiments unrealistically light).
//!
//! This is the minimization FlexAmata applies after bitwidth transformation
//! (paper, Section 4: "FlexAmata generates a binary NFA and minimizes the
//! states when possible") — e.g. the shared 6-bit prefix of `A` and `B` in
//! Figure 3 collapses into one state chain.

use std::collections::HashMap;

use crate::nfa::{Nfa, StateId};

/// Sentinel used in signatures to make self-loops comparable across states.
const SELF: u32 = u32::MAX;

/// Merges forward- and backward-indistinguishable states in place, to a
/// fixpoint. Returns the number of states eliminated.
pub fn merge_equivalent_states(nfa: &mut Nfa) -> usize {
    let before = nfa.num_states();
    loop {
        let f = merge_round(nfa, Direction::Forward);
        let b = merge_round(nfa, Direction::Backward);
        if f + b == 0 {
            break;
        }
    }
    before - nfa.num_states()
}

/// Runs only the forward merge to a fixpoint (for ablation studies).
pub fn merge_forward_only(nfa: &mut Nfa) -> usize {
    let before = nfa.num_states();
    while merge_round(nfa, Direction::Forward) > 0 {}
    before - nfa.num_states()
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    Forward,
    Backward,
}

/// One signature-based merge round. Returns the number of states removed.
fn merge_round(nfa: &mut Nfa, dir: Direction) -> usize {
    let n = nfa.num_states();
    if n == 0 {
        return 0;
    }
    let pred = if dir == Direction::Backward {
        nfa.predecessors()
    } else {
        Vec::new()
    };

    let mut groups: HashMap<String, Vec<StateId>> = HashMap::new();
    for (id, ste) in nfa.states() {
        let normalize = |list: &[StateId]| -> Vec<u32> {
            let mut v: Vec<u32> = list
                .iter()
                .map(|t| if *t == id { SELF } else { t.0 })
                .collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let key = match dir {
            Direction::Forward => {
                let succ = normalize(nfa.successors(id));
                let mut reports: Vec<(u32, u8)> =
                    ste.reports().iter().map(|r| (r.id, r.offset)).collect();
                reports.sort_unstable();
                format!(
                    "{:?}|{:?}|{:?}|{:?}",
                    ste.charsets(),
                    ste.start_kind(),
                    reports,
                    succ
                )
            }
            Direction::Backward => {
                let preds = normalize(&pred[id.index()]);
                let mut reports: Vec<(u32, u8)> =
                    ste.reports().iter().map(|r| (r.id, r.offset)).collect();
                reports.sort_unstable();
                format!(
                    "{:?}|{:?}|{:?}|{:?}",
                    ste.charsets(),
                    ste.start_kind(),
                    reports,
                    preds
                )
            }
        };
        groups.entry(key).or_default().push(id);
    }

    // Representative = smallest id in each group.
    let mut repr: Vec<StateId> = (0..n as u32).map(StateId).collect();
    let mut removed = 0;
    for members in groups.values() {
        if members.len() < 2 {
            continue;
        }
        let lead = *members.iter().min().expect("non-empty group");
        for &m in members {
            if m != lead {
                repr[m.index()] = lead;
                removed += 1;
            }
        }
    }
    if removed == 0 {
        return 0;
    }

    // Rebuild: keep representatives, redirect all edges through the map.
    // (In the backward direction this also unions the successor sets.)
    let keep: Vec<bool> = (0..n).map(|i| repr[i] == StateId(i as u32)).collect();
    let mut new_edges: Vec<(StateId, StateId)> = Vec::new();
    for (id, _) in nfa.states() {
        for &t in nfa.successors(id) {
            new_edges.push((repr[id.index()], repr[t.index()]));
        }
    }
    let old_to_new = nfa.retain_states(&keep);
    for (f, t) in new_edges {
        let nf = old_to_new[f.index()].expect("representative kept");
        let nt = old_to_new[t.index()].expect("representative kept");
        nfa.add_edge(nf, nt);
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfa::{StartKind, Ste};
    use crate::symbol::SymbolSet;

    fn sym(c: u8) -> SymbolSet {
        SymbolSet::singleton(8, c as u16)
    }

    #[test]
    fn merges_identical_leaves_then_parents() {
        // Two identical chains a→b; suffix merging should collapse them
        // completely into one chain.
        let mut nfa = Nfa::new(8);
        for _ in 0..2 {
            let a = nfa.add_state(Ste::new(sym(b'a')).start(StartKind::AllInput));
            let b = nfa.add_state(Ste::new(sym(b'b')).report(0));
            nfa.add_edge(a, b);
        }
        let removed = merge_equivalent_states(&mut nfa);
        assert_eq!(removed, 2);
        assert_eq!(nfa.num_states(), 2);
        assert_eq!(nfa.num_transitions(), 1);
    }

    #[test]
    fn backward_merge_collapses_prefixes() {
        // a→b, a→c where b and c have the same charset and no reports but
        // different successors: backward merge unions the successor sets.
        let mut nfa = Nfa::new(8);
        let a = nfa.add_state(Ste::new(sym(b'a')).start(StartKind::AllInput));
        let b = nfa.add_state(Ste::new(sym(b'x')));
        let c = nfa.add_state(Ste::new(sym(b'x')));
        let d = nfa.add_state(Ste::new(sym(b'd')).report(2));
        let e = nfa.add_state(Ste::new(sym(b'e')).report(3));
        nfa.add_edge(a, b);
        nfa.add_edge(a, c);
        nfa.add_edge(b, d);
        nfa.add_edge(c, e);
        let removed = merge_equivalent_states(&mut nfa);
        assert_eq!(removed, 1);
        assert_eq!(nfa.num_states(), 4);
        // The merged x-state keeps edges to both tails.
        let x = nfa
            .states()
            .find(|(_, s)| s.charset().contains(u16::from(b'x')))
            .map(|(id, _)| id)
            .unwrap();
        assert_eq!(nfa.successors(x).len(), 2);
    }

    #[test]
    fn backward_merge_never_unions_distinct_reports() {
        // Two report states with different ids and identical predecessors
        // must stay separate: a hardware report column is attributed to
        // exactly one rule.
        let mut nfa = Nfa::new(8);
        let a = nfa.add_state(Ste::new(sym(b'a')).start(StartKind::AllInput));
        let r1 = nfa.add_state(Ste::new(SymbolSet::full(8)).report(1));
        let r2 = nfa.add_state(Ste::new(SymbolSet::full(8)).report(2));
        nfa.add_edge(a, r1);
        nfa.add_edge(a, r2);
        assert_eq!(merge_equivalent_states(&mut nfa), 0);
        assert_eq!(nfa.num_states(), 3);
    }

    #[test]
    fn forward_only_does_not_merge_prefixes() {
        let mut nfa = Nfa::new(8);
        let a = nfa.add_state(Ste::new(sym(b'a')).start(StartKind::AllInput));
        let b = nfa.add_state(Ste::new(sym(b'x')));
        let c = nfa.add_state(Ste::new(sym(b'x')).report(1));
        let d = nfa.add_state(Ste::new(sym(b'd')).report(2));
        nfa.add_edge(a, b);
        nfa.add_edge(a, c);
        nfa.add_edge(b, d);
        assert_eq!(merge_forward_only(&mut nfa), 0);
        assert_eq!(nfa.num_states(), 4);
    }

    #[test]
    fn does_not_merge_different_reports_forward() {
        let mut nfa = Nfa::new(8);
        // Different predecessors too, so backward merge can't apply.
        let p = nfa.add_state(Ste::new(sym(b'p')).start(StartKind::AllInput));
        let q = nfa.add_state(Ste::new(sym(b'q')).start(StartKind::AllInput));
        let r1 = nfa.add_state(Ste::new(sym(b'a')).report(0));
        let r2 = nfa.add_state(Ste::new(sym(b'a')).report(1));
        nfa.add_edge(p, r1);
        nfa.add_edge(q, r2);
        assert_eq!(merge_equivalent_states(&mut nfa), 0);
        assert_eq!(nfa.num_states(), 4);
    }

    #[test]
    fn does_not_merge_different_start_kinds() {
        let mut nfa = Nfa::new(8);
        nfa.add_state(Ste::new(sym(b'a')).start(StartKind::AllInput).report(0));
        nfa.add_state(Ste::new(sym(b'a')).start(StartKind::StartOfData).report(0));
        assert_eq!(merge_equivalent_states(&mut nfa), 0);
    }

    #[test]
    fn merges_self_looping_twins() {
        let mut nfa = Nfa::new(8);
        let r = nfa.add_state(Ste::new(sym(b'r')).report(0));
        let u = nfa.add_state(Ste::new(sym(b'u')).start(StartKind::AllInput));
        let v = nfa.add_state(Ste::new(sym(b'u')).start(StartKind::AllInput));
        nfa.add_edge(u, u);
        nfa.add_edge(v, v);
        nfa.add_edge(u, r);
        nfa.add_edge(v, r);
        let removed = merge_equivalent_states(&mut nfa);
        assert_eq!(removed, 1);
        assert_eq!(nfa.num_states(), 2);
        let looper = nfa
            .states()
            .find(|(_, s)| !s.is_reporting())
            .map(|(id, _)| id)
            .unwrap();
        assert_eq!(nfa.successors(looper).len(), 2);
    }

    #[test]
    fn predecessors_union_after_forward_merge() {
        // p1 → x1, p2 → x2 with x1 == x2; after merge both p's point at x.
        let mut nfa = Nfa::new(8);
        let p1 = nfa.add_state(Ste::new(sym(b'p')).start(StartKind::AllInput));
        let p2 = nfa.add_state(Ste::new(sym(b'q')).start(StartKind::AllInput));
        let x1 = nfa.add_state(Ste::new(sym(b'x')).report(9));
        let x2 = nfa.add_state(Ste::new(sym(b'x')).report(9));
        nfa.add_edge(p1, x1);
        nfa.add_edge(p2, x2);
        merge_equivalent_states(&mut nfa);
        assert_eq!(nfa.num_states(), 3);
        let x = nfa.report_states()[0];
        let pred = nfa.predecessors();
        assert_eq!(pred[x.index()].len(), 2);
    }

    #[test]
    fn shared_prefix_chains_collapse() {
        // "abX" and "abY": the two a's share (no) predecessors and the two
        // b's then share the merged a — full prefix collapse.
        let mut nfa = Nfa::new(8);
        for (tail, id) in [(b'X', 0u32), (b'Y', 1u32)] {
            let a = nfa.add_state(Ste::new(sym(b'a')).start(StartKind::AllInput));
            let b = nfa.add_state(Ste::new(sym(b'b')));
            let t = nfa.add_state(Ste::new(sym(tail)).report(id));
            nfa.add_edge(a, b);
            nfa.add_edge(b, t);
        }
        merge_equivalent_states(&mut nfa);
        assert_eq!(nfa.num_states(), 4); // a, b, X, Y
    }
}
