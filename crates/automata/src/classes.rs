//! Byte-class (equivalence-class) reduction.
//!
//! Two symbols are *equivalent* for an automaton when every charset at a
//! given stride position either contains both or contains neither: the
//! automaton cannot distinguish them, so any execution artifact indexed by
//! symbol (dense accept rows, prefilter tables) only needs one entry per
//! *class*, not one per symbol. Real rule sets use a small fraction of the
//! alphabet — a dictionary workload over lowercase ASCII collapses 256
//! byte columns to a few dozen classes — which shrinks the dense engine's
//! transition rows by the same factor (better cache residency, cheaper
//! builds).
//!
//! The pass is a standard partition refinement computed per stride
//! position at compile time: start with one class holding the whole
//! alphabet and split it against every state's charset. Class ids are
//! assigned in first-symbol order, so the lowest symbol of each class is
//! its representative.

use crate::nfa::Nfa;
use crate::symbol::SymbolSet;

/// The symbol-equivalence classes of an automaton, one partition per
/// stride position.
///
/// # Examples
///
/// ```
/// use sunder_automata::classes::ByteClasses;
/// use sunder_automata::regex::compile_regex;
///
/// // "ab" distinguishes 'a', 'b', and everything-else: three classes.
/// let nfa = compile_regex("ab", 0)?;
/// let classes = ByteClasses::of(&nfa);
/// assert_eq!(classes.count(0), 3);
/// assert_eq!(classes.class_of(0, b'a' as u16), classes.class_of(0, b'a' as u16));
/// assert_ne!(classes.class_of(0, b'a' as u16), classes.class_of(0, b'b' as u16));
/// assert_eq!(classes.class_of(0, b'x' as u16), classes.class_of(0, b'y' as u16));
/// # Ok::<(), sunder_automata::AutomataError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ByteClasses {
    /// `stride × alphabet` class ids, row-major by position.
    class_of: Vec<u16>,
    /// Number of classes at each position.
    counts: Vec<u16>,
    alphabet: usize,
}

impl ByteClasses {
    /// Computes the equivalence classes of `nfa`, refining one partition
    /// per stride position against every state's charset at that
    /// position.
    pub fn of(nfa: &Nfa) -> ByteClasses {
        let alphabet = 1usize << nfa.symbol_bits();
        let stride = nfa.stride();
        let mut class_of = vec![0u16; stride * alphabet];
        let mut counts = Vec::with_capacity(stride);
        for pos in 0..stride {
            let row = &mut class_of[pos * alphabet..(pos + 1) * alphabet];
            let mut count: u16 = 1;
            for (_, ste) in nfa.states() {
                if count as usize == alphabet {
                    break; // fully split; no further refinement possible
                }
                refine(row, &mut count, &ste.charsets()[pos]);
            }
            counts.push(count);
        }
        ByteClasses {
            class_of,
            counts,
            alphabet,
        }
    }

    /// Alphabet size the classes were computed over.
    pub fn alphabet(&self) -> usize {
        self.alphabet
    }

    /// Number of stride positions.
    pub fn stride(&self) -> usize {
        self.counts.len()
    }

    /// Number of distinct classes at stride position `pos`.
    pub fn count(&self, pos: usize) -> usize {
        usize::from(self.counts[pos])
    }

    /// Total classes summed over all stride positions — the number of
    /// symbol-indexed table rows an execution artifact needs.
    pub fn total(&self) -> usize {
        self.counts.iter().map(|&c| usize::from(c)).sum()
    }

    /// The class of `sym` at stride position `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `sym` is outside the alphabet or `pos` outside the
    /// stride.
    pub fn class_of(&self, pos: usize, sym: u16) -> u16 {
        self.class_of[pos * self.alphabet + sym as usize]
    }

    /// The full symbol→class row for position `pos` (`alphabet` entries).
    pub fn row(&self, pos: usize) -> &[u16] {
        &self.class_of[pos * self.alphabet..(pos + 1) * self.alphabet]
    }

    /// The representative (lowest) symbol of each class at `pos`, in
    /// class-id order.
    pub fn representatives(&self, pos: usize) -> Vec<u16> {
        let mut reps = vec![u16::MAX; self.count(pos)];
        for (sym, &cls) in self.row(pos).iter().enumerate() {
            let slot = &mut reps[cls as usize];
            if *slot == u16::MAX {
                *slot = sym as u16;
            }
        }
        reps
    }
}

/// Splits every class in `row` against membership in `cs`, renumbering
/// classes in first-occurrence order.
fn refine(row: &mut [u16], count: &mut u16, cs: &SymbolSet) {
    if cs.is_empty() || cs.is_full() {
        return; // cannot split anything
    }
    // For each old class, the new id of its outside/inside halves.
    let mut mapped = vec![[u16::MAX; 2]; usize::from(*count)];
    let mut next: u16 = 0;
    for (sym, slot) in row.iter_mut().enumerate() {
        let inside = usize::from(cs.contains(sym as u16));
        let entry = &mut mapped[usize::from(*slot)][inside];
        if *entry == u16::MAX {
            *entry = next;
            next += 1;
        }
        *slot = *entry;
    }
    *count = next;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfa::{StartKind, Ste};
    use crate::regex::{compile_regex, compile_rule_set};

    #[test]
    fn empty_automaton_has_one_class() {
        let nfa = Nfa::new(8);
        let classes = ByteClasses::of(&nfa);
        assert_eq!(classes.count(0), 1);
        assert_eq!(classes.total(), 1);
        assert_eq!(classes.class_of(0, 0), classes.class_of(0, 255));
    }

    #[test]
    fn full_charsets_do_not_split() {
        let mut nfa = Nfa::new(4);
        nfa.add_state(Ste::new(SymbolSet::full(4)).start(StartKind::AllInput));
        let classes = ByteClasses::of(&nfa);
        assert_eq!(classes.count(0), 1);
    }

    #[test]
    fn literal_splits_into_letters_and_rest() {
        let nfa = compile_rule_set(&["ab", "ac"]).unwrap();
        let classes = ByteClasses::of(&nfa);
        // 'a', 'b', 'c', other: exactly four classes.
        assert_eq!(classes.count(0), 4);
        let a = classes.class_of(0, b'a' as u16);
        let b = classes.class_of(0, b'b' as u16);
        let c = classes.class_of(0, b'c' as u16);
        let x = classes.class_of(0, b'x' as u16);
        let z = classes.class_of(0, b'z' as u16);
        assert_eq!(x, z);
        assert!(a != b && b != c && a != c && a != x && b != x && c != x);
    }

    #[test]
    fn classes_respect_every_charset() {
        // Exhaustive invariant: two symbols share a class iff every
        // charset agrees on them.
        let nfa = compile_rule_set(&["a[0-9]+b", ".*xy", "[a-f]{2}"]).unwrap();
        let classes = ByteClasses::of(&nfa);
        let charsets: Vec<_> = nfa.states().map(|(_, s)| s.charsets()[0].clone()).collect();
        for s1 in 0..256u16 {
            for s2 in (s1 + 1)..256u16 {
                let agree = charsets.iter().all(|cs| cs.contains(s1) == cs.contains(s2));
                let same = classes.class_of(0, s1) == classes.class_of(0, s2);
                assert_eq!(same, agree, "symbols {s1} and {s2}");
            }
        }
    }

    #[test]
    fn per_position_partitions_are_independent() {
        let mut nfa = Nfa::with_stride(4, 2);
        nfa.add_state(
            Ste::with_charsets(vec![SymbolSet::singleton(4, 1), SymbolSet::full(4)])
                .start(StartKind::AllInput),
        );
        let classes = ByteClasses::of(&nfa);
        assert_eq!(classes.stride(), 2);
        assert_eq!(classes.count(0), 2, "position 0 splits on symbol 1");
        assert_eq!(classes.count(1), 1, "position 1 is don't-care");
        assert_eq!(classes.total(), 3);
    }

    #[test]
    fn representatives_are_lowest_members() {
        let nfa = compile_regex("b", 0).unwrap();
        let classes = ByteClasses::of(&nfa);
        let reps = classes.representatives(0);
        assert_eq!(reps.len(), 2);
        // Class ids are assigned in first-symbol order: symbol 0 (not 'b')
        // seeds class 0, 'b' seeds class 1.
        assert_eq!(reps[0], 0);
        assert_eq!(reps[1], b'b' as u16);
        for (sym, &cls) in classes.row(0).iter().enumerate() {
            assert!(reps[cls as usize] <= sym as u16);
        }
    }

    #[test]
    fn row_covers_the_alphabet() {
        let nfa = compile_regex("[0-5]", 0).unwrap();
        let classes = ByteClasses::of(&nfa);
        assert_eq!(classes.row(0).len(), 256);
        assert_eq!(classes.alphabet(), 256);
        for &cls in classes.row(0) {
            assert!(usize::from(cls) < classes.count(0));
        }
    }
}
