//! The observability smoke: one daemon with the obs listener and flight
//! recorder on, real traffic (including an injected panic), a concurrent
//! scraper, and a drain with a held-open session. Asserts the PR's
//! acceptance criteria end to end:
//!
//! * every `/metrics` scrape during traffic parses and counters are
//!   monotone across scrapes;
//! * `/statusz` carries sessions, per-tenant latency quantiles, and SLO
//!   counters once traffic has flowed;
//! * the injected panic produces a schema-valid flight-recorder
//!   artifact attributed to the right tenant;
//! * `/readyz` answers 200 before drain and 503 while draining.
//!
//! This test owns the process-global telemetry level; keep it the only
//! `#[test]` in this binary.

use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sunder_automata::regex::compile_rule_set;
use sunder_oracle::PipelineConfig;
use sunder_resilience::FaultPlan;
use sunder_shard::chaos::{run_chaos, ChaosOptions, SessionOutcome};
use sunder_shard::frame::{decode_server, read_raw, ClientFrame, ServerFrame, ERR_PANIC};
use sunder_shard::{http_get, validate_flight, MatchServer, ServerConfig, ShardSpec};
use sunder_sim::EngineKind;
use sunder_telemetry::exposition::sample_value;
use sunder_telemetry::json::{self, Json};

const SESSIONS: usize = 8;

#[test]
fn obs_smoke_scrapes_flight_artifact_and_readiness() {
    sunder_telemetry::init(sunder_telemetry::Config::metrics());

    let flight_dir = std::env::temp_dir().join(format!("sunder-obs-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&flight_dir);

    let nfa = compile_rule_set(&["ab+c", "[0-9]{3}"]).unwrap();
    let cfg = ServerConfig {
        config: PipelineConfig::Nibble,
        spec: ShardSpec::MaxShards(4),
        engine: EngineKind::Adaptive,
        max_sessions: SESSIONS + 4,
        // Tenant s2's first chunk panics inside the worker.
        fault_plan: FaultPlan::from_text("panic 2\n").unwrap(),
        obs_addr: Some("127.0.0.1:0".to_string()),
        flight_recorder_dir: Some(flight_dir.clone()),
        // Short deadline: the held-open session below is forced, and the
        // test shouldn't wait seconds for it.
        drain_deadline: Duration::from_millis(500),
        ..ServerConfig::default()
    };
    let mut server = MatchServer::start("127.0.0.1:0", &nfa, cfg).unwrap();
    let obs = server.obs_addr().expect("obs listener running");
    let timeout = Duration::from_secs(5);

    let (status, body) = http_get(obs, "/readyz", timeout).unwrap();
    assert_eq!(status, 200, "ready before traffic: {body}");

    // Concurrent scraper: /metrics at ~20 Hz for the whole traffic
    // phase. Every response must parse, and serve_chunks_total must
    // never move backwards between scrapes.
    let stop = Arc::new(AtomicBool::new(false));
    let scraper = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut last_chunks = 0.0;
            let mut scrapes = 0usize;
            // Traffic can outrun the scrape interval; always take a few
            // scrapes so monotonicity is exercised across snapshots.
            while !stop.load(Ordering::Acquire) || scrapes < 3 {
                let (status, body) = http_get(obs, "/metrics", timeout).expect("scrape");
                assert_eq!(status, 200);
                let families = sunder_telemetry::parse_prometheus(&body)
                    .unwrap_or_else(|e| panic!("scrape {scrapes} unparseable: {e}\n{body}"));
                let chunks = sample_value(&families, "serve_chunks_total", &[]).unwrap_or(0.0);
                assert!(
                    chunks >= last_chunks,
                    "serve_chunks_total went backwards: {last_chunks} -> {chunks}"
                );
                last_chunks = chunks;
                scrapes += 1;
                std::thread::sleep(Duration::from_millis(50));
            }
            (scrapes, last_chunks)
        })
    };

    // Traffic: SESSIONS streaming sessions; s2 dies to the injected
    // panic, everyone else completes.
    let inputs: Vec<Vec<u8>> = (0..SESSIONS)
        .map(|i| format!("abbc {i:03} zz abc ").repeat(64).into_bytes())
        .collect();
    let opts = ChaosOptions {
        chunk_size: 64,
        reload_anml: None,
        read_timeout: timeout,
    };
    let outcomes = run_chaos(server.local_addr(), &inputs, &FaultPlan::none(), &opts);
    for (i, outcome) in outcomes.iter().enumerate() {
        match outcome {
            SessionOutcome::Completed { .. } => assert_ne!(i, 2, "s2 should have panicked"),
            SessionOutcome::Errored { code, .. } => {
                assert_eq!((i, *code), (2, ERR_PANIC), "unplanned error on s{i}");
            }
            other => panic!("s{i}: unexpected outcome {other:?}"),
        }
    }

    stop.store(true, Ordering::Release);
    let (scrapes, chunks_seen) = scraper.join().expect("scraper panicked");
    assert!(scrapes >= 2, "scraper barely ran: {scrapes}");
    assert!(chunks_seen > 0.0, "scrapes never observed chunk traffic");

    // The panic left a schema-valid flight artifact for tenant s2.
    let artifacts: Vec<_> = std::fs::read_dir(&flight_dir)
        .expect("flight dir exists")
        .map(|e| e.unwrap().path())
        .collect();
    let panic_artifact = artifacts
        .iter()
        .find(|p| {
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            name.starts_with("flight-s2-") && name.ends_with("-panic.jsonl")
        })
        .unwrap_or_else(|| panic!("no s2 panic artifact among {artifacts:?}"));
    let text = std::fs::read_to_string(panic_artifact).unwrap();
    let summary = validate_flight(&text).expect("flight artifact validates");
    assert_eq!(summary.tenant, "s2");
    assert_eq!(summary.reason, "panic");
    assert_eq!(summary.epoch, 1);
    assert!(summary.events > 0, "flight ring was empty");

    // /statusz reflects the traffic: sessions started, per-tenant
    // latency quantiles present for a surviving tenant.
    let (status, body) = http_get(obs, "/statusz", timeout).unwrap();
    assert_eq!(status, 200);
    let doc = json::parse(&body).expect("statusz is JSON");
    let started = doc
        .get("sessions")
        .and_then(|s| s.get("started"))
        .and_then(Json::as_u64)
        .unwrap();
    assert!(started >= SESSIONS as u64, "started {started}");
    let latency = doc.get("latency_us").expect("latency block");
    assert!(
        latency.get("s0").and_then(|t| t.get("p50_us")).is_some(),
        "no latency quantiles for s0: {body}"
    );

    // Hold a session open, then drain: /readyz must flip to 503 while
    // the drain window runs, and the held session gets forced.
    let mut held = TcpStream::connect(server.local_addr()).unwrap();
    ClientFrame::Hello {
        version: sunder_shard::PROTOCOL_VERSION,
        tenant: "holdout".to_string(),
    }
    .write_to(&mut held)
    .unwrap();
    held.flush().unwrap();
    held.set_read_timeout(Some(timeout)).unwrap();
    let ack = read_raw(&mut held, 1 << 20).unwrap().expect("hello ack");
    assert!(matches!(
        decode_server(&ack).unwrap(),
        ServerFrame::HelloAck { .. }
    ));

    let poller = std::thread::spawn(move || {
        let mut saw_draining = false;
        for _ in 0..300 {
            match http_get(obs, "/readyz", Duration::from_millis(500)) {
                Ok((503, body)) if body.contains("draining") => {
                    saw_draining = true;
                    break;
                }
                Ok(_) => {}
                // Listener already gone: drain finished before we saw it.
                Err(_) => break,
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        saw_draining
    });

    let report = server.drain();
    assert!(
        poller.join().expect("poller panicked"),
        "/readyz never reported draining"
    );
    assert_eq!(report.forced, 1, "the held-open session gets forced");
    drop(held);

    let _ = std::fs::remove_dir_all(&flight_dir);
}
