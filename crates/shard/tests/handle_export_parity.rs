//! Regression gate for the labeled-handle telemetry refactor: routing
//! the scheduler's queue-depth/steal counters and the pipeline cache's
//! hit/miss counters through pre-interned handles must not change what
//! a run exports. The handle cells fold into the same registry
//! namespace, so totals in a snapshot have to equal the service's own
//! atomic counters exactly.
//!
//! This test owns the process-global telemetry level, so it must stay
//! the only `#[test]` in this binary.

use sunder_automata::regex::compile_rule_set;
use sunder_oracle::PipelineConfig;
use sunder_shard::{BatchOptions, BatchService, ShardSpec};
use sunder_sim::EngineKind;
use sunder_telemetry::{set_level, Level, MetricValue};

fn counter_total(snap: &sunder_telemetry::MetricsSnapshot, name: &str) -> u64 {
    snap.entries
        .iter()
        .filter(|e| e.name == name)
        .map(|e| match &e.value {
            MetricValue::Counter(c) => *c,
            other => panic!("{name} should be a counter, got {other:?}"),
        })
        .sum()
}

#[test]
fn handle_routed_counters_match_service_totals() {
    set_level(Level::Metrics);
    sunder_telemetry::metrics::reset();

    let service = BatchService::new(ShardSpec::MaxShards(4), EngineKind::Adaptive);
    let nfa = compile_rule_set(&["ab+c", "[0-9]{3}", ".*xyz"]).unwrap();
    let streams: Vec<Vec<u8>> = (0..12)
        .map(|i| {
            let mut s = format!("abbc {i:03} xyz ").into_bytes();
            s.extend(std::iter::repeat_n(b'z', 2048 + i * 101));
            s
        })
        .collect();
    let opts = BatchOptions {
        workers: 4,
        serial_cutoff: 0, // force the multi-worker path for small inputs
        ..BatchOptions::default()
    };

    let mut steals_reported = 0;
    for config in [PipelineConfig::Nibble, PipelineConfig::Stride2] {
        for round in 0..3 {
            let report = service.submit(&nfa, config, &streams, &opts).unwrap();
            assert_eq!(report.ok_count(), streams.len(), "{config:?} round {round}");
            steals_reported += report.steals;
        }
    }

    let snap = sunder_telemetry::snapshot();

    // Cache counters: the handle-exported totals equal the cache's own
    // atomics — 2 misses (one compile per config), 4 hits.
    assert_eq!(service.cache().misses(), 2);
    assert_eq!(service.cache().hits(), 4);
    assert_eq!(
        counter_total(&snap, "pipeline_cache_hits_total"),
        service.cache().hits()
    );
    assert_eq!(
        counter_total(&snap, "pipeline_cache_misses_total"),
        service.cache().misses()
    );
    // Labels survived the refactor: per-config series, not one blob.
    for config in [PipelineConfig::Nibble, PipelineConfig::Stride2] {
        let labeled: Vec<_> = snap
            .entries
            .iter()
            .filter(|e| {
                e.name == "pipeline_cache_misses_total"
                    && e.labels.len() == 1
                    && e.labels[0].0 == "config"
                    && e.labels[0].1 == config.name()
            })
            .collect();
        assert_eq!(labeled.len(), 1, "{config:?} miss series");
    }

    // Scheduler counters: steals exported via handles equal the sum of
    // the per-batch reports.
    assert_eq!(
        counter_total(&snap, "scheduler_steals_total"),
        steals_reported
    );

    // Queue-depth gauges exist per worker and every queue ended drained.
    let depths: Vec<_> = snap
        .entries
        .iter()
        .filter(|e| e.name == "scheduler_queue_depth")
        .collect();
    assert_eq!(depths.len(), 4, "one gauge per worker");
    for d in &depths {
        match &d.value {
            MetricValue::Gauge(g) => assert_eq!(*g, 0.0, "{:?}", d.labels),
            other => panic!("queue depth should be a gauge, got {other:?}"),
        }
    }

    set_level(Level::Off);
}
