//! Concurrency stress for the work-stealing stream scheduler: a seeded
//! 64-stream × 8-worker batch with a fault plan panicking exactly one
//! shard of one stream. The panic must be attributed to that shard in
//! its `JobOutcome`, and every surviving stream's merged trace must be
//! byte-identical to a clean run of the same batch.

use sunder_automata::regex::compile_rule_set;
use sunder_oracle::PipelineConfig;
use sunder_resilience::{Fault, FaultKind, FaultPlan, JobOutcome};
use sunder_shard::{run_batch, BatchOptions, CompiledPipeline, ShardSpec};
use sunder_sim::EngineKind;

const STREAMS: usize = 64;
const WORKERS: usize = 8;
const VICTIM_STREAM: usize = 17;

fn pipeline() -> CompiledPipeline {
    // Six independent rule components so the partitioner has real
    // packing work and the victim shard holds only part of the automaton.
    let nfa = compile_rule_set(&[
        "ab+c",
        ".*net",
        "[0-9]{3}",
        "xy+z",
        "GET /[a-z]+",
        "err(or)?",
    ])
    .unwrap();
    CompiledPipeline::compile(
        &nfa,
        PipelineConfig::Nibble,
        ShardSpec::MaxShards(4),
        EngineKind::Adaptive,
    )
    .unwrap()
}

fn streams() -> Vec<Vec<u8>> {
    (0..STREAMS)
        .map(|i| {
            format!(
                "s{i}: GET /index abbbc {i:03} xyyyz error 555net {}",
                "ab".repeat(i % 7)
            )
            .into_bytes()
        })
        .collect()
}

#[test]
fn panicking_shard_is_attributed_and_survivors_match_clean_run() {
    let p = pipeline();
    let shards = p.num_shards();
    assert!(shards >= 2, "need a multi-shard plan, got {shards}");
    let victim_shard = 1;
    let inputs = streams();

    let clean = run_batch(
        &p,
        &inputs,
        &BatchOptions::with_workers(WORKERS).without_serial_cutoff(),
    );
    assert_eq!(clean.ok_count(), STREAMS, "clean run must fully complete");

    let faulty_opts = BatchOptions {
        workers: WORKERS,
        plan: FaultPlan::new(
            0xC0FFEE,
            vec![Fault {
                item: VICTIM_STREAM * shards + victim_shard,
                kind: FaultKind::Panic,
            }],
        ),
        deadline: None,
        serial_cutoff: 0,
    };
    let faulty = run_batch(&p, &inputs, &faulty_opts);

    // Exactly one stream lost, with the panic attributed to the right
    // shard and carrying the scheduler's (stream, shard) context.
    assert_eq!(faulty.ok_count(), STREAMS - 1);
    let victim = &faulty.streams[VICTIM_STREAM];
    assert!(!victim.ok(), "victim stream must not produce a merge");
    assert_eq!(victim.failed_shards(), vec![(victim_shard, "panicked")]);
    match &victim.shard_runs[victim_shard].outcome {
        JobOutcome::Panicked { message } => {
            assert!(
                message.contains(&format!("stream {VICTIM_STREAM}, shard {victim_shard}")),
                "panic message must attribute the fault site: {message}"
            );
        }
        other => panic!("expected Panicked, got {}", other.status()),
    }
    // The victim's other shards still completed under isolation.
    for run in &victim.shard_runs {
        if run.shard != victim_shard {
            assert!(
                run.outcome.value().is_some(),
                "shard {} of the victim stream must survive the panic",
                run.shard
            );
        }
    }

    // Byte-identical survivors: the panic must not perturb any other
    // stream, regardless of how the steal schedule shifted around it.
    for (c, f) in clean.streams.iter().zip(&faulty.streams) {
        assert_eq!(c.stream, f.stream);
        if f.stream != VICTIM_STREAM {
            assert_eq!(
                c.merged, f.merged,
                "surviving stream {} diverged from the clean run",
                f.stream
            );
        }
    }
}

#[test]
fn results_are_schedule_independent_across_worker_counts() {
    let p = pipeline();
    let inputs = streams();
    let sequential = run_batch(&p, &inputs, &BatchOptions::with_workers(1));
    assert_eq!(sequential.steals, 0, "a single worker has nobody to rob");
    for workers in [2, 4, 8] {
        let parallel = run_batch(
            &p,
            &inputs,
            &BatchOptions::with_workers(workers).without_serial_cutoff(),
        );
        assert_eq!(parallel.ok_count(), STREAMS);
        for (a, b) in sequential.streams.iter().zip(&parallel.streams) {
            assert_eq!(
                a.merged, b.merged,
                "stream {} differs between 1 and {workers} workers",
                a.stream
            );
        }
    }
}
