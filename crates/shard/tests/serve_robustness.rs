//! Robustness envelope of the streaming match service, over a real
//! socket: protocol hardening, backpressure, admission control, hot
//! reload, panic isolation, per-chunk deadlines, and graceful drain.
//!
//! These tests drive `MatchServer` with hand-rolled clients (not the
//! chaos driver) so each property is exercised in isolation and the
//! assertions can inspect exact frames.

use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use sunder_automata::regex::compile_rule_set;
use sunder_automata::{anml, Nfa};
use sunder_oracle::PipelineConfig;
use sunder_resilience::FaultPlan;
use sunder_shard::frame::{
    decode_server, read_raw, ClientFrame, ServerFrame, ERR_BUSY, ERR_DEADLINE, ERR_PANIC,
    ERR_PROTOCOL, ERR_QUOTA, ERR_VERSION, PROTOCOL_VERSION,
};
use sunder_shard::{expected_reports, CompiledPipeline, MatchServer, ServerConfig, ShardSpec};
use sunder_sim::EngineKind;

fn rules() -> Nfa {
    compile_rule_set(&["ab+c", "[0-9]{3}", ".*net"]).unwrap()
}

const INPUT: &[u8] = b"zab-bc 192net abbbc 007xyq xy123net q";

fn config() -> ServerConfig {
    ServerConfig {
        config: PipelineConfig::Stride2,
        spec: ShardSpec::MaxShards(4),
        engine: EngineKind::Adaptive,
        drain_deadline: Duration::from_secs(2),
        ..ServerConfig::default()
    }
}

fn reference(nfa: &Nfa, cfg: &ServerConfig, input: &[u8]) -> Vec<(u64, u32)> {
    let pipeline =
        Arc::new(CompiledPipeline::compile(nfa, cfg.config, cfg.spec, cfg.engine).unwrap());
    expected_reports(&pipeline, input).unwrap()
}

/// A blocking test client speaking the frame protocol lock-step.
struct Client {
    sock: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(server: &MatchServer, tenant: &str) -> Client {
        let sock = TcpStream::connect(server.local_addr()).unwrap();
        sock.set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let reader = BufReader::new(sock.try_clone().unwrap());
        let mut c = Client { sock, reader };
        c.send(&ClientFrame::Hello {
            version: PROTOCOL_VERSION,
            tenant: tenant.to_string(),
        });
        c
    }

    fn send(&mut self, frame: &ClientFrame) {
        let mut w = BufWriter::new(&self.sock);
        frame.write_to(&mut w).unwrap();
        w.flush().unwrap();
    }

    fn send_raw(&mut self, bytes: &[u8]) {
        let mut w = BufWriter::new(&self.sock);
        w.write_all(bytes).unwrap();
        w.flush().unwrap();
    }

    fn recv(&mut self) -> ServerFrame {
        let body = read_raw(&mut self.reader, u32::MAX)
            .expect("read reply")
            .expect("server closed unexpectedly");
        decode_server(&body).expect("decode reply")
    }

    fn expect_ack(&mut self) -> u64 {
        match self.recv() {
            ServerFrame::HelloAck { epoch, .. } => epoch,
            other => panic!("expected HelloAck, got {other:?}"),
        }
    }

    /// Streams `input` in `chunk` byte pieces, returns all reports.
    fn stream(&mut self, input: &[u8], chunk: usize) -> (Vec<(u64, u32)>, u64) {
        let mut reports = Vec::new();
        for piece in input.chunks(chunk) {
            self.send(&ClientFrame::Chunk(piece.to_vec()));
            match self.recv() {
                ServerFrame::Reports(r) => reports.extend(r),
                other => panic!("expected Reports, got {other:?}"),
            }
        }
        self.send(&ClientFrame::Finish);
        match self.recv() {
            ServerFrame::Reports(r) => reports.extend(r),
            other => panic!("expected tail Reports, got {other:?}"),
        }
        match self.recv() {
            ServerFrame::Done { epoch, .. } => (reports, epoch),
            other => panic!("expected Done, got {other:?}"),
        }
    }
}

#[test]
fn wire_session_is_byte_identical_to_whole_input_run() {
    let nfa = rules();
    let cfg = config();
    let expected = reference(&nfa, &cfg, INPUT);
    assert!(!expected.is_empty());
    let mut server = MatchServer::start("127.0.0.1:0", &nfa, cfg).unwrap();
    for chunk in [1usize, 3, 64] {
        let mut client = Client::connect(&server, "t0");
        assert_eq!(client.expect_ack(), 1);
        let (reports, epoch) = client.stream(INPUT, chunk);
        assert_eq!(reports, expected, "chunk={chunk}");
        assert_eq!(epoch, 1);
    }
    let report = server.drain();
    assert_eq!(report.forced, 0);
}

#[test]
fn malformed_frames_get_typed_errors_and_the_server_survives() {
    let nfa = rules();
    let cfg = config();
    let expected = reference(&nfa, &cfg, INPUT);
    let mut server = MatchServer::start("127.0.0.1:0", &nfa, cfg).unwrap();

    // Zero-length frame.
    let mut c = Client::connect(&server, "t0");
    c.expect_ack();
    c.send_raw(&0u32.to_be_bytes());
    assert!(matches!(c.recv(), ServerFrame::Error { code, .. } if code == ERR_PROTOCOL));

    // Oversized declared length — rejected from the prefix alone.
    let mut c = Client::connect(&server, "t1");
    c.expect_ack();
    c.send_raw(&u32::MAX.to_be_bytes());
    assert!(matches!(c.recv(), ServerFrame::Error { code, .. } if code == ERR_PROTOCOL));

    // Unknown opcode.
    let mut c = Client::connect(&server, "t2");
    c.expect_ack();
    c.send_raw(&1u32.to_be_bytes());
    c.send_raw(&[0x7F]);
    assert!(matches!(c.recv(), ServerFrame::Error { code, .. } if code == ERR_PROTOCOL));

    // Truncated body (half-close makes the EOF visible).
    let mut c = Client::connect(&server, "t3");
    c.expect_ack();
    c.send_raw(&16u32.to_be_bytes());
    c.send_raw(&[0x02, 1, 2]);
    c.sock.shutdown(Shutdown::Write).unwrap();
    assert!(matches!(c.recv(), ServerFrame::Error { code, .. } if code == ERR_PROTOCOL));

    // Unknown protocol version in Hello.
    let sock = TcpStream::connect(server.local_addr()).unwrap();
    sock.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(sock.try_clone().unwrap());
    {
        let mut w = BufWriter::new(&sock);
        ClientFrame::Hello {
            version: PROTOCOL_VERSION + 7,
            tenant: "vx".into(),
        }
        .write_to(&mut w)
        .unwrap();
        w.flush().unwrap();
    }
    let body = read_raw(&mut reader, u32::MAX).unwrap().unwrap();
    assert!(
        matches!(decode_server(&body).unwrap(), ServerFrame::Error { code, .. } if code == ERR_VERSION)
    );

    // Chunk before Hello is a protocol error too.
    let sock = TcpStream::connect(server.local_addr()).unwrap();
    sock.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(sock.try_clone().unwrap());
    {
        let mut w = BufWriter::new(&sock);
        ClientFrame::Chunk(b"early".to_vec())
            .write_to(&mut w)
            .unwrap();
        w.flush().unwrap();
    }
    let body = read_raw(&mut reader, u32::MAX).unwrap().unwrap();
    assert!(
        matches!(decode_server(&body).unwrap(), ServerFrame::Error { code, .. } if code == ERR_PROTOCOL)
    );

    // After all that abuse, a clean session still works end to end.
    let mut c = Client::connect(&server, "clean");
    c.expect_ack();
    let (reports, _) = c.stream(INPUT, 5);
    assert_eq!(reports, expected);
    server.drain();
}

#[test]
fn pipelined_chunks_respect_the_bounded_queue_without_deadlock() {
    let nfa = rules();
    let cfg = ServerConfig {
        queue_depth: 2,
        ..config()
    };
    let expected = reference(&nfa, &cfg, &INPUT.repeat(16));
    let mut server = MatchServer::start("127.0.0.1:0", &nfa, cfg).unwrap();
    let mut c = Client::connect(&server, "flood");
    c.expect_ack();
    // Fire every chunk before reading a single reply: the reader thread
    // must block on the depth-2 queue (backpressure), not drop or grow.
    let input = INPUT.repeat(16);
    let chunks: Vec<&[u8]> = input.chunks(7).collect();
    for chunk in &chunks {
        c.send(&ClientFrame::Chunk(chunk.to_vec()));
    }
    c.send(&ClientFrame::Finish);
    let mut reports = Vec::new();
    for _ in 0..chunks.len() + 1 {
        match c.recv() {
            ServerFrame::Reports(r) => reports.extend(r),
            other => panic!("expected Reports, got {other:?}"),
        }
    }
    assert!(matches!(c.recv(), ServerFrame::Done { .. }));
    assert_eq!(reports, expected);
    server.drain();
}

#[test]
fn admission_control_enforces_global_and_tenant_caps() {
    let nfa = rules();
    let cfg = ServerConfig {
        max_sessions: 2,
        per_tenant_sessions: 1,
        ..config()
    };
    let mut server = MatchServer::start("127.0.0.1:0", &nfa, cfg).unwrap();

    let mut a = Client::connect(&server, "alpha1");
    a.expect_ack();
    // Same tenant again: quota.
    let mut a2 = Client::connect(&server, "alpha1");
    assert!(matches!(a2.recv(), ServerFrame::Error { code, .. } if code == ERR_QUOTA));
    // Different tenant: admitted (2nd global slot).
    let mut b = Client::connect(&server, "beta2");
    b.expect_ack();
    // Global cap: third concurrent connection is refused outright.
    let sock = TcpStream::connect(server.local_addr()).unwrap();
    sock.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(sock.try_clone().unwrap());
    let body = read_raw(&mut reader, u32::MAX).unwrap().unwrap();
    assert!(
        matches!(decode_server(&body).unwrap(), ServerFrame::Error { code, .. } if code == ERR_BUSY)
    );
    // Releasing a slot re-admits.
    a.stream(INPUT, 9);
    drop(a);
    // The slot frees asynchronously; retry briefly.
    let mut readmitted = false;
    for _ in 0..100 {
        let mut c = Client::connect(&server, "alpha1");
        match c.recv() {
            ServerFrame::HelloAck { .. } => {
                readmitted = true;
                break;
            }
            ServerFrame::Error { .. } => std::thread::sleep(Duration::from_millis(10)),
            other => panic!("unexpected {other:?}"),
        }
    }
    assert!(readmitted, "slot must free after a session completes");
    server.drain();
}

#[test]
fn hot_reload_swaps_epoch_atomically_while_sessions_finish_on_their_pin() {
    let nfa = rules();
    let cfg = config();
    let expected_old = reference(&nfa, &cfg, INPUT);
    let nfa2 = compile_rule_set(&["xy+", "[a-c]{2}"]).unwrap();
    let expected_new = reference(&nfa2, &cfg, INPUT);
    assert_ne!(expected_old, expected_new, "rule sets must differ");
    let mut server = MatchServer::start("127.0.0.1:0", &nfa, cfg).unwrap();

    // Session A opens on epoch 1 and feeds half its input.
    let mut a = Client::connect(&server, "old");
    assert_eq!(a.expect_ack(), 1);
    let mut a_reports = Vec::new();
    let (head, tail) = INPUT.split_at(INPUT.len() / 2);
    a.send(&ClientFrame::Chunk(head.to_vec()));
    match a.recv() {
        ServerFrame::Reports(r) => a_reports.extend(r),
        other => panic!("unexpected {other:?}"),
    }

    // Reload from a second connection, mid-flight.
    let mut r = Client::connect(&server, "reloader");
    r.expect_ack();
    r.send(&ClientFrame::Reload(anml::serialize(&nfa2)));
    let new_epoch = match r.recv() {
        ServerFrame::Reloaded { epoch } => epoch,
        other => panic!("unexpected {other:?}"),
    };
    assert_eq!(new_epoch, 2);
    assert_eq!(server.epoch(), 2);

    // A finishes on its pinned epoch-1 pipeline, byte-identical to the
    // old rule set over the whole input.
    a.send(&ClientFrame::Chunk(tail.to_vec()));
    match a.recv() {
        ServerFrame::Reports(rep) => a_reports.extend(rep),
        other => panic!("unexpected {other:?}"),
    }
    a.send(&ClientFrame::Finish);
    match a.recv() {
        ServerFrame::Reports(rep) => a_reports.extend(rep),
        other => panic!("unexpected {other:?}"),
    }
    match a.recv() {
        ServerFrame::Done { epoch, .. } => assert_eq!(epoch, 1, "A pinned epoch 1"),
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(a_reports, expected_old);

    // A session opened after the reload pins epoch 2 and sees the new
    // rule set.
    let mut b = Client::connect(&server, "new");
    assert_eq!(b.expect_ack(), 2);
    let (b_reports, b_epoch) = b.stream(INPUT, 6);
    assert_eq!(b_epoch, 2);
    assert_eq!(b_reports, expected_new);
    server.drain();
}

#[test]
fn injected_panic_is_isolated_to_its_session() {
    let nfa = rules();
    let plan = FaultPlan::from_text("panic 7\n").unwrap();
    let cfg = ServerConfig {
        fault_plan: plan,
        ..config()
    };
    let expected = reference(&nfa, &cfg, INPUT);
    let mut server = MatchServer::start("127.0.0.1:0", &nfa, cfg).unwrap();

    // Tenant s7 trips the injected panic on its first chunk.
    let mut victim = Client::connect(&server, "s7");
    victim.expect_ack();
    victim.send(&ClientFrame::Chunk(INPUT.to_vec()));
    assert!(matches!(victim.recv(), ServerFrame::Error { code, .. } if code == ERR_PANIC));

    // A concurrent session on another tenant is untouched.
    let mut bystander = Client::connect(&server, "s8");
    bystander.expect_ack();
    let (reports, _) = bystander.stream(INPUT, 4);
    assert_eq!(reports, expected);
    server.drain();
}

#[test]
fn chunk_deadline_kills_only_the_offending_session() {
    let nfa = rules();
    let cfg = ServerConfig {
        chunk_deadline: Some(Duration::ZERO),
        ..config()
    };
    let mut server = MatchServer::start("127.0.0.1:0", &nfa, cfg).unwrap();
    let mut c = Client::connect(&server, "slow");
    c.expect_ack();
    c.send(&ClientFrame::Chunk(INPUT.repeat(64)));
    assert!(matches!(c.recv(), ServerFrame::Error { code, .. } if code == ERR_DEADLINE));
    server.drain();
}

#[test]
fn drain_waits_then_forces_stragglers_within_the_hard_deadline() {
    let nfa = rules();
    let cfg = ServerConfig {
        drain_deadline: Duration::from_millis(200),
        ..config()
    };
    let mut server = MatchServer::start("127.0.0.1:0", &nfa, cfg).unwrap();
    // An idle session that never finishes.
    let mut idle = Client::connect(&server, "idle");
    idle.expect_ack();
    idle.send(&ClientFrame::Chunk(b"abc".to_vec()));
    assert!(matches!(idle.recv(), ServerFrame::Reports(_)));

    let report = server.drain();
    assert_eq!(report.forced, 1, "the idle session must be forced");
    assert!(
        report.duration < Duration::from_secs(2),
        "drain must respect its hard deadline, took {:?}",
        report.duration
    );
    // The forced client observes the closure rather than hanging.
    let mut buf = [0u8; 16];
    let _ = idle.reader.read(&mut buf);
}

#[test]
fn drain_with_no_sessions_is_immediate() {
    let nfa = rules();
    let mut server = MatchServer::start("127.0.0.1:0", &nfa, config()).unwrap();
    let report = server.drain();
    assert_eq!((report.drained, report.forced), (0, 0));
    assert!(report.duration < Duration::from_secs(1));
}

/// Compiles `nfa` into a `.sdb` artifact matching `cfg`'s pipeline
/// parameters and writes it under a fresh temp dir.
fn write_artifact(nfa: &Nfa, cfg: &ServerConfig, tag: &str) -> std::path::PathBuf {
    let db = sunder_artifact::CompiledDb::compile(nfa, cfg.config, cfg.spec.params(), cfg.engine)
        .unwrap();
    let path = std::env::temp_dir().join(format!(
        "sunder-serve-artifact-{}-{tag}.sdb",
        std::process::id()
    ));
    db.write(&path).unwrap();
    path
}

#[test]
fn hot_reload_from_artifact_swaps_epoch_without_recompiling() {
    let nfa = rules();
    let cfg = config();
    let expected_old = reference(&nfa, &cfg, INPUT);
    let nfa2 = compile_rule_set(&["xy+", "[a-c]{2}"]).unwrap();
    let expected_new = reference(&nfa2, &cfg, INPUT);
    assert_ne!(expected_old, expected_new, "rule sets must differ");

    let artifact = write_artifact(&nfa2, &cfg, "reload");
    let mut server = MatchServer::start("127.0.0.1:0", &nfa, cfg).unwrap();
    let misses_before = server.cache().misses();

    // Session A opens on epoch 1 and feeds half its input.
    let mut a = Client::connect(&server, "old");
    assert_eq!(a.expect_ack(), 1);
    let mut a_reports = Vec::new();
    let (head, tail) = INPUT.split_at(INPUT.len() / 2);
    a.send(&ClientFrame::Chunk(head.to_vec()));
    match a.recv() {
        ServerFrame::Reports(r) => a_reports.extend(r),
        other => panic!("unexpected {other:?}"),
    }

    // Swap in the mapped artifact mid-session: no compilation happens.
    let epoch = server.reload_artifact(&artifact).unwrap();
    assert_eq!(epoch, 2);
    assert_eq!(server.epoch(), 2);
    assert_eq!(
        server.cache().misses(),
        misses_before,
        "artifact reload must not compile anything"
    );

    // A still finishes on its pinned epoch-1 pipeline.
    a.send(&ClientFrame::Chunk(tail.to_vec()));
    match a.recv() {
        ServerFrame::Reports(rep) => a_reports.extend(rep),
        other => panic!("unexpected {other:?}"),
    }
    a.send(&ClientFrame::Finish);
    match a.recv() {
        ServerFrame::Reports(rep) => a_reports.extend(rep),
        other => panic!("unexpected {other:?}"),
    }
    match a.recv() {
        ServerFrame::Done { epoch, .. } => assert_eq!(epoch, 1, "A pinned epoch 1"),
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(a_reports, expected_old);

    // A session opened after the reload runs on the mapped tables and
    // produces exactly the new rule set's reports.
    let mut b = Client::connect(&server, "new");
    assert_eq!(b.expect_ack(), 2);
    let (b_reports, b_epoch) = b.stream(INPUT, 6);
    assert_eq!(b_epoch, 2);
    assert_eq!(b_reports, expected_new);

    server.drain();
    std::fs::remove_file(&artifact).ok();
}

#[test]
fn corrupt_or_mismatched_artifact_is_refused_and_sessions_survive() {
    let nfa = rules();
    let cfg = config();
    let expected = reference(&nfa, &cfg, INPUT);
    let mut server = MatchServer::start("127.0.0.1:0", &nfa, cfg.clone()).unwrap();

    // An in-flight session straddles both refused reloads.
    let mut a = Client::connect(&server, "survivor");
    assert_eq!(a.expect_ack(), 1);
    let mut a_reports = Vec::new();
    let (head, tail) = INPUT.split_at(INPUT.len() / 2);
    a.send(&ClientFrame::Chunk(head.to_vec()));
    match a.recv() {
        ServerFrame::Reports(r) => a_reports.extend(r),
        other => panic!("unexpected {other:?}"),
    }

    // Corrupted artifact: flip a payload byte of a valid database.
    let nfa2 = compile_rule_set(&["qr+s"]).unwrap();
    let corrupt = write_artifact(&nfa2, &cfg, "corrupt");
    let mut bytes = std::fs::read(&corrupt).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x5A;
    std::fs::write(&corrupt, &bytes).unwrap();
    let err = server.reload_artifact(&corrupt).unwrap_err();
    assert!(err.contains("checksum"), "unexpected refusal: {err}");
    assert_eq!(
        server.epoch(),
        1,
        "refused reload must not advance the epoch"
    );

    // Parameter mismatch: a perfectly valid artifact compiled under a
    // different sharding spec is refused too.
    let mismatched_db = sunder_artifact::CompiledDb::compile(
        &nfa2,
        cfg.config,
        ShardSpec::MaxShards(1).params(),
        cfg.engine,
    )
    .unwrap();
    let mismatched = std::env::temp_dir().join(format!(
        "sunder-serve-artifact-{}-mismatch.sdb",
        std::process::id()
    ));
    mismatched_db.write(&mismatched).unwrap();
    let err = server.reload_artifact(&mismatched).unwrap_err();
    assert!(err.contains("sharding spec"), "unexpected refusal: {err}");
    assert_eq!(server.epoch(), 1);

    // The straddling session is untouched: it completes byte-identically
    // on the epoch it pinned.
    a.send(&ClientFrame::Chunk(tail.to_vec()));
    match a.recv() {
        ServerFrame::Reports(rep) => a_reports.extend(rep),
        other => panic!("unexpected {other:?}"),
    }
    a.send(&ClientFrame::Finish);
    match a.recv() {
        ServerFrame::Reports(rep) => a_reports.extend(rep),
        other => panic!("unexpected {other:?}"),
    }
    match a.recv() {
        ServerFrame::Done { epoch, .. } => assert_eq!(epoch, 1),
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(a_reports, expected);

    server.drain();
    std::fs::remove_file(&corrupt).ok();
    std::fs::remove_file(&mismatched).ok();
}
