//! The sharding equivalence suite: sharded execution must be
//! report-trace-identical to monolithic execution — across every suite
//! workload, every pipeline configuration, every engine kind, and every
//! shard count — with the reference oracle as the final arbiter.
//!
//! The matrix itself lives in `sunder_oracle::shard`
//! (`check_sharded_pipelines` / `check_sharded_suite`); this test locks
//! the whole pipeline down at the service level too: batch submissions
//! through the `BatchService` cache must pass the per-stream
//! trace-equality gate for all four configurations.

use sunder_oracle::shard::{check_sharded_suite, DEFAULT_SHARD_COUNTS};
use sunder_oracle::PipelineConfig;
use sunder_shard::{verify_stream, BatchOptions, BatchService, ShardSpec};
use sunder_sim::EngineKind;
use sunder_workloads::{Benchmark, Scale};

/// Every benchmark × config × engine × shard count agrees with both the
/// monolithic engines and the reference oracle at tiny scale.
#[test]
fn suite_is_shard_conformant_at_tiny_scale() {
    let failures = check_sharded_suite(Scale::tiny());
    assert!(
        failures.is_empty(),
        "sharded conformance failures: {}",
        failures
            .iter()
            .map(|(b, d)| format!("{}: {d}", b.name()))
            .collect::<Vec<_>>()
            .join("; ")
    );
}

/// Batch submissions through the cached pipeline pass the per-stream
/// trace-equality gate for every pipeline configuration and for every
/// engine kind, under shard counts {1, 2, 4, 8}.
#[test]
fn batch_service_passes_the_gate_for_all_configs_and_engines() {
    let scale = Scale::tiny();
    for bench in [Benchmark::Snort, Benchmark::Ranges05, Benchmark::ExactMatch] {
        let w = bench.build(scale);
        // Quarter the input into independent streams (aligned so every
        // stride configuration frames cleanly).
        let chunk = (w.input.len() / 4).next_multiple_of(4).max(4);
        let streams: Vec<Vec<u8>> = w.input.chunks(chunk).map(<[u8]>::to_vec).collect();
        for engine in EngineKind::ALL {
            for &shards in &DEFAULT_SHARD_COUNTS {
                let service = BatchService::new(ShardSpec::MaxShards(shards), engine);
                for config in PipelineConfig::ALL {
                    let report = service
                        .submit(&w.nfa, config, &streams, &BatchOptions::with_workers(2))
                        .unwrap_or_else(|e| {
                            panic!("{}/{}/{shards}: {e}", bench.name(), config.name())
                        });
                    assert_eq!(
                        report.ok_count(),
                        streams.len(),
                        "{}/{}/{} shards: every stream must complete",
                        bench.name(),
                        config.name(),
                        shards,
                    );
                    let pipeline = service.cache().get_or_compile(&w.nfa, config).unwrap();
                    for s in &report.streams {
                        assert!(
                            verify_stream(&pipeline, s, &streams[s.stream]).unwrap(),
                            "{}/{}/{} shards, stream {}: sharded trace diverged",
                            bench.name(),
                            config.name(),
                            shards,
                            s.stream,
                        );
                    }
                }
                // One compilation per config; nothing was recompiled.
                assert_eq!(service.cache().misses(), 4, "{}", bench.name());
            }
        }
    }
}
