//! Property test (oracle-backed): for random automata and random shard
//! counts ∈ {1..8}, the `ShardedEngine`'s merged report trace is
//! byte-identical to the monolithic `AdaptiveEngine` trace under all four
//! pipeline configurations.
//!
//! Random cases come from the conformance fuzzer's generator
//! (`sunder_oracle::fuzz::generate_case`), so the automata exercise the
//! same structural variety the fuzz corpus does — strided reports,
//! start-period gating, self-loops, report-only states. A divergence
//! writes a self-contained `.anml` reproducer (the PR 2 fuzzer format,
//! re-parsable with `sunder_oracle::fuzz::parse_reproducer`) before
//! failing, so the shrunk case survives the test run.

use std::path::PathBuf;

use proptest::prelude::*;

use sunder_oracle::check::Divergence;
use sunder_oracle::fuzz::{
    generate_case, parse_reproducer, render_reproducer, Failure, FuzzOptions,
};
use sunder_oracle::PipelineConfig;
use sunder_shard::{CompiledPipeline, ShardSpec};
use sunder_sim::{EngineKind, ShardedEngine, TraceSink};

/// Writes a failing case as a reproducer file under the test temp dir and
/// returns its path.
fn emit_reproducer(
    case: u64,
    nfa: &sunder_automata::Nfa,
    input: &[u8],
    config: PipelineConfig,
    shards: usize,
    detail: String,
) -> PathBuf {
    let failure = Failure {
        case,
        nfa: nfa.clone(),
        input: input.to_vec(),
        divergence: Box::new(Divergence {
            config: config.name(),
            engine: "adaptive",
            detail,
            missing: Vec::new(),
            spurious: Vec::new(),
        }),
    };
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("create reproducer dir");
    let path = dir.join(format!(
        "sharding-repro-case{case}-{}-{shards}shards.anml",
        config.name()
    ));
    std::fs::write(&path, render_reproducer(&failure)).expect("write reproducer");
    path
}

/// The monolithic reference: the adaptive engine over the transformed
/// automaton.
fn monolithic(transformed: &sunder_automata::Nfa, input: &[u8]) -> Vec<sunder_sim::ReportEvent> {
    let view =
        sunder_automata::InputView::new(input, transformed.symbol_bits(), transformed.stride())
            .expect("framing");
    let mut engine = EngineKind::Adaptive.build(transformed);
    let mut trace = TraceSink::new();
    engine.run(&view, &mut trace);
    trace.events
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sharded_matches_monolithic_adaptive_for_all_configs(
        case in 0u64..4096,
        shards in 1usize..=8,
    ) {
        let options = FuzzOptions::default();
        let (nfa, input) = generate_case(&options, case);
        for config in PipelineConfig::ALL {
            let (transformed, _map) = config.apply(&nfa).expect("transform");
            let expected = monolithic(&transformed, &input);
            let sharded = ShardedEngine::with_shard_count(
                &transformed,
                shards,
                EngineKind::Adaptive,
            ).expect("partition");
            let merged = sharded.run_trace(&input).expect("sharded run");
            if merged != expected {
                let path = emit_reproducer(
                    case,
                    &nfa,
                    &input,
                    config,
                    shards,
                    format!(
                        "sharded ({shards} requested, {} actual) has {} events, \
                         monolithic adaptive has {}",
                        sharded.num_shards(),
                        merged.len(),
                        expected.len(),
                    ),
                );
                prop_assert!(
                    false,
                    "case {case} diverged under {} with {shards} shards; \
                     reproducer written to {}",
                    config.name(),
                    path.display(),
                );
            }
        }
    }

    /// The cached-pipeline path (what `BatchService` executes) agrees
    /// with the direct `ShardedEngine` path — compilation through the
    /// cache must not change execution.
    #[test]
    fn compiled_pipeline_agrees_with_direct_sharding(
        case in 0u64..4096,
        shards in 1usize..=8,
    ) {
        let options = FuzzOptions::default();
        let (nfa, input) = generate_case(&options, case);
        for config in PipelineConfig::ALL {
            let pipeline = CompiledPipeline::compile(
                &nfa,
                config,
                ShardSpec::MaxShards(shards),
                EngineKind::Adaptive,
            ).expect("compile");
            let via_cacheable = pipeline.sharded.run_trace(&input).expect("pipeline run");
            let expected = monolithic(&pipeline.nfa, &input);
            prop_assert_eq!(
                via_cacheable,
                expected,
                "case {} under {} with {} shards",
                case,
                config.name(),
                shards,
            );
        }
    }
}

/// The reproducer machinery itself round-trips: what the failing path
/// would write can be parsed back into the identical (automaton, input)
/// pair.
#[test]
fn reproducer_emission_round_trips() {
    let options = FuzzOptions::default();
    let (nfa, input) = generate_case(&options, 7);
    let path = emit_reproducer(
        7,
        &nfa,
        &input,
        PipelineConfig::Stride2,
        3,
        "round-trip self-test (not a real failure)".to_string(),
    );
    let text = std::fs::read_to_string(&path).unwrap();
    let (parsed_nfa, parsed_input) = parse_reproducer(&text).unwrap();
    assert_eq!(parsed_input, input);
    assert_eq!(
        sunder_automata::anml::serialize(&parsed_nfa),
        sunder_automata::anml::serialize(&nfa),
        "reproducer must preserve the automaton exactly"
    );
    std::fs::remove_file(path).ok();
}
