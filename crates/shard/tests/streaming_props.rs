//! Property tests (oracle-backed) for chunked streaming execution: a
//! suspended/resumed `StreamSession` must be report-identical to a
//! whole-input run for *random* automata under *random* chunk
//! boundaries — including boundaries that split stride vectors and
//! nibble pairs mid-symbol.
//!
//! Random cases come from the conformance fuzzer's generator
//! (`sunder_oracle::fuzz::generate_case`), the same structural variety
//! the fuzz corpus exercises. A divergence writes a self-contained
//! `.anml` reproducer (the PR 2 fuzzer format, re-parsable with
//! `sunder_oracle::fuzz::parse_reproducer`) before failing, so the case
//! survives the test run.

use std::path::PathBuf;
use std::sync::Arc;

use proptest::prelude::*;

use sunder_automata::Nfa;
use sunder_oracle::check::Divergence;
use sunder_oracle::fuzz::{generate_case, render_reproducer, Failure, FuzzOptions};
use sunder_oracle::PipelineConfig;
use sunder_resilience::{Budget, SplitMix64};
use sunder_shard::{expected_reports, CompiledPipeline, ShardSpec, StreamSession};
use sunder_sim::EngineKind;

/// Writes a failing case as a reproducer file under the test temp dir
/// and returns its path.
fn emit_reproducer(
    case: u64,
    nfa: &Nfa,
    input: &[u8],
    config: &'static str,
    engine: &'static str,
    detail: String,
) -> PathBuf {
    let failure = Failure {
        case,
        nfa: nfa.clone(),
        input: input.to_vec(),
        divergence: Box::new(Divergence {
            config,
            engine,
            detail,
            missing: Vec::new(),
            spurious: Vec::new(),
        }),
    };
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("create reproducer dir");
    let path = dir.join(format!("streaming-repro-case{case}-{config}-{engine}.anml"));
    std::fs::write(&path, render_reproducer(&failure)).expect("write reproducer");
    path
}

/// Splits `input` at boundaries drawn from `seed` — mostly tiny chunks
/// (1..=5 bytes) so mid-stride and mid-nibble splits dominate, with the
/// occasional larger run.
fn random_chunks(input: &[u8], seed: u64) -> Vec<&[u8]> {
    let mut rng = SplitMix64::new(seed);
    let mut chunks = Vec::new();
    let mut pos = 0;
    while pos < input.len() {
        let size = if rng.next().is_multiple_of(5) {
            1 + (rng.next() % 32) as usize
        } else {
            1 + (rng.next() % 5) as usize
        };
        let end = (pos + size).min(input.len());
        chunks.push(&input[pos..end]);
        pos = end;
    }
    chunks
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random automaton × random chunk boundaries × every engine ×
    /// every pipeline configuration × shard counts {1, 4}: the chunked
    /// session reproduces the whole-input reports byte-identically.
    #[test]
    fn chunked_sessions_reproduce_whole_runs(
        case in 0u64..4096,
        chunk_seed in 0u64..u64::MAX,
    ) {
        let options = FuzzOptions::default();
        let (nfa, input) = generate_case(&options, case);
        for config in PipelineConfig::ALL {
            for engine in EngineKind::ALL {
                for shards in [1usize, 4] {
                    let pipeline = Arc::new(
                        CompiledPipeline::compile(
                            &nfa,
                            config,
                            ShardSpec::MaxShards(shards),
                            engine,
                        )
                        .expect("compile"),
                    );
                    let expected = expected_reports(&pipeline, &input).expect("reference");
                    let mut session = StreamSession::new(Arc::clone(&pipeline), 1);
                    let mut got = Vec::new();
                    for chunk in random_chunks(&input, chunk_seed ^ shards as u64) {
                        got.extend(
                            session.feed(chunk, &Budget::unlimited()).expect("feed"),
                        );
                    }
                    let (tail, _) = session.finish(&Budget::unlimited()).expect("finish");
                    got.extend(tail);
                    if got != expected {
                        let path = emit_reproducer(
                            case,
                            &nfa,
                            &input,
                            config.name(),
                            engine.name(),
                            format!(
                                "chunked stream (seed {chunk_seed:#x}, {shards} shards) \
                                 produced {} reports, whole run {}",
                                got.len(),
                                expected.len(),
                            ),
                        );
                        prop_assert!(
                            false,
                            "case {case}: chunked/{} shards diverged under {} / {}; \
                             reproducer written to {}",
                            shards,
                            config.name(),
                            engine.name(),
                            path.display(),
                        );
                    }
                }
            }
        }
    }
}
