//! The chaos soak: 64 concurrent streaming sessions against one server
//! while the fault plan injects panics, mid-stream disconnects, slow
//! drips, malformed frames, and a hot reload mid-burst. The properties:
//! no hangs (every session reaches a typed outcome), survivors are
//! byte-identical to whole-input runs on the epoch they pinned, drain
//! finishes inside its hard deadline, and every fault is attributed in
//! the telemetry artifact.
//!
//! This test owns the process-global telemetry recorder; keep it the
//! only `#[test]` in this binary.

use std::sync::Arc;
use std::time::Duration;

use sunder_automata::{anml, regex::compile_rule_set};
use sunder_oracle::PipelineConfig;
use sunder_resilience::{FaultPlan, SplitMix64};
use sunder_shard::chaos::{run_chaos, ChaosOptions, SessionOutcome};
use sunder_shard::frame::{ERR_PANIC, ERR_PROTOCOL, ERR_VERSION};
use sunder_shard::{expected_reports, CompiledPipeline, MatchServer, ServerConfig, ShardSpec};
use sunder_sim::EngineKind;

const SESSIONS: usize = 64;

#[test]
fn chaos_soak_64_sessions_with_faults_reload_and_drain() {
    sunder_telemetry::init(sunder_telemetry::Config::spans());

    let nfa = compile_rule_set(&["ab+c", "[0-9]{3}", ".*net", "xy?z"]).unwrap();
    let nfa2 = compile_rule_set(&["ab+c", "[0-9]{3}", ".*net", "xy?z", "q{2}"]).unwrap();
    let cfg = ServerConfig {
        config: PipelineConfig::Stride2,
        spec: ShardSpec::MaxShards(4),
        engine: EngineKind::Adaptive,
        max_sessions: SESSIONS + 8,
        per_tenant_sessions: 4,
        queue_depth: 4,
        drain_deadline: Duration::from_secs(3),
        // Worker-level injections: tenants s3 and s40 panic, s11 stalls.
        fault_plan: FaultPlan::from_text("panic 3\npanic 40\nstall 11 50\n").unwrap(),
        // The scrape-during-chaos gate: a 10 Hz scraper hits /metrics
        // for the whole soak and every response must parse.
        obs_addr: Some("127.0.0.1:0".to_string()),
        ..ServerConfig::default()
    };

    // Reference pipelines per epoch (content-identical compilation).
    let old = Arc::new(CompiledPipeline::compile(&nfa, cfg.config, cfg.spec, cfg.engine).unwrap());
    let new = Arc::new(CompiledPipeline::compile(&nfa2, cfg.config, cfg.spec, cfg.engine).unwrap());

    // Deterministic per-session inputs, a few hundred bytes each.
    let mut rng = SplitMix64::new(0x50AC);
    let alphabet = b"abc 0123xyznetq-";
    let inputs: Vec<Vec<u8>> = (0..SESSIONS)
        .map(|_| {
            (0..256 + (rng.next() % 256) as usize)
                .map(|_| alphabet[(rng.next() % alphabet.len() as u64) as usize])
                .collect()
        })
        .collect();

    // Connection-level chaos: disconnects, drips, malformed frames of
    // every mode, and one reload mid-burst.
    let plan = FaultPlan::from_text(concat!(
        "disconnect 5 2\n",
        "disconnect 21 0\n",
        "slow-drip 9 16 2\n",
        "slow-drip 33 8 1\n",
        "malformed-frame 13 0\n",
        "malformed-frame 17 1\n",
        "malformed-frame 25 2\n",
        "malformed-frame 29 3\n",
        "malformed-frame 37 4\n",
        "reload-burst 45 1\n",
    ))
    .unwrap();

    let mut server = MatchServer::start("127.0.0.1:0", &nfa, cfg).unwrap();
    let opts = ChaosOptions {
        chunk_size: 48,
        reload_anml: Some(anml::serialize(&nfa2)),
        read_timeout: Duration::from_secs(30),
    };

    // Concurrent scraper: poll /metrics and /statusz at 10 Hz while the
    // chaos runs. A scrape that fails to parse fails the soak — the
    // exposition must stay well-formed no matter what the sessions are
    // doing to the registry concurrently.
    let obs_addr = server.obs_addr().expect("obs listener running");
    let scrape_stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let scraper = {
        let stop = Arc::clone(&scrape_stop);
        std::thread::spawn(move || {
            let mut scrapes = 0usize;
            while !stop.load(std::sync::atomic::Ordering::Acquire) {
                let (status, body) =
                    sunder_shard::http_get(obs_addr, "/metrics", Duration::from_secs(5))
                        .expect("scrape /metrics");
                assert_eq!(status, 200, "scrape {scrapes}");
                sunder_telemetry::parse_prometheus(&body).unwrap_or_else(|e| {
                    panic!("scrape {scrapes}: exposition failed to parse: {e}\n{body}")
                });
                let (status, body) =
                    sunder_shard::http_get(obs_addr, "/statusz", Duration::from_secs(5))
                        .expect("scrape /statusz");
                assert_eq!(status, 200, "scrape {scrapes}");
                sunder_telemetry::json::parse(&body)
                    .unwrap_or_else(|e| panic!("scrape {scrapes}: statusz not JSON: {e}"));
                scrapes += 1;
                std::thread::sleep(Duration::from_millis(100));
            }
            scrapes
        })
    };

    let outcomes = run_chaos(server.local_addr(), &inputs, &plan, &opts);
    assert_eq!(outcomes.len(), SESSIONS, "every session reached an outcome");
    scrape_stop.store(true, std::sync::atomic::Ordering::Release);
    let scrapes = scraper.join().expect("scraper thread panicked");
    // The soak itself only takes a few hundred ms; two full scrape
    // cycles is the floor that proves concurrency happened at all.
    assert!(scrapes >= 2, "scraper barely ran: {scrapes} scrapes");

    let mut completed = 0;
    for (i, outcome) in outcomes.iter().enumerate() {
        match outcome {
            SessionOutcome::Completed {
                epoch,
                reports,
                bytes,
                ..
            } => {
                completed += 1;
                assert_eq!(*bytes, inputs[i].len() as u64, "session {i}");
                let pipeline = if *epoch == 1 { &old } else { &new };
                let expected = expected_reports(pipeline, &inputs[i]).unwrap();
                assert_eq!(
                    reports, &expected,
                    "session {i} (epoch {epoch}): survivor diverged from whole-input run"
                );
            }
            SessionOutcome::Disconnected { .. } => {
                assert!(matches!(i, 5 | 21), "unplanned disconnect on session {i}");
            }
            SessionOutcome::Errored { code, .. } => match i {
                3 | 40 => assert_eq!(*code, ERR_PANIC, "session {i}"),
                13 | 17 | 25 | 29 => assert_eq!(*code, ERR_PROTOCOL, "session {i}"),
                other => panic!("unplanned error on session {other}: code {code}"),
            },
            SessionOutcome::Refused { code, .. } => {
                assert_eq!((i, *code), (37, ERR_VERSION), "session {i}");
            }
            SessionOutcome::Transport(e) => panic!("session {i} transport failure: {e}"),
        }
    }
    // 64 − 2 panics − 2 disconnects − 5 malformed = 55 clean survivors.
    assert_eq!(completed, SESSIONS - 9, "survivor census");
    assert_eq!(server.epoch(), 2, "the mid-burst reload landed");

    // Graceful drain: everything already finished, nothing to force.
    let report = server.drain();
    assert_eq!(report.forced, 0, "no session should need forcing");
    assert!(
        report.duration < Duration::from_secs(3),
        "drain blew its deadline: {:?}",
        report.duration
    );

    // Telemetry artifact: per-session fault attribution and the soak's
    // aggregate counters are all present and the JSONL round-trips.
    let dump = sunder_telemetry::finish().expect("telemetry session");
    let faults: Vec<_> = dump
        .events
        .iter()
        .filter(|e| e.name == "serve.session_fault")
        .collect();
    let fault_key = |e: &sunder_telemetry::Event| {
        let field = |k: &str| {
            e.fields
                .iter()
                .find(|f| f.key == k)
                .map(|f| format!("{:?}", f.value))
                .unwrap_or_default()
        };
        (field("tenant"), field("kind"))
    };
    for (tenant, kind) in [
        ("s3", "panic"),
        ("s40", "panic"),
        ("s5", "disconnect"),
        ("s21", "disconnect"),
        ("s13", "protocol"),
    ] {
        assert!(
            faults.iter().any(|e| {
                let (t, k) = fault_key(e);
                t.contains(tenant) && k.contains(kind)
            }),
            "missing fault attribution for {tenant}/{kind}; got {:?}",
            faults.iter().map(|e| fault_key(e)).collect::<Vec<_>>()
        );
    }
    let counter = |name: &str| dump.metrics.counter(name, &[]).unwrap_or(0);
    assert!(counter("serve_sessions_total") >= SESSIONS as u64);
    assert!(counter("serve_chunks_total") > 0);
    assert!(counter("serve_bytes_total") > 0);
    assert_eq!(counter("serve_reloads_total"), 1);
    let jsonl = dump.to_jsonl();
    sunder_telemetry::validate_jsonl(&jsonl).expect("artifact validates");
}
