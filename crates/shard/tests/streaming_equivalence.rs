//! The chunking-equivalence suite: a suspended/resumed streaming session
//! must be report-identical to a whole-input run — across every suite
//! workload, every pipeline configuration, every engine kind, and shard
//! counts {1, 4} — no matter where the chunk boundaries fall.
//!
//! Chunk boundaries are drawn from a seeded splitmix64 stream and
//! deliberately include 1-byte chunks, so stride-2 and stride-4 cycles
//! (and nibble pairs) are split mid-vector constantly. The session's
//! `SymbolFramer` must carry that partial state across the boundary
//! without ever padding mid-stream.

use std::sync::Arc;

use sunder_oracle::PipelineConfig;
use sunder_resilience::{Budget, SplitMix64};
use sunder_shard::{expected_reports, CompiledPipeline, ShardSpec, StreamSession};
use sunder_sim::EngineKind;
use sunder_workloads::{Benchmark, Scale};

/// Splits `input` into chunks whose sizes are drawn from `rng`, biased
/// toward small (1..=9 byte) chunks so mid-stride splits dominate.
fn random_chunks<'a>(input: &'a [u8], rng: &mut SplitMix64) -> Vec<&'a [u8]> {
    let mut chunks = Vec::new();
    let mut pos = 0;
    while pos < input.len() {
        let size = if rng.next().is_multiple_of(4) {
            // Occasionally a big chunk so multi-cycle runs happen too.
            1 + (rng.next() % 64) as usize
        } else {
            1 + (rng.next() % 9) as usize
        };
        let end = (pos + size).min(input.len());
        chunks.push(&input[pos..end]);
        pos = end;
    }
    chunks
}

#[test]
fn chunked_sessions_match_whole_runs_across_the_suite() {
    let scale = Scale::tiny();
    for bench in [Benchmark::Snort, Benchmark::Ranges05, Benchmark::ExactMatch] {
        let w = bench.build(scale);
        for engine in EngineKind::ALL {
            for shards in [1usize, 4] {
                for config in PipelineConfig::ALL {
                    let pipeline = Arc::new(
                        CompiledPipeline::compile(
                            &w.nfa,
                            config,
                            ShardSpec::MaxShards(shards),
                            engine,
                        )
                        .unwrap_or_else(|e| {
                            panic!("{}/{}/{shards}: {e}", bench.name(), config.name())
                        }),
                    );
                    let expected = expected_reports(&pipeline, &w.input).unwrap();
                    let mut rng = SplitMix64::new(0xC0FFEE ^ (shards as u64) << 8 ^ engine as u64);
                    let mut session = StreamSession::new(Arc::clone(&pipeline), 1);
                    let mut got = Vec::new();
                    for chunk in random_chunks(&w.input, &mut rng) {
                        got.extend(session.feed(chunk, &Budget::unlimited()).unwrap());
                    }
                    let (tail, summary) = session.finish(&Budget::unlimited()).unwrap();
                    got.extend(tail);
                    assert_eq!(
                        got,
                        expected,
                        "{}/{}/{engine}/{shards} shards: chunked stream diverged \
                         from the whole-input run",
                        bench.name(),
                        config.name(),
                    );
                    assert_eq!(summary.bytes, w.input.len() as u64);
                }
            }
        }
    }
}

/// Degenerate chunkings — all-1-byte and single-chunk — bracket the
/// random suite above on the densest-reporting workload.
#[test]
fn extreme_chunkings_agree_on_a_dense_reporter() {
    let w = Benchmark::ExactMatch.build(Scale::tiny());
    for config in PipelineConfig::ALL {
        let pipeline = Arc::new(
            CompiledPipeline::compile(
                &w.nfa,
                config,
                ShardSpec::MaxShards(4),
                EngineKind::Adaptive,
            )
            .unwrap(),
        );
        let expected = expected_reports(&pipeline, &w.input).unwrap();
        for chunk_size in [1usize, w.input.len()] {
            let mut session = StreamSession::new(Arc::clone(&pipeline), 1);
            let mut got = Vec::new();
            for chunk in w.input.chunks(chunk_size) {
                got.extend(session.feed(chunk, &Budget::unlimited()).unwrap());
            }
            let (tail, _) = session.finish(&Budget::unlimited()).unwrap();
            got.extend(tail);
            assert_eq!(got, expected, "{} chunk_size={chunk_size}", config.name());
        }
    }
}
