//! The live observability listener: a dependency-free HTTP/1.0 server
//! exposing the daemon's operational state.
//!
//! Endpoints:
//!
//! * `GET /metrics` — Prometheus text exposition rendered
//!   deterministically from the telemetry registry
//!   ([`sunder_telemetry::render_prometheus`]);
//! * `GET /healthz` — liveness: `200 ok` while the process serves;
//! * `GET /readyz` — readiness: `200 ready epoch=N`, or `503` while the
//!   server is draining or a hot reload is compiling the next epoch;
//! * `GET /statusz` — a JSON document ([`status_json`]): live sessions,
//!   per-tenant quota usage, queue depth, cache hit rate, DB epoch, and
//!   per-tenant latency quantiles. The stdin `status` command of
//!   `sunder serve` prints the *same* document — one source of truth.
//!
//! The listener is plain `std::net`: a nonblocking accept loop on its
//! own thread, one short-lived request handled at a time (scrapes are
//! rare and tiny next to match traffic, so there is nothing to pool).
//! A second thread periodically diffs registry snapshots into
//! `*_per_sec` rate gauges ([`sunder_telemetry::publish_rate_gauges`]),
//! so a scrape shows live rates without the scraper having to keep
//! state. Both threads stop when [`MatchServer::drain`] completes — the
//! listener keeps answering (`/readyz` 503) for the whole drain window.
//!
//! [`MatchServer::drain`]: crate::server::MatchServer::drain

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sunder_telemetry::json::Json;

use crate::server::ServerInner;

/// A running observability listener; owned by the
/// [`crate::server::MatchServer`] it describes.
pub struct ObsHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ObsHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsHandle")
            .field("addr", &self.addr)
            .finish()
    }
}

impl ObsHandle {
    /// The address the listener is bound to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener and the snapshot thread, joining both.
    pub(crate) fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ObsHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds the obs listener and spawns its two threads.
pub(crate) fn start_obs(inner: &Arc<ServerInner>, addr: &str) -> Result<ObsHandle, String> {
    let listener = TcpListener::bind(addr).map_err(|e| format!("bind obs {addr}: {e}"))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("obs set nonblocking: {e}"))?;
    let local = listener.local_addr().map_err(|e| e.to_string())?;
    let stop = Arc::new(AtomicBool::new(false));

    let http_inner = Arc::clone(inner);
    let http_stop = Arc::clone(&stop);
    let http = std::thread::Builder::new()
        .name("serve-obs".into())
        .spawn(move || http_loop(&http_inner, &listener, &http_stop))
        .map_err(|e| format!("spawn obs listener: {e}"))?;

    let rate_stop = Arc::clone(&stop);
    let interval = inner.cfg.snapshot_interval;
    let rates = std::thread::Builder::new()
        .name("serve-obs-rates".into())
        .spawn(move || rate_loop(interval, &rate_stop))
        .map_err(|e| format!("spawn obs snapshot thread: {e}"))?;

    Ok(ObsHandle {
        addr: local,
        stop,
        threads: vec![http, rates],
    })
}

/// The periodic snapshot differ: every `interval`, diff the previous
/// registry snapshot against the current one and publish `*_per_sec`
/// gauges.
fn rate_loop(interval: Duration, stop: &AtomicBool) {
    let mut prev = sunder_telemetry::snapshot();
    let mut last = Instant::now();
    while !stop.load(Ordering::Acquire) {
        // Sleep in small steps so shutdown never waits out a long tick.
        std::thread::sleep(Duration::from_millis(10));
        if last.elapsed() < interval {
            continue;
        }
        let cur = sunder_telemetry::snapshot();
        sunder_telemetry::publish_rate_gauges(&prev, &cur, last.elapsed());
        last = Instant::now();
        prev = cur;
    }
}

fn http_loop(inner: &Arc<ServerInner>, listener: &TcpListener, stop: &AtomicBool) {
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((sock, _peer)) => handle_request(inner, sock),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Reads one request (up to the header terminator), routes it, writes
/// one HTTP/1.0 response, closes. Malformed requests get a 400.
fn handle_request(inner: &Arc<ServerInner>, mut sock: TcpStream) {
    let _ = sock.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = sock.set_write_timeout(Some(Duration::from_millis(500)));
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    let request = loop {
        match sock.read(&mut chunk) {
            Ok(0) => break None,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8192 {
                    break String::from_utf8(buf).ok();
                }
            }
            Err(_) => break None,
        }
    };
    let Some(request) = request else {
        return;
    };
    let mut parts = request.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = if method != "GET" {
        (405, "text/plain", "method not allowed\n".to_string())
    } else {
        route(inner, path)
    };
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Error",
    };
    let response = format!(
        "HTTP/1.0 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = sock.write_all(response.as_bytes());
    let _ = sock.flush();
    let _ = sock.shutdown(Shutdown::Both);
}

fn route(inner: &Arc<ServerInner>, path: &str) -> (u16, &'static str, String) {
    match path {
        "/metrics" => (
            200,
            "text/plain; version=0.0.4; charset=utf-8",
            sunder_telemetry::render_prometheus(&sunder_telemetry::snapshot()),
        ),
        "/healthz" => (200, "text/plain", "ok\n".to_string()),
        "/readyz" => {
            let (status, body) = ready_state(inner);
            (status, "text/plain", body)
        }
        "/statusz" => (200, "application/json", status_json(inner).render()),
        _ => (404, "text/plain", format!("no such endpoint: {path}\n")),
    }
}

/// The readiness decision: not ready while draining or while a hot
/// reload is compiling the next epoch.
pub(crate) fn ready_state(inner: &ServerInner) -> (u16, String) {
    if inner.is_draining() {
        (503, "draining\n".to_string())
    } else if inner.is_reloading() {
        (503, "reloading\n".to_string())
    } else {
        (200, format!("ready epoch={}\n", inner.epoch()))
    }
}

/// Builds the `/statusz` document. Everything except the latency and
/// SLO blocks comes from the server's own state (atomics and the cache's
/// counters), so the document stays truthful even with telemetry off;
/// the latency quantiles appear once per-tenant histograms exist in the
/// registry.
pub(crate) fn status_json(inner: &ServerInner) -> Json {
    let hits = inner.cache.hits();
    let misses = inner.cache.misses();
    let lookups = hits + misses;
    let hit_rate = if lookups > 0 {
        hits as f64 / lookups as f64
    } else {
        0.0
    };

    let mut tenants: Vec<(String, usize)> = inner
        .tenants
        .lock()
        .unwrap()
        .iter()
        .map(|(k, v)| (k.clone(), *v))
        .collect();
    tenants.sort();

    let snap = sunder_telemetry::snapshot();
    let mut latency = Vec::new();
    let mut slo = Vec::new();
    for e in &snap.entries {
        let tenant = e
            .labels
            .iter()
            .find(|(k, _)| *k == "tenant")
            .map(|(_, v)| v.clone());
        match (&e.value, e.name, tenant) {
            (
                sunder_telemetry::MetricValue::Histogram(h),
                "serve_chunk_service_us",
                Some(tenant),
            ) => {
                let q = |p: f64| Json::Num(h.quantile(p).unwrap_or(0.0));
                latency.push((
                    tenant,
                    Json::Obj(vec![
                        ("count".into(), Json::Num(h.count() as f64)),
                        ("mean_us".into(), Json::Num(h.mean())),
                        ("p50_us".into(), q(0.5)),
                        ("p99_us".into(), q(0.99)),
                    ]),
                ));
            }
            (
                sunder_telemetry::MetricValue::Counter(c),
                "serve_slo_violations_total",
                Some(tenant),
            ) => {
                slo.push((tenant, Json::Num(*c as f64)));
            }
            _ => {}
        }
    }

    Json::Obj(vec![
        ("epoch".into(), Json::Num(inner.epoch() as f64)),
        (
            "uptime_s".into(),
            Json::Num(inner.started.elapsed().as_secs() as f64),
        ),
        ("draining".into(), Json::Bool(inner.is_draining())),
        ("reloading".into(), Json::Bool(inner.is_reloading())),
        (
            "sessions".into(),
            Json::Obj(vec![
                (
                    "active".into(),
                    Json::Num(inner.active.load(Ordering::Relaxed) as f64),
                ),
                (
                    "started".into(),
                    Json::Num(inner.sessions_started.load(Ordering::Relaxed) as f64),
                ),
                ("max".into(), Json::Num(inner.cfg.max_sessions as f64)),
                (
                    "per_tenant_limit".into(),
                    Json::Num(inner.cfg.per_tenant_sessions as f64),
                ),
            ]),
        ),
        (
            "tenants".into(),
            Json::Obj(
                tenants
                    .into_iter()
                    .map(|(t, n)| (t, Json::Num(n as f64)))
                    .collect(),
            ),
        ),
        (
            "queue".into(),
            Json::Obj(vec![
                (
                    "queued".into(),
                    Json::Num(inner.queued.load(Ordering::Relaxed) as f64),
                ),
                (
                    "depth_per_session".into(),
                    Json::Num(inner.cfg.queue_depth as f64),
                ),
            ]),
        ),
        (
            "cache".into(),
            Json::Obj(vec![
                ("hits".into(), Json::Num(hits as f64)),
                ("misses".into(), Json::Num(misses as f64)),
                ("entries".into(), Json::Num(inner.cache.len() as f64)),
                ("hit_rate".into(), Json::Num(hit_rate)),
            ]),
        ),
        ("latency_us".into(), Json::Obj(latency)),
        ("slo_violations".into(), Json::Obj(slo)),
    ])
}

/// A minimal HTTP/1.0 GET: connects, sends the request, returns
/// `(status, body)`. This is the client side used by `sunder stat`, the
/// chaos-soak scraper, and CI — and it only speaks what the obs
/// listener serves.
///
/// # Errors
///
/// Connect/read failures and malformed status lines, as strings.
pub fn http_get(addr: SocketAddr, path: &str, timeout: Duration) -> Result<(u16, String), String> {
    let sock = TcpStream::connect_timeout(&addr, timeout).map_err(|e| format!("connect: {e}"))?;
    sock.set_read_timeout(Some(timeout))
        .map_err(|e| e.to_string())?;
    sock.set_write_timeout(Some(timeout))
        .map_err(|e| e.to_string())?;
    let mut sock = sock;
    sock.write_all(
        format!("GET {path} HTTP/1.0\r\nHost: sunder\r\nConnection: close\r\n\r\n").as_bytes(),
    )
    .map_err(|e| format!("send: {e}"))?;
    let mut response = String::new();
    sock.read_to_string(&mut response)
        .map_err(|e| format!("read: {e}"))?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or("response missing header terminator")?;
    let status_line = head.lines().next().unwrap_or("");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line {status_line:?}"))?;
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{MatchServer, ServerConfig};
    use sunder_automata::regex::compile_rule_set;
    use sunder_telemetry::json;

    fn obs_server() -> MatchServer {
        let nfa = compile_rule_set(&["ab+c"]).unwrap();
        let cfg = ServerConfig {
            obs_addr: Some("127.0.0.1:0".into()),
            ..ServerConfig::default()
        };
        MatchServer::start("127.0.0.1:0", &nfa, cfg).unwrap()
    }

    #[test]
    fn endpoints_respond_and_statusz_parses() {
        let server = obs_server();
        let obs = server.obs_addr().expect("obs listener running");
        let timeout = Duration::from_secs(2);

        let (status, body) = http_get(obs, "/healthz", timeout).unwrap();
        assert_eq!((status, body.as_str()), (200, "ok\n"));

        let (status, body) = http_get(obs, "/readyz", timeout).unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("epoch=1"), "{body}");

        let (status, body) = http_get(obs, "/metrics", timeout).unwrap();
        assert_eq!(status, 200);
        sunder_telemetry::parse_prometheus(&body).expect("exposition parses");

        let (status, body) = http_get(obs, "/statusz", timeout).unwrap();
        assert_eq!(status, 200);
        let doc = json::parse(&body).expect("statusz is JSON");
        assert_eq!(doc.get("epoch").and_then(json::Json::as_u64), Some(1));
        assert_eq!(
            doc.get("sessions")
                .and_then(|s| s.get("active"))
                .and_then(json::Json::as_u64),
            Some(0)
        );

        let (status, _) = http_get(obs, "/nope", timeout).unwrap();
        assert_eq!(status, 404);
    }

    #[test]
    fn ready_state_flips_on_drain_and_reload_flags() {
        let server = obs_server();
        let inner = &server.inner_for_tests();
        assert_eq!(ready_state(inner).0, 200);
        inner.reloading.store(true, Ordering::Release);
        let (status, body) = ready_state(inner);
        assert_eq!((status, body.as_str()), (503, "reloading\n"));
        inner.reloading.store(false, Ordering::Release);
        inner.draining.store(true, Ordering::Release);
        let (status, body) = ready_state(inner);
        assert_eq!((status, body.as_str()), (503, "draining\n"));
        // Draining wins over reloading in the body, and the real drain
        // path sets the same flag — put it back so drop drains cleanly.
        inner.draining.store(false, Ordering::Release);
    }

    #[test]
    fn stdin_status_and_statusz_are_the_same_document() {
        let server = obs_server();
        let obs = server.obs_addr().unwrap();
        let from_method = server.status_json();
        let (_, from_http) = http_get(obs, "/statusz", Duration::from_secs(2)).unwrap();
        // Same producer; only the volatile uptime field may tick
        // between the two renders.
        let strip = |s: &str| {
            let doc = json::parse(s).unwrap();
            match doc {
                Json::Obj(pairs) => {
                    Json::Obj(pairs.into_iter().filter(|(k, _)| k != "uptime_s").collect())
                }
                other => other,
            }
            .render()
        };
        assert_eq!(strip(&from_method), strip(&from_http));
    }
}
