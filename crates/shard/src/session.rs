//! Streaming sessions: suspend/resume execution across chunk arrivals.
//!
//! A [`StreamSession`] is the unit of state the `sunder serve` daemon
//! keeps per connection: an [`Arc<CompiledPipeline>`] pinned at session
//! open (hot reloads never swap a live session's automaton), the
//! suspended per-shard engine frontier ([`sunder_sim::ShardedState`]),
//! and a [`SymbolFramer`] that buffers the partial symbols a chunk
//! boundary can leave behind. Between chunks the session holds **no
//! engine** — just the frontier, a few dozen bytes for typical automata —
//! so millions of idle streams cost almost nothing. Feeding a chunk
//! rebuilds the per-shard engines from the pipeline's shared compiled
//! tables, resumes them from the suspended frontier, runs exactly the
//! chunk's complete cycles, and suspends again.
//!
//! The framing rules make a chunked run byte-identical to a whole-input
//! run, no matter where the boundaries fall:
//!
//! * the engine cycle clock is global across chunks, so report cycles
//!   (and thus [`ReportEvent::symbol_position`]) match the monolithic run;
//! * symbols that do not fill a complete stride vector are buffered, not
//!   padded — padding happens exactly once, at [`StreamSession::finish`],
//!   mirroring the tail handling of a one-shot [`InputView`];
//! * for 16-bit symbols an odd trailing byte is carried to the next
//!   chunk, so a mid-symbol split never fabricates a `hi|00` pair.

use std::sync::Arc;

use sunder_automata::input::{nibbles_of_bytes, InputView};
use sunder_automata::AutomataError;
use sunder_resilience::{Budget, RunOutcome, StopReason};
use sunder_sim::{ShardedState, TraceSink};
use sunder_transform::MisalignedReport;

use crate::cache::CompiledPipeline;

/// Re-frames an arbitrary byte-chunk stream into complete-cycle
/// [`InputView`]s for a given `(symbol_bits, stride)` pipeline.
///
/// # Examples
///
/// ```
/// use sunder_shard::SymbolFramer;
///
/// // 4-bit symbols, stride 2: each byte is exactly one cycle.
/// let mut framer = SymbolFramer::new(4, 2)?;
/// let ready = framer.push(b"ab").expect("two complete cycles");
/// assert_eq!(ready.num_cycles(), 2);
/// assert!(framer.finish().is_none(), "nothing left over");
/// # Ok::<(), sunder_automata::AutomataError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SymbolFramer {
    symbol_bits: u8,
    stride: usize,
    /// 16-bit symbols only: first byte of a pair split across chunks.
    carry: Option<u8>,
    /// Symbols of the trailing incomplete cycle (`len < stride`).
    pending: Vec<u16>,
}

impl SymbolFramer {
    /// A framer for `symbol_bits`-wide symbols at `stride` per cycle.
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::UnsupportedWidth`] unless `symbol_bits`
    /// is 4, 8, or 16 (the widths [`InputView`] supports).
    pub fn new(symbol_bits: u8, stride: usize) -> Result<SymbolFramer, AutomataError> {
        assert!(stride >= 1, "stride must be at least 1");
        if !matches!(symbol_bits, 4 | 8 | 16) {
            return Err(AutomataError::UnsupportedWidth(symbol_bits));
        }
        Ok(SymbolFramer {
            symbol_bits,
            stride,
            carry: None,
            pending: Vec::new(),
        })
    }

    /// Symbols buffered waiting for a complete cycle.
    pub fn buffered_symbols(&self) -> usize {
        self.pending.len()
    }

    /// `true` when no partial symbol or partial cycle is buffered.
    pub fn is_drained(&self) -> bool {
        self.carry.is_none() && self.pending.is_empty()
    }

    /// Absorbs `chunk` and returns a view over every *complete* cycle now
    /// available (buffered remainder + chunk), or `None` if the chunk did
    /// not complete any cycle. The returned view never contains padding.
    pub fn push(&mut self, chunk: &[u8]) -> Option<InputView> {
        let mut symbols = std::mem::take(&mut self.pending);
        match self.symbol_bits {
            4 => symbols.extend(nibbles_of_bytes(chunk).into_iter().map(u16::from)),
            8 => symbols.extend(chunk.iter().map(|&b| u16::from(b))),
            16 => {
                let mut bytes = chunk;
                if let Some(hi) = self.carry.take() {
                    if let Some((&lo, rest)) = bytes.split_first() {
                        symbols.push(u16::from(hi) << 8 | u16::from(lo));
                        bytes = rest;
                    } else {
                        self.carry = Some(hi);
                    }
                }
                let mut pairs = bytes.chunks_exact(2);
                for p in &mut pairs {
                    symbols.push(u16::from(p[0]) << 8 | u16::from(p[1]));
                }
                if let [odd] = pairs.remainder() {
                    debug_assert!(self.carry.is_none());
                    self.carry = Some(*odd);
                }
            }
            _ => unreachable!("validated in SymbolFramer::new"),
        }
        let complete = symbols.len() - symbols.len() % self.stride;
        self.pending = symbols.split_off(complete);
        if symbols.is_empty() {
            return None;
        }
        Some(InputView::from_symbols(symbols, self.stride))
    }

    /// Flushes the buffered remainder as a final (padded) partial view,
    /// exactly as a one-shot [`InputView`] would pad its tail. `None`
    /// when the stream ended on a cycle boundary.
    pub fn finish(&mut self) -> Option<InputView> {
        let mut symbols = std::mem::take(&mut self.pending);
        if let Some(hi) = self.carry.take() {
            // Odd trailing byte of a 16-bit stream: high byte real,
            // low byte zero — InputView::new does the same.
            symbols.push(u16::from(hi) << 8);
        }
        if symbols.is_empty() {
            return None;
        }
        Some(InputView::from_symbols(symbols, self.stride))
    }
}

/// Why a session operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// A previous chunk failed; the engine state is unusable.
    Poisoned,
    /// [`StreamSession::finish`] was already called.
    AlreadyFinished,
    /// The chunk's execution budget tripped (deadline or cancellation).
    /// The suspended frontier was NOT advanced by the failed chunk.
    Interrupted(StopReason),
    /// A transformed report position did not fold back to an original
    /// symbol — a pipeline bug surfaced mid-stream.
    Misaligned(MisalignedReport),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Poisoned => f.write_str("session poisoned by an earlier failure"),
            SessionError::AlreadyFinished => f.write_str("session already finished"),
            SessionError::Interrupted(reason) => write!(f, "chunk interrupted: {reason}"),
            SessionError::Misaligned(m) => write!(f, "misaligned report: {m}"),
        }
    }
}

impl std::error::Error for SessionError {}

/// End-of-stream accounting returned by [`StreamSession::finish`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionSummary {
    /// Chunks fed (excluding the implicit finish flush).
    pub chunks: u64,
    /// Input bytes fed.
    pub bytes: u64,
    /// Reports emitted over the whole stream.
    pub reports: u64,
    /// Pipeline epoch the session executed on.
    pub epoch: u64,
}

/// One suspended match stream over a pinned compiled pipeline.
pub struct StreamSession {
    pipeline: Arc<CompiledPipeline>,
    epoch: u64,
    framer: SymbolFramer,
    state: ShardedState,
    chunks: u64,
    bytes: u64,
    reports: u64,
    finished: bool,
    poisoned: bool,
}

impl std::fmt::Debug for StreamSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamSession")
            .field("key", &self.pipeline.key)
            .field("epoch", &self.epoch)
            .field("chunks", &self.chunks)
            .field("bytes", &self.bytes)
            .field("reports", &self.reports)
            .field("frontier", &self.state.frontier_len())
            .field("finished", &self.finished)
            .field("poisoned", &self.poisoned)
            .finish()
    }
}

impl StreamSession {
    /// Opens a session on `pipeline`, pinning it for the session's
    /// lifetime. `epoch` tags which hot-reload generation the pipeline
    /// came from (attribution only; the pin is the `Arc` itself).
    pub fn new(pipeline: Arc<CompiledPipeline>, epoch: u64) -> StreamSession {
        let framer = SymbolFramer::new(pipeline.nfa.symbol_bits(), pipeline.nfa.stride())
            .expect("compiled pipelines only use supported widths");
        let state = pipeline.sharded.initial_state();
        StreamSession {
            pipeline,
            epoch,
            framer,
            state,
            chunks: 0,
            bytes: 0,
            reports: 0,
            finished: false,
            poisoned: false,
        }
    }

    /// The pinned pipeline.
    pub fn pipeline(&self) -> &Arc<CompiledPipeline> {
        &self.pipeline
    }

    /// The pipeline epoch pinned at open.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Chunks fed so far.
    pub fn chunks(&self) -> u64 {
        self.chunks
    }

    /// Bytes fed so far.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Reports emitted so far.
    pub fn reports(&self) -> u64 {
        self.reports
    }

    /// Total suspended frontier size across shards (a gauge of how much
    /// match state the stream is carrying between chunks).
    pub fn frontier_len(&self) -> usize {
        self.state.frontier_len()
    }

    /// `true` once [`StreamSession::finish`] has run.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// `true` once a chunk has failed; all further operations error.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Feeds one chunk, returning the reports it completed in
    /// **original-symbol coordinates** as `(position, rule id)` pairs,
    /// ordered exactly as the monolithic trace orders them.
    ///
    /// # Errors
    ///
    /// [`SessionError::Interrupted`] when `budget` trips mid-chunk (the
    /// suspended frontier is left at the pre-chunk state and the session
    /// is poisoned — the stream's remaining reports cannot be trusted);
    /// [`SessionError::Poisoned`] / [`SessionError::AlreadyFinished`] for
    /// use after failure or finish.
    pub fn feed(&mut self, chunk: &[u8], budget: &Budget) -> Result<Vec<(u64, u32)>, SessionError> {
        self.check_open()?;
        self.chunks += 1;
        self.bytes += chunk.len() as u64;
        let Some(view) = self.framer.push(chunk) else {
            return Ok(Vec::new());
        };
        self.run_view(&view, budget)
    }

    /// Ends the stream: flushes the buffered partial cycle (padded, as a
    /// one-shot run would pad its tail) and returns its reports plus the
    /// whole-stream accounting.
    ///
    /// # Errors
    ///
    /// Same taxonomy as [`StreamSession::feed`].
    pub fn finish(
        &mut self,
        budget: &Budget,
    ) -> Result<(Vec<(u64, u32)>, SessionSummary), SessionError> {
        self.check_open()?;
        let tail = match self.framer.finish() {
            Some(view) => self.run_view(&view, budget)?,
            None => Vec::new(),
        };
        self.finished = true;
        Ok((
            tail,
            SessionSummary {
                chunks: self.chunks,
                bytes: self.bytes,
                reports: self.reports,
                epoch: self.epoch,
            },
        ))
    }

    fn check_open(&self) -> Result<(), SessionError> {
        if self.poisoned {
            return Err(SessionError::Poisoned);
        }
        if self.finished {
            return Err(SessionError::AlreadyFinished);
        }
        Ok(())
    }

    fn run_view(
        &mut self,
        view: &InputView,
        budget: &Budget,
    ) -> Result<Vec<(u64, u32)>, SessionError> {
        let mut trace = TraceSink::new();
        let outcome = self
            .pipeline
            .sharded
            .run_chunk(view, &mut trace, &mut self.state, budget);
        if let RunOutcome::Interrupted { reason, .. } = outcome {
            self.poisoned = true;
            return Err(SessionError::Interrupted(reason));
        }
        let stride = self.pipeline.nfa.stride();
        let mut out = Vec::with_capacity(trace.events.len());
        for event in &trace.events {
            let pos = self
                .pipeline
                .map
                .to_original(event.symbol_position(stride))
                .map_err(|m| {
                    self.poisoned = true;
                    SessionError::Misaligned(m)
                })?;
            out.push((pos, event.info.id));
        }
        self.reports += out.len() as u64;
        Ok(out)
    }
}

/// The whole-input reference a chunked session must reproduce: runs
/// `input` monolithically through `pipeline`'s transformed automaton and
/// folds the trace to original-symbol `(position, rule id)` coordinates.
///
/// # Errors
///
/// Returns input framing errors.
pub fn expected_reports(
    pipeline: &CompiledPipeline,
    input: &[u8],
) -> Result<Vec<(u64, u32)>, AutomataError> {
    let events = crate::monolithic_trace(pipeline, pipeline.sharded.kind(), input)?;
    let stride = pipeline.nfa.stride();
    Ok(events
        .iter()
        .map(|e| {
            let pos = pipeline
                .map
                .to_original(e.symbol_position(stride))
                .expect("compiled pipelines report on aligned positions");
            (pos, e.info.id)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::ShardSpec;
    use sunder_automata::regex::compile_rule_set;
    use sunder_oracle::PipelineConfig;
    use sunder_resilience::CancelToken;
    use sunder_sim::EngineKind;

    fn pipeline(config: PipelineConfig) -> Arc<CompiledPipeline> {
        let nfa = compile_rule_set(&["ab+c", "[0-9]{3}", ".*net"]).unwrap();
        Arc::new(
            CompiledPipeline::compile(&nfa, config, ShardSpec::MaxShards(4), EngineKind::Adaptive)
                .unwrap(),
        )
    }

    const INPUT: &[u8] = b"zab-bc 192net abbbc 007xyq xy123net q";

    #[test]
    fn chunked_session_matches_whole_run_for_every_config() {
        for config in PipelineConfig::ALL {
            let p = pipeline(config);
            let expected = expected_reports(&p, INPUT).unwrap();
            assert!(!expected.is_empty(), "{config:?}");
            // Chunk sizes chosen to split mid-cycle for every config:
            // 1-byte chunks split stride-2 nibble cycles; 3-byte chunks
            // split stride-4 cycles.
            for chunk_size in [1usize, 2, 3, 5, INPUT.len()] {
                let mut session = StreamSession::new(Arc::clone(&p), 1);
                let mut got = Vec::new();
                for chunk in INPUT.chunks(chunk_size) {
                    got.extend(session.feed(chunk, &Budget::unlimited()).unwrap());
                }
                let (tail, summary) = session.finish(&Budget::unlimited()).unwrap();
                got.extend(tail);
                assert_eq!(got, expected, "{config:?} chunk_size={chunk_size}");
                assert_eq!(summary.bytes, INPUT.len() as u64);
                assert_eq!(summary.reports, expected.len() as u64);
            }
        }
    }

    #[test]
    fn empty_chunks_are_harmless() {
        let p = pipeline(PipelineConfig::Stride2);
        let expected = expected_reports(&p, INPUT).unwrap();
        let mut session = StreamSession::new(Arc::clone(&p), 1);
        let mut got = Vec::new();
        got.extend(session.feed(&[], &Budget::unlimited()).unwrap());
        for chunk in INPUT.chunks(7) {
            got.extend(session.feed(chunk, &Budget::unlimited()).unwrap());
            got.extend(session.feed(&[], &Budget::unlimited()).unwrap());
        }
        let (tail, _) = session.finish(&Budget::unlimited()).unwrap();
        got.extend(tail);
        assert_eq!(got, expected);
    }

    #[test]
    fn sixteen_bit_carry_byte_survives_chunk_splits() {
        // A 16-bit automaton via Stride2 on a 16-bit rule set is not a
        // thing the oracle configs build; exercise the framer directly.
        let mut framer = SymbolFramer::new(16, 1).unwrap();
        let whole = InputView::new(&[0xAB, 0xCD, 0xEF], 16, 1).unwrap();
        let mut symbols = Vec::new();
        for chunk in [&[0xAB][..], &[0xCD, 0xEF][..]] {
            if let Some(v) = framer.push(chunk) {
                symbols.extend_from_slice(v.symbols());
            }
        }
        if let Some(v) = framer.finish() {
            symbols.extend_from_slice(v.symbols());
        }
        assert_eq!(symbols, whole.symbols());
    }

    #[test]
    fn framer_rejects_unsupported_widths() {
        assert!(matches!(
            SymbolFramer::new(5, 1),
            Err(AutomataError::UnsupportedWidth(5))
        ));
    }

    #[test]
    fn interrupted_feed_poisons_the_session() {
        let p = pipeline(PipelineConfig::Identity);
        let mut session = StreamSession::new(p, 1);
        let token = CancelToken::new();
        token.cancel();
        let budget = Budget::with_cancel(token).check_every(1);
        let err = session.feed(&[b'x'; 256], &budget).unwrap_err();
        assert!(matches!(
            err,
            SessionError::Interrupted(StopReason::Cancelled)
        ));
        assert!(session.is_poisoned());
        assert_eq!(
            session.feed(b"more", &Budget::unlimited()),
            Err(SessionError::Poisoned)
        );
        assert!(matches!(
            session.finish(&Budget::unlimited()),
            Err(SessionError::Poisoned)
        ));
    }

    #[test]
    fn finishing_twice_errors() {
        let p = pipeline(PipelineConfig::Identity);
        let mut session = StreamSession::new(p, 1);
        session.feed(b"ab", &Budget::unlimited()).unwrap();
        session.finish(&Budget::unlimited()).unwrap();
        assert!(matches!(
            session.finish(&Budget::unlimited()),
            Err(SessionError::AlreadyFinished)
        ));
        assert!(session.is_finished());
    }
}
