//! The chaos client: acts out connection-level faults against a
//! [`MatchServer`](crate::server::MatchServer).
//!
//! Where the worker pool acts out `panic`/`stall` directives *inside*
//! the server, the connection-level [`FaultKind`]s are the client's to
//! perform on the wire: dropping the socket mid-frame, trickling bytes,
//! sending garbage, or demanding a pattern-DB reload in the middle of a
//! burst. [`run_chaos`] drives one session per input stream (tenant
//! `s<INDEX>`, so plan item `i` deterministically targets session `i` on
//! both sides of the wire), all concurrently, and returns a typed
//! [`SessionOutcome`] per session for the harness to judge: survivors
//! must be byte-identical to a whole-input run, victims must have died
//! the way the plan said they would.

use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::Duration;

use sunder_resilience::{FaultKind, FaultPlan};

use crate::frame::{decode_server, read_raw, ClientFrame, ServerFrame, PROTOCOL_VERSION};

/// Read cap for server replies on the chaos client side.
const CLIENT_MAX_FRAME: u32 = 64 * 1024 * 1024;

/// How a chaos session ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionOutcome {
    /// Clean run: `Finish` acknowledged with `Done`.
    Completed {
        /// Pipeline epoch the session pinned (from `HelloAck`).
        epoch: u64,
        /// Every report the server streamed back, in order.
        reports: Vec<(u64, u32)>,
        /// Chunks the server accounted in `Done`.
        chunks: u64,
        /// Bytes the server accounted in `Done`.
        bytes: u64,
    },
    /// The client dropped the connection on purpose (Disconnect fault).
    Disconnected {
        /// Complete chunks delivered before the drop.
        chunks_sent: u64,
    },
    /// The server refused the session at the handshake.
    Refused {
        /// `ERR_*` code from the `Error` frame.
        code: u16,
        /// Server's message.
        message: String,
    },
    /// The server killed the session mid-stream with an `Error` frame
    /// (injected panic, deadline, or our own malformed frame).
    Errored {
        /// `ERR_*` code from the `Error` frame.
        code: u16,
        /// Server's message.
        message: String,
    },
    /// The transport failed outside the protocol (unexpected EOF, I/O).
    Transport(String),
}

impl SessionOutcome {
    /// `true` for sessions that completed cleanly.
    pub fn is_completed(&self) -> bool {
        matches!(self, SessionOutcome::Completed { .. })
    }

    /// Short label for attribution artifacts.
    pub fn label(&self) -> &'static str {
        match self {
            SessionOutcome::Completed { .. } => "completed",
            SessionOutcome::Disconnected { .. } => "disconnected",
            SessionOutcome::Refused { .. } => "refused",
            SessionOutcome::Errored { .. } => "errored",
            SessionOutcome::Transport(_) => "transport",
        }
    }
}

/// Knobs for [`run_chaos`].
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// Chunk size for sessions with no overriding fault.
    pub chunk_size: usize,
    /// ANML payload `ReloadDuringBurst` sessions send.
    pub reload_anml: Option<String>,
    /// Client-side read timeout (a hung server fails the session rather
    /// than the harness).
    pub read_timeout: Duration,
}

impl Default for ChaosOptions {
    fn default() -> ChaosOptions {
        ChaosOptions {
            chunk_size: 64,
            reload_anml: None,
            read_timeout: Duration::from_secs(30),
        }
    }
}

/// Runs one chaos session per input, concurrently; returns the outcomes
/// indexed like `inputs`. Session `i` connects as tenant `s<i>` and acts
/// out the connection-level faults `plan` assigns to item `i`.
pub fn run_chaos(
    addr: SocketAddr,
    inputs: &[Vec<u8>],
    plan: &FaultPlan,
    opts: &ChaosOptions,
) -> Vec<SessionOutcome> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = inputs
            .iter()
            .enumerate()
            .map(|(i, input)| {
                let faults: Vec<FaultKind> = plan.faults_for(i).cloned().collect();
                let opts = opts.clone();
                scope.spawn(move || run_session(addr, i, input, &faults, &opts))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| SessionOutcome::Transport("client panicked".into()))
            })
            .collect()
    })
}

/// Runs one session against `addr` as tenant `s<index>`, acting out
/// `faults`. Lock-step protocol: every `Chunk` waits for its `Reports`
/// reply, so outcomes are deterministic.
pub fn run_session(
    addr: SocketAddr,
    index: usize,
    input: &[u8],
    faults: &[FaultKind],
    opts: &ChaosOptions,
) -> SessionOutcome {
    let mut disconnect_after: Option<u64> = None;
    let mut reload_after: Option<u64> = None;
    let mut malformed: Option<u64> = None;
    let mut chunk_size = opts.chunk_size.max(1);
    let mut drip_delay: Option<Duration> = None;
    for kind in faults {
        match kind {
            FaultKind::Disconnect { after_chunks } => disconnect_after = Some(*after_chunks),
            FaultKind::ReloadDuringBurst { after_chunks } => reload_after = Some(*after_chunks),
            FaultKind::MalformedFrame { mode } => malformed = Some(*mode),
            FaultKind::SlowDrip {
                chunk_bytes,
                delay_millis,
            } => {
                chunk_size = (*chunk_bytes).max(1) as usize;
                drip_delay = Some(Duration::from_millis(*delay_millis));
            }
            // Worker-level faults are the server's to act out.
            _ => {}
        }
    }

    let sock = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(e) => return SessionOutcome::Transport(format!("connect: {e}")),
    };
    let _ = sock.set_read_timeout(Some(opts.read_timeout));
    let mut reader = match sock.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(e) => return SessionOutcome::Transport(format!("clone socket: {e}")),
    };
    let mut writer = BufWriter::new(&sock);

    let send = |writer: &mut BufWriter<&TcpStream>, frame: &ClientFrame| -> Result<(), String> {
        frame
            .write_to(writer)
            .and_then(|()| writer.flush())
            .map_err(|e| format!("send: {e}"))
    };
    let recv = |reader: &mut BufReader<TcpStream>| -> Result<ServerFrame, String> {
        let body = read_raw(reader, CLIENT_MAX_FRAME)
            .map_err(|e| format!("recv: {e}"))?
            .ok_or_else(|| "recv: server closed the connection".to_string())?;
        decode_server(&body).map_err(|e| format!("recv: {e}"))
    };

    // Malformed mode 4: a Hello with a protocol version from the future.
    let version = if malformed == Some(4) {
        PROTOCOL_VERSION + 1
    } else {
        PROTOCOL_VERSION
    };
    if let Err(e) = send(
        &mut writer,
        &ClientFrame::Hello {
            version,
            tenant: format!("s{index}"),
        },
    ) {
        return SessionOutcome::Transport(e);
    }
    let epoch = match recv(&mut reader) {
        Ok(ServerFrame::HelloAck { epoch, .. }) => epoch,
        Ok(ServerFrame::Error { code, message }) => {
            return SessionOutcome::Refused { code, message }
        }
        Ok(other) => {
            return SessionOutcome::Transport(format!("unexpected handshake reply: {other:?}"))
        }
        Err(e) => return SessionOutcome::Transport(e),
    };

    let mut reports: Vec<(u64, u32)> = Vec::new();
    let mut chunks_sent = 0u64;
    for chunk in input.chunks(chunk_size) {
        // Act out scheduled mid-stream faults *before* the next chunk.
        if disconnect_after == Some(chunks_sent) {
            // A deliberately partial frame: full length prefix, torn body.
            let _ = writer.write_all(&64u32.to_be_bytes());
            let _ = writer.write_all(&[0x02, 0xAA, 0xBB]);
            let _ = writer.flush();
            let _ = sock.shutdown(Shutdown::Both);
            return SessionOutcome::Disconnected { chunks_sent };
        }
        if reload_after == Some(chunks_sent) {
            if let Some(anml) = &opts.reload_anml {
                if let Err(e) = send(&mut writer, &ClientFrame::Reload(anml.clone())) {
                    return SessionOutcome::Transport(e);
                }
                match recv(&mut reader) {
                    Ok(ServerFrame::Reloaded { .. }) => {}
                    Ok(ServerFrame::Error { code, message }) => {
                        return SessionOutcome::Errored { code, message }
                    }
                    Ok(other) => {
                        return SessionOutcome::Transport(format!(
                            "unexpected reload reply: {other:?}"
                        ))
                    }
                    Err(e) => return SessionOutcome::Transport(e),
                }
            }
        }
        if malformed.is_some_and(|m| m != 4) && chunks_sent == 1 {
            let mode = malformed.unwrap();
            let garbage_sent = write_malformed(&mut writer, mode);
            if garbage_sent {
                if mode == 3 {
                    // Half-close so the server's read_exact sees EOF and
                    // diagnoses the truncation instead of waiting for the
                    // 13 bytes that will never come.
                    let _ = sock.shutdown(Shutdown::Write);
                }
                // The server must answer with a typed Error, not hang.
                return match recv(&mut reader) {
                    Ok(ServerFrame::Error { code, message }) => {
                        SessionOutcome::Errored { code, message }
                    }
                    Ok(other) => {
                        SessionOutcome::Transport(format!("unexpected garbage reply: {other:?}"))
                    }
                    Err(e) => SessionOutcome::Transport(e),
                };
            }
        }
        if let Some(delay) = drip_delay {
            std::thread::sleep(delay);
        }
        if let Err(e) = send(&mut writer, &ClientFrame::Chunk(chunk.to_vec())) {
            return SessionOutcome::Transport(e);
        }
        chunks_sent += 1;
        match recv(&mut reader) {
            Ok(ServerFrame::Reports(r)) => reports.extend(r),
            Ok(ServerFrame::Error { code, message }) => {
                return SessionOutcome::Errored { code, message }
            }
            Ok(other) => {
                return SessionOutcome::Transport(format!("unexpected chunk reply: {other:?}"))
            }
            Err(e) => return SessionOutcome::Transport(e),
        }
    }
    if disconnect_after == Some(chunks_sent) {
        let _ = sock.shutdown(Shutdown::Both);
        return SessionOutcome::Disconnected { chunks_sent };
    }

    if let Err(e) = send(&mut writer, &ClientFrame::Finish) {
        return SessionOutcome::Transport(e);
    }
    let tail = match recv(&mut reader) {
        Ok(ServerFrame::Reports(r)) => r,
        Ok(ServerFrame::Error { code, message }) => {
            return SessionOutcome::Errored { code, message }
        }
        Ok(other) => return SessionOutcome::Transport(format!("unexpected tail reply: {other:?}")),
        Err(e) => return SessionOutcome::Transport(e),
    };
    reports.extend(tail);
    match recv(&mut reader) {
        Ok(ServerFrame::Done { chunks, bytes, .. }) => SessionOutcome::Completed {
            epoch,
            reports,
            chunks,
            bytes,
        },
        Ok(ServerFrame::Error { code, message }) => SessionOutcome::Errored { code, message },
        Ok(other) => SessionOutcome::Transport(format!("unexpected done reply: {other:?}")),
        Err(e) => SessionOutcome::Transport(e),
    }
}

/// Writes one malformed frame per `mode`. Returns `false` if the mode is
/// unknown (treated as no-op so plans stay forward-compatible).
fn write_malformed(writer: &mut impl Write, mode: u64) -> bool {
    let ok = match mode {
        // Zero-length frame.
        0 => writer.write_all(&0u32.to_be_bytes()),
        // Oversized declared length (body never sent).
        1 => writer.write_all(&u32::MAX.to_be_bytes()),
        // Unknown opcode.
        2 => writer
            .write_all(&1u32.to_be_bytes())
            .and_then(|()| writer.write_all(&[0x7F])),
        // Truncated body: declares 16 bytes, sends 3, then half-closes
        // so the server's read_exact hits EOF.
        3 => writer
            .write_all(&16u32.to_be_bytes())
            .and_then(|()| writer.write_all(&[0x02, 1, 2])),
        _ => return false,
    };
    ok.and_then(|()| writer.flush()).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_labels_are_stable() {
        assert_eq!(
            SessionOutcome::Completed {
                epoch: 1,
                reports: vec![],
                chunks: 0,
                bytes: 0
            }
            .label(),
            "completed"
        );
        assert_eq!(
            SessionOutcome::Disconnected { chunks_sent: 2 }.label(),
            "disconnected"
        );
        assert_eq!(SessionOutcome::Transport("x".into()).label(), "transport");
    }
}
