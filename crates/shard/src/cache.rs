//! Content-addressed cache of compiled execution pipelines.
//!
//! Compiling a pipeline — FlexAmata nibble decomposition, temporal
//! striding, partitioning into shards — dominates the setup cost of a
//! batch submission and depends only on the automaton and the pipeline
//! configuration, never on the input streams. The cache keys a compiled
//! artifact by a 64-bit FNV-1a hash over the canonical textual (ANML)
//! serialization of the source automaton, the configuration name, and
//! the sharding spec, so repeated stream submissions against the same
//! rule set skip re-transformation entirely.
//!
//! The canonical serialization makes the key *content*-addressed: two
//! structurally identical automata hash identically no matter how they
//! were built. Hits and misses are exported as the
//! `pipeline_cache_hits_total` / `pipeline_cache_misses_total` telemetry
//! counters.
//!
//! With [`PipelineCache::with_disk`] the cache gains a second,
//! process-crossing tier: every compilation is written through as a
//! `<key>.sdb` artifact (`sunder-artifact` format), and a memory miss
//! first tries to *map* `dir/<key>.sdb` — validated, zero-copy — before
//! falling back to compilation. A stale, corrupt, or mismatched file is
//! simply ignored (the loader's typed rejection is the safety gate), so
//! the disk tier can never make a lookup fail that compilation would
//! have satisfied. Disk hits are counted separately
//! (`pipeline_cache_disk_hits_total`).

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use sunder_artifact::{DbParts, LoadedPipeline, MappedDb, SpecParams};
use sunder_automata::partition::{partition, partition_into, PartitionOptions, ShardPlan};
use sunder_automata::{anml, AutomataError, Nfa};
use sunder_oracle::PipelineConfig;
use sunder_sim::{EngineKind, ShardedEngine};
use sunder_transform::PositionMap;

/// How a cached pipeline is sharded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardSpec {
    /// Balance into at most this many shards
    /// ([`sunder_automata::partition::partition_into`]).
    MaxShards(usize),
    /// Pack toward a per-shard STE budget
    /// ([`sunder_automata::partition::partition`]).
    Budget(PartitionOptions),
}

impl ShardSpec {
    fn apply(self, nfa: &Nfa) -> Result<ShardPlan, AutomataError> {
        match self {
            ShardSpec::MaxShards(k) => partition_into(nfa, k),
            ShardSpec::Budget(opts) => partition(nfa, &opts),
        }
    }

    /// The artifact-layer form of this spec (what `.sdb` files persist).
    pub fn params(self) -> SpecParams {
        match self {
            ShardSpec::MaxShards(k) => SpecParams::MaxShards(k),
            ShardSpec::Budget(opts) => SpecParams::Budget(opts),
        }
    }

    /// Stable text folded into the cache key. Delegates to
    /// [`SpecParams::key_text`] so the in-memory key and the on-disk
    /// artifact key can never drift apart.
    pub fn key_text(self) -> String {
        self.params().key_text()
    }
}

impl From<SpecParams> for ShardSpec {
    fn from(params: SpecParams) -> ShardSpec {
        match params {
            SpecParams::MaxShards(k) => ShardSpec::MaxShards(k),
            SpecParams::Budget(opts) => ShardSpec::Budget(opts),
        }
    }
}

/// A 64-bit content hash identifying one compiled pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PipelineKey(pub u64);

impl std::fmt::Display for PipelineKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(parts: &[&str]) -> u64 {
    let mut h = FNV_OFFSET;
    for part in parts {
        for &b in part.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        // Separator byte so ("ab","c") and ("a","bc") differ.
        h ^= 0xff;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Computes the content-addressed key for (automaton, config, sharding,
/// engine). Exposed so artifacts can be correlated across processes.
pub fn pipeline_key(
    nfa: &Nfa,
    config: PipelineConfig,
    spec: ShardSpec,
    engine: EngineKind,
) -> PipelineKey {
    PipelineKey(fnv1a(&[
        config.name(),
        &spec.key_text(),
        engine.name(),
        &anml::serialize(nfa),
    ]))
}

/// One compiled pipeline: the transformed automaton, the position map
/// folding its reports back to original-symbol coordinates, and the
/// sharded engine ready to execute it.
#[derive(Debug, Clone)]
pub struct CompiledPipeline {
    /// The content hash this artifact is cached under.
    pub key: PipelineKey,
    /// The configuration that produced it.
    pub config: PipelineConfig,
    /// The transformed (executable) automaton.
    pub nfa: Nfa,
    /// Folds transformed report positions to original-symbol coordinates.
    pub map: PositionMap,
    /// Sharded execution over the transformed automaton.
    pub sharded: ShardedEngine,
}

impl CompiledPipeline {
    /// Compiles `nfa` under `config`, shards per `spec`, without caching.
    ///
    /// # Errors
    ///
    /// Propagates transformation and partitioning failures.
    pub fn compile(
        nfa: &Nfa,
        config: PipelineConfig,
        spec: ShardSpec,
        engine: EngineKind,
    ) -> Result<CompiledPipeline, AutomataError> {
        let key = pipeline_key(nfa, config, spec, engine);
        let (transformed, map) = config.apply(nfa)?;
        let plan = spec.apply(&transformed)?;
        let sharded = ShardedEngine::from_plan(&transformed, plan, engine);
        Ok(CompiledPipeline {
            key,
            config,
            nfa: transformed,
            map,
            sharded,
        })
    }

    /// Number of shards in the compiled plan.
    pub fn num_shards(&self) -> usize {
        self.sharded.num_shards()
    }
}

impl From<LoadedPipeline> for CompiledPipeline {
    /// Adopts a pipeline loaded from a `.sdb` mapping: the engines keep
    /// borrowing their tables from the mapping (pinned inside the
    /// `ShardedEngine`), no recompilation happens.
    fn from(lp: LoadedPipeline) -> CompiledPipeline {
        CompiledPipeline {
            key: PipelineKey(lp.key),
            config: lp.config,
            nfa: lp.nfa,
            map: lp.map,
            sharded: lp.sharded,
        }
    }
}

/// Thread-safe content-addressed cache of [`CompiledPipeline`]s.
#[derive(Debug)]
pub struct PipelineCache {
    spec: ShardSpec,
    engine: EngineKind,
    entries: Mutex<HashMap<u64, Arc<CompiledPipeline>>>,
    /// Artifact directory for the disk tier; `None` keeps the cache
    /// memory-only.
    disk: Option<PathBuf>,
    hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    // One (hit, miss) counter-handle pair per PipelineConfig, interned
    // at construction: the lookup fast path records one atomic per hit
    // instead of allocating a label set under the registry lock.
    counters: [(
        sunder_telemetry::CounterHandle,
        sunder_telemetry::CounterHandle,
    ); PipelineConfig::ALL.len()],
}

impl PipelineCache {
    /// An empty cache compiling with the given sharding spec and
    /// per-shard engine kind.
    pub fn new(spec: ShardSpec, engine: EngineKind) -> PipelineCache {
        PipelineCache {
            spec,
            engine,
            entries: Mutex::new(HashMap::new()),
            disk: None,
            hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            counters: PipelineConfig::ALL.map(|config| {
                let labels = [("config", config.name())];
                (
                    sunder_telemetry::counter_handle("pipeline_cache_hits_total", &labels),
                    sunder_telemetry::counter_handle("pipeline_cache_misses_total", &labels),
                )
            }),
        }
    }

    /// A cache with a disk tier rooted at `dir`: compilations are
    /// written through as `<key>.sdb` artifacts and memory misses try to
    /// map an existing artifact before compiling. The directory is
    /// created if absent; artifact i/o failures silently degrade to
    /// memory-only behavior (compilation is always the fallback).
    pub fn with_disk(
        spec: ShardSpec,
        engine: EngineKind,
        dir: impl Into<PathBuf>,
    ) -> PipelineCache {
        let dir = dir.into();
        let _ = std::fs::create_dir_all(&dir);
        let mut cache = PipelineCache::new(spec, engine);
        cache.disk = Some(dir);
        cache
    }

    /// The on-disk artifact path for `key`, when a disk tier is set.
    pub fn disk_path(&self, key: PipelineKey) -> Option<PathBuf> {
        self.disk.as_ref().map(|d| d.join(format!("{key}.sdb")))
    }

    /// Tries the disk tier: map, validate, and adopt `dir/<key>.sdb`.
    /// Any failure — absent file, corruption, stale hash, or a database
    /// whose identity does not match the requested key — returns `None`.
    fn load_from_disk(&self, key: PipelineKey) -> Option<CompiledPipeline> {
        let path = self.disk_path(key)?;
        let mapped = match MappedDb::open(&path) {
            Ok(db) => db,
            Err(e) => {
                if path.exists() {
                    sunder_telemetry::instant(
                        "pipeline_cache.disk_rejected",
                        &[
                            ("key", key.to_string().into()),
                            ("error", e.to_string().into()),
                        ],
                    );
                }
                return None;
            }
        };
        // The loader proved the content hash; this guards the *file
        // name* (a db renamed to the wrong key, or parameters drifting
        // from the cache's own spec/engine).
        if mapped.key() != key.0 {
            return None;
        }
        Some(CompiledPipeline::from(mapped.into_parts()))
    }

    /// Best-effort write-through of a fresh compilation.
    fn store_to_disk(&self, source_anml: &str, compiled: &CompiledPipeline) {
        let Some(path) = self.disk_path(compiled.key) else {
            return;
        };
        let parts = DbParts {
            key: compiled.key.0,
            config: compiled.config,
            spec: self.spec.params(),
            engine: self.engine,
            source_anml,
            nfa: &compiled.nfa,
            map: compiled.map,
            sharded: &compiled.sharded,
        };
        if let Err(e) = sunder_artifact::write_db(&parts, &path) {
            sunder_telemetry::instant(
                "pipeline_cache.disk_write_failed",
                &[("error", e.to_string().into())],
            );
        }
    }

    /// The pre-interned (hit, miss) counter handles for `config`.
    fn config_counters(
        &self,
        config: PipelineConfig,
    ) -> &(
        sunder_telemetry::CounterHandle,
        sunder_telemetry::CounterHandle,
    ) {
        let idx = PipelineConfig::ALL
            .iter()
            .position(|c| *c == config)
            .expect("every PipelineConfig is in ALL");
        &self.counters[idx]
    }

    /// The sharding spec used for compilation.
    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    /// The per-shard engine kind used for compilation.
    pub fn engine(&self) -> EngineKind {
        self.engine
    }

    /// Returns the cached pipeline for (automaton, config), compiling
    /// and inserting it on a miss.
    ///
    /// # Errors
    ///
    /// Propagates compilation failures (nothing is cached on error).
    pub fn get_or_compile(
        &self,
        nfa: &Nfa,
        config: PipelineConfig,
    ) -> Result<Arc<CompiledPipeline>, AutomataError> {
        let key = pipeline_key(nfa, config, self.spec, self.engine);
        let (hits_total, misses_total) = self.config_counters(config);
        if let Some(hit) = self.entries.lock().unwrap().get(&key.0) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            hits_total.add(1);
            return Ok(Arc::clone(hit));
        }
        // Disk tier: map a persisted artifact instead of recompiling.
        if let Some(loaded) = self.load_from_disk(key) {
            self.disk_hits.fetch_add(1, Ordering::Relaxed);
            sunder_telemetry::counter_add(
                "pipeline_cache_disk_hits_total",
                &[("config", config.name())],
                1,
            );
            let loaded = Arc::new(loaded);
            self.entries
                .lock()
                .unwrap()
                .insert(key.0, Arc::clone(&loaded));
            return Ok(loaded);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        misses_total.add(1);
        let compiled = Arc::new(CompiledPipeline::compile(
            nfa,
            config,
            self.spec,
            self.engine,
        )?);
        debug_assert_eq!(compiled.key, key);
        if self.disk.is_some() {
            self.store_to_disk(&anml::serialize(nfa), &compiled);
        }
        // Two racing compilers produce identical artifacts (compilation
        // is deterministic), so last-insert-wins is safe.
        self.entries
            .lock()
            .unwrap()
            .insert(key.0, Arc::clone(&compiled));
        Ok(compiled)
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Disk-tier hits (artifacts mapped instead of recompiled) so far.
    pub fn disk_hits(&self) -> u64 {
        self.disk_hits.load(Ordering::Relaxed)
    }

    /// Cache misses (= compilations) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of cached pipelines.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// `true` when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sunder_automata::regex::compile_rule_set;

    fn cache() -> PipelineCache {
        PipelineCache::new(ShardSpec::MaxShards(4), EngineKind::Adaptive)
    }

    #[test]
    fn repeated_submissions_hit_the_cache() {
        let nfa = compile_rule_set(&["abc", "de+f"]).unwrap();
        let c = cache();
        let a = c.get_or_compile(&nfa, PipelineConfig::Nibble).unwrap();
        let b = c.get_or_compile(&nfa, PipelineConfig::Nibble).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup must not recompile");
        assert_eq!((c.hits(), c.misses(), c.len()), (1, 1, 1));
    }

    #[test]
    fn key_is_content_addressed_not_identity_addressed() {
        // Build the same automaton twice through different calls: the
        // canonical serialization makes the keys collide (that's the point).
        let a = compile_rule_set(&["xy", "z{2}"]).unwrap();
        let b = compile_rule_set(&["xy", "z{2}"]).unwrap();
        let spec = ShardSpec::MaxShards(2);
        assert_eq!(
            pipeline_key(&a, PipelineConfig::Stride2, spec, EngineKind::Dense),
            pipeline_key(&b, PipelineConfig::Stride2, spec, EngineKind::Dense),
        );
    }

    #[test]
    fn distinct_configs_get_distinct_artifacts() {
        let nfa = compile_rule_set(&["abc"]).unwrap();
        let c = cache();
        for config in PipelineConfig::ALL {
            c.get_or_compile(&nfa, config).unwrap();
        }
        assert_eq!(c.len(), 4);
        assert_eq!(c.misses(), 4);
        let keys: std::collections::HashSet<u64> = PipelineConfig::ALL
            .iter()
            .map(|&cfg| pipeline_key(&nfa, cfg, ShardSpec::MaxShards(4), EngineKind::Adaptive).0)
            .collect();
        assert_eq!(keys.len(), 4, "keys must not collide across configs");
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "sunder-cache-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn cache_key_matches_artifact_key() {
        // The disk tier only works if the in-memory key and the artifact
        // key are bit-identical — pin the cross-crate contract.
        let nfa = compile_rule_set(&["ab+c", ".*net"]).unwrap();
        for (spec, engine) in [
            (ShardSpec::MaxShards(3), EngineKind::Sparse),
            (
                ShardSpec::Budget(PartitionOptions {
                    ste_budget: 64,
                    oversize: sunder_automata::partition::OversizePolicy::Dedicate,
                }),
                EngineKind::Adaptive,
            ),
        ] {
            for config in PipelineConfig::ALL {
                assert_eq!(
                    pipeline_key(&nfa, config, spec, engine).0,
                    sunder_artifact::db_key(&nfa, config, &spec.params(), engine),
                    "shard cache key and artifact key diverged"
                );
            }
        }
    }

    #[test]
    fn disk_tier_maps_instead_of_recompiling() {
        let dir = temp_dir("disk");
        let nfa = compile_rule_set(&["abc", "de+f"]).unwrap();

        // First cache: compiles and writes through.
        let c1 = PipelineCache::with_disk(ShardSpec::MaxShards(2), EngineKind::Sparse, &dir);
        let a = c1.get_or_compile(&nfa, PipelineConfig::Nibble).unwrap();
        assert_eq!((c1.misses(), c1.disk_hits()), (1, 0));
        let path = c1.disk_path(a.key).unwrap();
        assert!(path.exists(), "write-through must persist {path:?}");

        // Fresh cache, same dir: the artifact satisfies the lookup.
        let c2 = PipelineCache::with_disk(ShardSpec::MaxShards(2), EngineKind::Sparse, &dir);
        let b = c2.get_or_compile(&nfa, PipelineConfig::Nibble).unwrap();
        assert_eq!(
            (c2.misses(), c2.disk_hits()),
            (0, 1),
            "must map, not compile"
        );
        assert_eq!(a.key, b.key);
        let input = b"xxabcxdeefxx";
        assert_eq!(
            a.sharded.run_trace(input).unwrap(),
            b.sharded.run_trace(input).unwrap(),
            "mapped pipeline must execute identically"
        );
        // Second lookup on the same cache is a plain memory hit.
        let c = c2.get_or_compile(&nfa, PipelineConfig::Nibble).unwrap();
        assert!(Arc::ptr_eq(&b, &c));
        assert_eq!(c2.hits(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_disk_artifact_falls_back_to_compilation() {
        let dir = temp_dir("corrupt");
        let nfa = compile_rule_set(&["xy+z"]).unwrap();
        let c1 = PipelineCache::with_disk(ShardSpec::MaxShards(1), EngineKind::Sparse, &dir);
        let a = c1.get_or_compile(&nfa, PipelineConfig::Identity).unwrap();
        let path = c1.disk_path(a.key).unwrap();

        // Flip a payload byte: the mapped load must be rejected and the
        // lookup must silently recompile (and repair the artifact).
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xA5;
        std::fs::write(&path, &bytes).unwrap();

        let c2 = PipelineCache::with_disk(ShardSpec::MaxShards(1), EngineKind::Sparse, &dir);
        let b = c2.get_or_compile(&nfa, PipelineConfig::Identity).unwrap();
        assert_eq!(
            (c2.misses(), c2.disk_hits()),
            (1, 0),
            "corrupt file must not hit"
        );
        assert_eq!(a.key, b.key);
        // The write-through replaced the corrupt file with a good one.
        let c3 = PipelineCache::with_disk(ShardSpec::MaxShards(1), EngineKind::Sparse, &dir);
        c3.get_or_compile(&nfa, PipelineConfig::Identity).unwrap();
        assert_eq!(c3.disk_hits(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn spec_and_engine_are_part_of_the_key() {
        let nfa = compile_rule_set(&["abc"]).unwrap();
        let k1 = pipeline_key(
            &nfa,
            PipelineConfig::Identity,
            ShardSpec::MaxShards(2),
            EngineKind::Sparse,
        );
        let k2 = pipeline_key(
            &nfa,
            PipelineConfig::Identity,
            ShardSpec::MaxShards(4),
            EngineKind::Sparse,
        );
        let k3 = pipeline_key(
            &nfa,
            PipelineConfig::Identity,
            ShardSpec::MaxShards(2),
            EngineKind::Dense,
        );
        assert_ne!(k1, k2);
        assert_ne!(k1, k3);
        assert_eq!(k1.to_string().len(), 16, "zero-padded hex rendering");
    }
}
