//! Content-addressed cache of compiled execution pipelines.
//!
//! Compiling a pipeline — FlexAmata nibble decomposition, temporal
//! striding, partitioning into shards — dominates the setup cost of a
//! batch submission and depends only on the automaton and the pipeline
//! configuration, never on the input streams. The cache keys a compiled
//! artifact by a 64-bit FNV-1a hash over the canonical textual (ANML)
//! serialization of the source automaton, the configuration name, and
//! the sharding spec, so repeated stream submissions against the same
//! rule set skip re-transformation entirely.
//!
//! The canonical serialization makes the key *content*-addressed: two
//! structurally identical automata hash identically no matter how they
//! were built. Hits and misses are exported as the
//! `pipeline_cache_hits_total` / `pipeline_cache_misses_total` telemetry
//! counters.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use sunder_automata::partition::{partition, partition_into, PartitionOptions, ShardPlan};
use sunder_automata::{anml, AutomataError, Nfa};
use sunder_oracle::PipelineConfig;
use sunder_sim::{EngineKind, ShardedEngine};
use sunder_transform::PositionMap;

/// How a cached pipeline is sharded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardSpec {
    /// Balance into at most this many shards
    /// ([`sunder_automata::partition::partition_into`]).
    MaxShards(usize),
    /// Pack toward a per-shard STE budget
    /// ([`sunder_automata::partition::partition`]).
    Budget(PartitionOptions),
}

impl ShardSpec {
    fn apply(self, nfa: &Nfa) -> Result<ShardPlan, AutomataError> {
        match self {
            ShardSpec::MaxShards(k) => partition_into(nfa, k),
            ShardSpec::Budget(opts) => partition(nfa, &opts),
        }
    }

    /// Stable text folded into the cache key.
    fn key_text(self) -> String {
        match self {
            ShardSpec::MaxShards(k) => format!("max-shards={k}"),
            ShardSpec::Budget(o) => format!("budget={} policy={:?}", o.ste_budget, o.oversize),
        }
    }
}

/// A 64-bit content hash identifying one compiled pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PipelineKey(pub u64);

impl std::fmt::Display for PipelineKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(parts: &[&str]) -> u64 {
    let mut h = FNV_OFFSET;
    for part in parts {
        for &b in part.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        // Separator byte so ("ab","c") and ("a","bc") differ.
        h ^= 0xff;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Computes the content-addressed key for (automaton, config, sharding,
/// engine). Exposed so artifacts can be correlated across processes.
pub fn pipeline_key(
    nfa: &Nfa,
    config: PipelineConfig,
    spec: ShardSpec,
    engine: EngineKind,
) -> PipelineKey {
    PipelineKey(fnv1a(&[
        config.name(),
        &spec.key_text(),
        engine.name(),
        &anml::serialize(nfa),
    ]))
}

/// One compiled pipeline: the transformed automaton, the position map
/// folding its reports back to original-symbol coordinates, and the
/// sharded engine ready to execute it.
#[derive(Debug, Clone)]
pub struct CompiledPipeline {
    /// The content hash this artifact is cached under.
    pub key: PipelineKey,
    /// The configuration that produced it.
    pub config: PipelineConfig,
    /// The transformed (executable) automaton.
    pub nfa: Nfa,
    /// Folds transformed report positions to original-symbol coordinates.
    pub map: PositionMap,
    /// Sharded execution over the transformed automaton.
    pub sharded: ShardedEngine,
}

impl CompiledPipeline {
    /// Compiles `nfa` under `config`, shards per `spec`, without caching.
    ///
    /// # Errors
    ///
    /// Propagates transformation and partitioning failures.
    pub fn compile(
        nfa: &Nfa,
        config: PipelineConfig,
        spec: ShardSpec,
        engine: EngineKind,
    ) -> Result<CompiledPipeline, AutomataError> {
        let key = pipeline_key(nfa, config, spec, engine);
        let (transformed, map) = config.apply(nfa)?;
        let plan = spec.apply(&transformed)?;
        let sharded = ShardedEngine::from_plan(&transformed, plan, engine);
        Ok(CompiledPipeline {
            key,
            config,
            nfa: transformed,
            map,
            sharded,
        })
    }

    /// Number of shards in the compiled plan.
    pub fn num_shards(&self) -> usize {
        self.sharded.num_shards()
    }
}

/// Thread-safe content-addressed cache of [`CompiledPipeline`]s.
#[derive(Debug)]
pub struct PipelineCache {
    spec: ShardSpec,
    engine: EngineKind,
    entries: Mutex<HashMap<u64, Arc<CompiledPipeline>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    // One (hit, miss) counter-handle pair per PipelineConfig, interned
    // at construction: the lookup fast path records one atomic per hit
    // instead of allocating a label set under the registry lock.
    counters: [(
        sunder_telemetry::CounterHandle,
        sunder_telemetry::CounterHandle,
    ); PipelineConfig::ALL.len()],
}

impl PipelineCache {
    /// An empty cache compiling with the given sharding spec and
    /// per-shard engine kind.
    pub fn new(spec: ShardSpec, engine: EngineKind) -> PipelineCache {
        PipelineCache {
            spec,
            engine,
            entries: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            counters: PipelineConfig::ALL.map(|config| {
                let labels = [("config", config.name())];
                (
                    sunder_telemetry::counter_handle("pipeline_cache_hits_total", &labels),
                    sunder_telemetry::counter_handle("pipeline_cache_misses_total", &labels),
                )
            }),
        }
    }

    /// The pre-interned (hit, miss) counter handles for `config`.
    fn config_counters(
        &self,
        config: PipelineConfig,
    ) -> &(
        sunder_telemetry::CounterHandle,
        sunder_telemetry::CounterHandle,
    ) {
        let idx = PipelineConfig::ALL
            .iter()
            .position(|c| *c == config)
            .expect("every PipelineConfig is in ALL");
        &self.counters[idx]
    }

    /// The sharding spec used for compilation.
    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    /// The per-shard engine kind used for compilation.
    pub fn engine(&self) -> EngineKind {
        self.engine
    }

    /// Returns the cached pipeline for (automaton, config), compiling
    /// and inserting it on a miss.
    ///
    /// # Errors
    ///
    /// Propagates compilation failures (nothing is cached on error).
    pub fn get_or_compile(
        &self,
        nfa: &Nfa,
        config: PipelineConfig,
    ) -> Result<Arc<CompiledPipeline>, AutomataError> {
        let key = pipeline_key(nfa, config, self.spec, self.engine);
        let (hits_total, misses_total) = self.config_counters(config);
        if let Some(hit) = self.entries.lock().unwrap().get(&key.0) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            hits_total.add(1);
            return Ok(Arc::clone(hit));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        misses_total.add(1);
        let compiled = Arc::new(CompiledPipeline::compile(
            nfa,
            config,
            self.spec,
            self.engine,
        )?);
        debug_assert_eq!(compiled.key, key);
        // Two racing compilers produce identical artifacts (compilation
        // is deterministic), so last-insert-wins is safe.
        self.entries
            .lock()
            .unwrap()
            .insert(key.0, Arc::clone(&compiled));
        Ok(compiled)
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (= compilations) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of cached pipelines.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// `true` when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sunder_automata::regex::compile_rule_set;

    fn cache() -> PipelineCache {
        PipelineCache::new(ShardSpec::MaxShards(4), EngineKind::Adaptive)
    }

    #[test]
    fn repeated_submissions_hit_the_cache() {
        let nfa = compile_rule_set(&["abc", "de+f"]).unwrap();
        let c = cache();
        let a = c.get_or_compile(&nfa, PipelineConfig::Nibble).unwrap();
        let b = c.get_or_compile(&nfa, PipelineConfig::Nibble).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup must not recompile");
        assert_eq!((c.hits(), c.misses(), c.len()), (1, 1, 1));
    }

    #[test]
    fn key_is_content_addressed_not_identity_addressed() {
        // Build the same automaton twice through different calls: the
        // canonical serialization makes the keys collide (that's the point).
        let a = compile_rule_set(&["xy", "z{2}"]).unwrap();
        let b = compile_rule_set(&["xy", "z{2}"]).unwrap();
        let spec = ShardSpec::MaxShards(2);
        assert_eq!(
            pipeline_key(&a, PipelineConfig::Stride2, spec, EngineKind::Dense),
            pipeline_key(&b, PipelineConfig::Stride2, spec, EngineKind::Dense),
        );
    }

    #[test]
    fn distinct_configs_get_distinct_artifacts() {
        let nfa = compile_rule_set(&["abc"]).unwrap();
        let c = cache();
        for config in PipelineConfig::ALL {
            c.get_or_compile(&nfa, config).unwrap();
        }
        assert_eq!(c.len(), 4);
        assert_eq!(c.misses(), 4);
        let keys: std::collections::HashSet<u64> = PipelineConfig::ALL
            .iter()
            .map(|&cfg| pipeline_key(&nfa, cfg, ShardSpec::MaxShards(4), EngineKind::Adaptive).0)
            .collect();
        assert_eq!(keys.len(), 4, "keys must not collide across configs");
    }

    #[test]
    fn spec_and_engine_are_part_of_the_key() {
        let nfa = compile_rule_set(&["abc"]).unwrap();
        let k1 = pipeline_key(
            &nfa,
            PipelineConfig::Identity,
            ShardSpec::MaxShards(2),
            EngineKind::Sparse,
        );
        let k2 = pipeline_key(
            &nfa,
            PipelineConfig::Identity,
            ShardSpec::MaxShards(4),
            EngineKind::Sparse,
        );
        let k3 = pipeline_key(
            &nfa,
            PipelineConfig::Identity,
            ShardSpec::MaxShards(2),
            EngineKind::Dense,
        );
        assert_ne!(k1, k2);
        assert_ne!(k1, k3);
        assert_eq!(k1.to_string().len(), 16, "zero-padded hex rendering");
    }
}
