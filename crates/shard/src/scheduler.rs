//! Work-stealing multi-stream scheduler over a compiled pipeline.
//!
//! A batch is N independent input streams matched against one compiled
//! pipeline. Streams are dealt round-robin onto M per-worker queues; a
//! worker drains its own queue from the front and, when empty, steals
//! from the *back* of a victim's queue (classic deque discipline: owner
//! and thief touch opposite ends, so streams migrate in whole units and
//! the steal count measures actual imbalance).
//!
//! Within a stream, each shard executes under its own panic isolation
//! boundary: a panicking shard is captured as
//! [`JobOutcome::Panicked`] *attributed to that shard* while every other
//! shard — and every other stream — completes normally. Fault injection
//! plugs in through [`sunder_resilience::FaultPlan`] with the flat item
//! index `stream × num_shards + shard`.
//!
//! Telemetry: `scheduler_steals_total{worker}` counters,
//! `scheduler_queue_depth{worker}` gauges (sampled at each dequeue), and
//! the per-shard `shard_symbols_total` counters from
//! [`ShardedEngine::run_shard`].

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use sunder_automata::input::InputView;
use sunder_resilience::{corrupt, panic_message, Budget, FaultKind, FaultPlan, JobOutcome};
use sunder_sim::{ReportEvent, RunOutcome, ShardedEngine};

use crate::cache::CompiledPipeline;

/// Scheduling options for one batch.
#[derive(Debug, Clone, Default)]
pub struct BatchOptions {
    /// Worker threads (0 is treated as 1).
    pub workers: usize,
    /// Injected faults, keyed by `stream × num_shards + shard`.
    pub plan: FaultPlan,
    /// Per-shard wall-clock deadline.
    pub deadline: Option<Duration>,
}

impl BatchOptions {
    /// Options running `workers` threads with no faults or deadline.
    pub fn with_workers(workers: usize) -> BatchOptions {
        BatchOptions {
            workers,
            ..BatchOptions::default()
        }
    }
}

/// One shard's execution within one stream.
#[derive(Debug)]
pub struct ShardRun {
    /// Shard index within the pipeline's plan.
    pub shard: usize,
    /// What happened; `Ok` carries the shard's report events remapped to
    /// the transformed automaton's state ids.
    pub outcome: JobOutcome<Vec<ReportEvent>>,
    /// Busy time this shard consumed.
    pub elapsed: Duration,
}

/// One stream's result within a batch.
#[derive(Debug)]
pub struct StreamResult {
    /// Stream index in submission order.
    pub stream: usize,
    /// Worker that executed the stream.
    pub worker: usize,
    /// `true` when the stream was stolen from another worker's queue.
    pub stolen: bool,
    /// Per-shard outcomes, in shard order.
    pub shard_runs: Vec<ShardRun>,
    /// The merged, position-stable report trace (transformed-automaton
    /// coordinates) — `Some` only when *every* shard completed.
    pub merged: Option<Vec<ReportEvent>>,
    /// Busy time across all shards plus the merge.
    pub elapsed: Duration,
}

impl StreamResult {
    /// `true` when every shard completed and the merge was produced.
    pub fn ok(&self) -> bool {
        self.merged.is_some()
    }

    /// The shards that did not complete, with their outcome status.
    pub fn failed_shards(&self) -> Vec<(usize, &'static str)> {
        self.shard_runs
            .iter()
            .filter(|r| r.outcome.value().is_none())
            .map(|r| (r.shard, r.outcome.status()))
            .collect()
    }
}

/// Everything one batch produced.
#[derive(Debug)]
pub struct BatchReport {
    /// Per-stream results, indexed by stream.
    pub streams: Vec<StreamResult>,
    /// Worker threads used.
    pub workers: usize,
    /// Shards per stream.
    pub shards: usize,
    /// Streams executed off a victim's queue.
    pub steals: u64,
    /// Wall-clock time for the whole batch.
    pub wall: Duration,
}

impl BatchReport {
    /// Streams whose merge completed.
    pub fn ok_count(&self) -> usize {
        self.streams.iter().filter(|s| s.ok()).count()
    }

    /// Total busy time across all streams (the sequential-cost model).
    pub fn busy(&self) -> Duration {
        self.streams.iter().map(|s| s.elapsed).sum()
    }
}

/// Executes one shard of one stream under panic isolation and fault
/// injection.
fn run_shard_isolated(
    sharded: &ShardedEngine,
    shard: usize,
    stream_idx: usize,
    bytes: &[u8],
    faults: &[FaultKind],
    deadline: Option<Duration>,
) -> ShardRun {
    let start = Instant::now();
    let mut input = std::borrow::Cow::Borrowed(bytes);
    let mut transient: Option<u32> = None;
    for fault in faults {
        match fault {
            FaultKind::Stall { millis } => std::thread::sleep(Duration::from_millis(*millis)),
            FaultKind::CorruptInput { seed } => corrupt(input.to_mut(), *seed),
            FaultKind::TransientError { failures } => transient = Some(*failures),
            // Panic is raised inside the isolation boundary below;
            // engine- and cycle-model-level faults have no hook here.
            _ => {}
        }
    }
    let inject_panic = faults.iter().any(|f| matches!(f, FaultKind::Panic));
    let budget = match deadline {
        Some(d) => Budget::with_deadline(d),
        None => Budget::unlimited(),
    };

    let result = catch_unwind(AssertUnwindSafe(|| {
        if inject_panic {
            panic!("injected panic (stream {stream_idx}, shard {shard})");
        }
        if let Some(failures) = transient {
            if failures > 0 {
                // The scheduler runs each shard exactly once — a
                // transient fault therefore surfaces as a hard failure.
                return Err(format!(
                    "injected transient fault ({failures} failures requested)"
                ));
            }
        }
        let view = InputView::new(&input, sharded.symbol_bits(), sharded.stride())
            .map_err(|e| format!("input framing: {e}"))?;
        Ok(sharded.run_shard(shard, &view, &budget))
    }));

    let elapsed = start.elapsed();
    let outcome = match result {
        Ok(Ok((events, RunOutcome::Completed))) => JobOutcome::Ok(events),
        Ok(Ok((_, RunOutcome::Interrupted { .. }))) => JobOutcome::TimedOut { elapsed },
        Ok(Err(error)) => JobOutcome::Failed { error },
        Err(payload) => {
            let message = panic_message(payload.as_ref());
            sunder_telemetry::counter_add("scheduler_shard_panics_total", &[], 1);
            JobOutcome::Panicked { message }
        }
    };
    ShardRun {
        shard,
        outcome,
        elapsed,
    }
}

/// Runs one whole stream: every shard isolated, then the merge.
fn run_stream(
    pipeline: &CompiledPipeline,
    stream_idx: usize,
    bytes: &[u8],
    opts: &BatchOptions,
    worker: usize,
    stolen: bool,
) -> StreamResult {
    let start = Instant::now();
    let num_shards = pipeline.num_shards();
    let mut shard_runs = Vec::with_capacity(num_shards);
    for shard in 0..num_shards {
        let flat = stream_idx * num_shards + shard;
        let faults: Vec<FaultKind> = opts.plan.faults_for(flat).cloned().collect();
        shard_runs.push(run_shard_isolated(
            &pipeline.sharded,
            shard,
            stream_idx,
            bytes,
            &faults,
            opts.deadline,
        ));
    }
    let merged = if shard_runs.iter().all(|r| r.outcome.value().is_some()) {
        let traces: Vec<Vec<ReportEvent>> = shard_runs
            .iter()
            .map(|r| r.outcome.value().cloned().unwrap_or_default())
            .collect();
        Some(ShardedEngine::merge(traces))
    } else {
        None
    };
    StreamResult {
        stream: stream_idx,
        worker,
        stolen,
        shard_runs,
        merged,
        elapsed: start.elapsed(),
    }
}

/// Runs `streams` against `pipeline` across `opts.workers` work-stealing
/// worker threads. Results come back indexed by stream, so the report is
/// deterministic for any worker count (modulo the `worker`/`stolen`
/// bookkeeping fields, which record the actual schedule).
pub fn run_batch(
    pipeline: &CompiledPipeline,
    streams: &[Vec<u8>],
    opts: &BatchOptions,
) -> BatchReport {
    let started = Instant::now();
    let workers = opts.workers.max(1).min(streams.len().max(1));
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| {
            // Round-robin deal: stream i goes to worker i mod M.
            Mutex::new((w..streams.len()).step_by(workers).collect())
        })
        .collect();
    let steals = AtomicU64::new(0);
    let results: Vec<Mutex<Option<StreamResult>>> =
        streams.iter().map(|_| Mutex::new(None)).collect();

    let run_worker = |w: usize| {
        let labels_value = w.to_string();
        let labels: [(&'static str, &str); 1] = [("worker", labels_value.as_str())];
        loop {
            // Own queue first (front), then steal (back).
            let mut claimed: Option<(usize, bool)> = None;
            {
                let mut own = queues[w].lock().unwrap();
                if let Some(s) = own.pop_front() {
                    claimed = Some((s, false));
                }
                sunder_telemetry::gauge_set("scheduler_queue_depth", &labels, own.len() as f64);
            }
            if claimed.is_none() {
                for step in 1..workers {
                    let victim = (w + step) % workers;
                    if let Some(s) = queues[victim].lock().unwrap().pop_back() {
                        steals.fetch_add(1, Ordering::Relaxed);
                        sunder_telemetry::counter_add("scheduler_steals_total", &labels, 1);
                        claimed = Some((s, true));
                        break;
                    }
                }
            }
            let Some((stream_idx, stolen)) = claimed else {
                break;
            };
            let result = run_stream(pipeline, stream_idx, &streams[stream_idx], opts, w, stolen);
            *results[stream_idx].lock().unwrap() = Some(result);
        }
    };

    if workers <= 1 {
        run_worker(0);
    } else {
        std::thread::scope(|scope| {
            for w in 0..workers {
                scope.spawn(move || run_worker(w));
            }
        });
    }

    let streams_out: Vec<StreamResult> = results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("every queued stream must have been executed")
        })
        .collect();
    BatchReport {
        streams: streams_out,
        workers,
        shards: pipeline.num_shards(),
        steals: steals.load(Ordering::Relaxed),
        wall: started.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{CompiledPipeline, ShardSpec};
    use sunder_automata::regex::compile_rule_set;
    use sunder_oracle::PipelineConfig;
    use sunder_resilience::Fault;
    use sunder_sim::EngineKind;

    fn pipeline(config: PipelineConfig, shards: usize) -> CompiledPipeline {
        let nfa = compile_rule_set(&["ab+c", ".*net", "[0-9]{3}", "xy"]).unwrap();
        CompiledPipeline::compile(
            &nfa,
            config,
            ShardSpec::MaxShards(shards),
            EngineKind::Adaptive,
        )
        .unwrap()
    }

    fn streams(n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| format!("s{i} ab{}c 123net xy {i}", "b".repeat(i % 5)).into_bytes())
            .collect()
    }

    #[test]
    fn batch_results_are_schedule_independent() {
        let p = pipeline(PipelineConfig::Identity, 3);
        let inputs = streams(9);
        let one = run_batch(&p, &inputs, &BatchOptions::with_workers(1));
        let four = run_batch(&p, &inputs, &BatchOptions::with_workers(4));
        assert_eq!(one.ok_count(), 9);
        assert_eq!(four.ok_count(), 9);
        for (a, b) in one.streams.iter().zip(&four.streams) {
            assert_eq!(a.stream, b.stream);
            assert_eq!(a.merged, b.merged, "stream {}", a.stream);
        }
    }

    #[test]
    fn merged_matches_monolithic_per_stream() {
        use sunder_automata::input::InputView;
        use sunder_sim::TraceSink;
        let p = pipeline(PipelineConfig::Stride2, 4);
        let inputs = streams(4);
        let report = run_batch(&p, &inputs, &BatchOptions::with_workers(2));
        for s in &report.streams {
            let view =
                InputView::new(&inputs[s.stream], p.nfa.symbol_bits(), p.nfa.stride()).unwrap();
            let mut engine = EngineKind::Adaptive.build(&p.nfa);
            let mut trace = TraceSink::new();
            engine.run(&view, &mut trace);
            assert_eq!(
                s.merged.as_ref().unwrap(),
                &trace.events,
                "stream {}",
                s.stream
            );
        }
    }

    #[test]
    fn panicking_shard_is_attributed_and_isolated() {
        let p = pipeline(PipelineConfig::Identity, 4);
        let shards = p.num_shards();
        assert!(shards >= 2);
        let inputs = streams(6);
        // Stream 2, shard 1 panics; everything else must be clean.
        let victim_flat = 2 * shards + 1;
        let opts = BatchOptions {
            workers: 3,
            plan: FaultPlan::new(
                7,
                vec![Fault {
                    item: victim_flat,
                    kind: FaultKind::Panic,
                }],
            ),
            deadline: None,
        };
        let clean = run_batch(&p, &inputs, &BatchOptions::with_workers(3));
        let faulty = run_batch(&p, &inputs, &opts);
        let victim = &faulty.streams[2];
        assert!(!victim.ok());
        assert_eq!(victim.failed_shards(), vec![(1, "panicked")]);
        match &victim.shard_runs[1].outcome {
            JobOutcome::Panicked { message } => {
                assert!(message.contains("stream 2, shard 1"), "{message}");
            }
            other => panic!("expected panic, got {}", other.status()),
        }
        for (c, f) in clean.streams.iter().zip(&faulty.streams) {
            if f.stream != 2 {
                assert_eq!(c.merged, f.merged, "surviving stream {}", f.stream);
            }
        }
    }

    #[test]
    fn stall_and_transient_faults_are_observable() {
        let p = pipeline(PipelineConfig::Identity, 2);
        let inputs = streams(2);
        let shards = p.num_shards();
        let opts = BatchOptions {
            workers: 1,
            plan: FaultPlan::new(
                1,
                vec![
                    Fault {
                        item: 0, // stream 0, shard 0
                        kind: FaultKind::TransientError { failures: 2 },
                    },
                    Fault {
                        item: shards, // stream 1, shard 0
                        kind: FaultKind::Stall { millis: 5 },
                    },
                ],
            ),
            deadline: None,
        };
        let report = run_batch(&p, &inputs, &opts);
        assert_eq!(report.streams[0].failed_shards(), vec![(0, "failed")]);
        assert!(report.streams[1].ok());
        assert!(report.streams[1].shard_runs[0].elapsed >= Duration::from_millis(5));
    }

    #[test]
    fn single_worker_never_steals_and_empty_batch_is_fine() {
        let p = pipeline(PipelineConfig::Identity, 2);
        let report = run_batch(&p, &streams(5), &BatchOptions::with_workers(1));
        assert_eq!(report.steals, 0);
        assert_eq!(report.workers, 1);
        let empty = run_batch(&p, &[], &BatchOptions::with_workers(4));
        assert!(empty.streams.is_empty());
    }
}
