//! Work-stealing multi-stream scheduler over a compiled pipeline.
//!
//! A batch is N independent input streams matched against one compiled
//! pipeline. Streams are dealt round-robin onto M per-worker queues; a
//! worker drains its own queue from the front and, when empty, steals
//! from the *back* of a victim's queue (classic deque discipline: owner
//! and thief touch opposite ends, so streams migrate in whole units and
//! the steal count measures actual imbalance).
//!
//! Within a stream, each shard executes under its own panic isolation
//! boundary: a panicking shard is captured as
//! [`JobOutcome::Panicked`] *attributed to that shard* while every other
//! shard — and every other stream — completes normally. Fault injection
//! plugs in through [`sunder_resilience::FaultPlan`] with the flat item
//! index `stream × num_shards + shard`.
//!
//! Telemetry: `scheduler_steals_total{worker}` counters,
//! `scheduler_queue_depth{worker}` gauges (sampled at each dequeue), and
//! the per-shard `shard_symbols_total` counters from
//! [`ShardedEngine::run_shard`].

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use sunder_automata::input::InputView;
use sunder_resilience::{corrupt, panic_message, Budget, FaultKind, FaultPlan, JobOutcome};
use sunder_sim::{ReportEvent, RunOutcome, ShardedEngine};

use crate::cache::CompiledPipeline;

/// Default [`BatchOptions::serial_cutoff`]: batches whose total input is
/// smaller than this run on one worker no matter how many were asked
/// for.
///
/// Waking a parked helper (or spawning a scoped thread) costs on the
/// order of tens of microseconds of context switching; after the
/// single-stream fast path an engine chews through input at GB/s, so a
/// batch this small is *finished* in roughly the time fan-out spends
/// waking threads. Below the cutoff, parallelism can only lose — on any
/// host — and the scheduler runs the batch inline instead.
pub const SERIAL_CUTOFF_BYTES: usize = 256 * 1024;

/// Scheduling options for one batch.
#[derive(Debug, Clone)]
pub struct BatchOptions {
    /// Worker threads (0 is treated as 1).
    pub workers: usize,
    /// Injected faults, keyed by `stream × num_shards + shard`.
    pub plan: FaultPlan,
    /// Per-shard wall-clock deadline.
    pub deadline: Option<Duration>,
    /// Batches with fewer total input bytes than this run on a single
    /// worker regardless of [`workers`](Self::workers). Defaults to
    /// [`SERIAL_CUTOFF_BYTES`]; `0` disables the cutoff.
    pub serial_cutoff: usize,
}

impl Default for BatchOptions {
    fn default() -> BatchOptions {
        BatchOptions {
            workers: 0,
            plan: FaultPlan::default(),
            deadline: None,
            serial_cutoff: SERIAL_CUTOFF_BYTES,
        }
    }
}

impl BatchOptions {
    /// Options running `workers` threads with no faults or deadline.
    pub fn with_workers(workers: usize) -> BatchOptions {
        BatchOptions {
            workers,
            ..BatchOptions::default()
        }
    }

    /// Disables the small-batch serial cutoff, forcing the requested
    /// worker count even on tiny batches. Meant for tests that exercise
    /// the parallel scheduler on deliberately small inputs.
    #[must_use]
    pub fn without_serial_cutoff(mut self) -> BatchOptions {
        self.serial_cutoff = 0;
        self
    }
}

/// Worker count a batch actually runs with: the request, clamped to the
/// stream count, collapsed to 1 when the whole batch is smaller than the
/// serial cutoff.
fn effective_workers(opts: &BatchOptions, streams: &[Vec<u8>]) -> usize {
    let requested = opts.workers.max(1).min(streams.len().max(1));
    if requested > 1 && opts.serial_cutoff > 0 {
        let total: usize = streams.iter().map(Vec::len).sum();
        if total < opts.serial_cutoff {
            return 1;
        }
    }
    requested
}

/// One shard's execution within one stream.
#[derive(Debug)]
pub struct ShardRun {
    /// Shard index within the pipeline's plan.
    pub shard: usize,
    /// What happened; `Ok` carries the shard's report events remapped to
    /// the transformed automaton's state ids.
    pub outcome: JobOutcome<Vec<ReportEvent>>,
    /// Busy time this shard consumed.
    pub elapsed: Duration,
}

/// One stream's result within a batch.
#[derive(Debug)]
pub struct StreamResult {
    /// Stream index in submission order.
    pub stream: usize,
    /// Worker that executed the stream.
    pub worker: usize,
    /// `true` when the stream was stolen from another worker's queue.
    pub stolen: bool,
    /// Per-shard outcomes, in shard order.
    pub shard_runs: Vec<ShardRun>,
    /// The merged, position-stable report trace (transformed-automaton
    /// coordinates) — `Some` only when *every* shard completed.
    pub merged: Option<Vec<ReportEvent>>,
    /// Busy time across all shards plus the merge.
    pub elapsed: Duration,
}

impl StreamResult {
    /// `true` when every shard completed and the merge was produced.
    pub fn ok(&self) -> bool {
        self.merged.is_some()
    }

    /// The shards that did not complete, with their outcome status.
    pub fn failed_shards(&self) -> Vec<(usize, &'static str)> {
        self.shard_runs
            .iter()
            .filter(|r| r.outcome.value().is_none())
            .map(|r| (r.shard, r.outcome.status()))
            .collect()
    }
}

/// Everything one batch produced.
#[derive(Debug)]
pub struct BatchReport {
    /// Per-stream results, indexed by stream.
    pub streams: Vec<StreamResult>,
    /// Worker threads used.
    pub workers: usize,
    /// Shards per stream.
    pub shards: usize,
    /// Streams executed off a victim's queue.
    pub steals: u64,
    /// Wall-clock time for the whole batch.
    pub wall: Duration,
}

impl BatchReport {
    /// Streams whose merge completed.
    pub fn ok_count(&self) -> usize {
        self.streams.iter().filter(|s| s.ok()).count()
    }

    /// Total busy time across all streams (the sequential-cost model).
    pub fn busy(&self) -> Duration {
        self.streams.iter().map(|s| s.elapsed).sum()
    }
}

/// Executes one shard of one stream under panic isolation and fault
/// injection.
///
/// `shared_view` is the stream's input, framed once by [`run_stream`];
/// only a shard whose faults corrupt the bytes re-frames privately.
fn run_shard_isolated(
    sharded: &ShardedEngine,
    shard: usize,
    stream_idx: usize,
    bytes: &[u8],
    shared_view: &Result<InputView, String>,
    faults: &[FaultKind],
    deadline: Option<Duration>,
) -> ShardRun {
    let start = Instant::now();
    let mut input = std::borrow::Cow::Borrowed(bytes);
    let mut transient: Option<u32> = None;
    for fault in faults {
        match fault {
            FaultKind::Stall { millis } => std::thread::sleep(Duration::from_millis(*millis)),
            FaultKind::CorruptInput { seed } => corrupt(input.to_mut(), *seed),
            FaultKind::TransientError { failures } => transient = Some(*failures),
            // Panic is raised inside the isolation boundary below;
            // engine- and cycle-model-level faults have no hook here.
            _ => {}
        }
    }
    let inject_panic = faults.iter().any(|f| matches!(f, FaultKind::Panic));
    let budget = match deadline {
        Some(d) => Budget::with_deadline(d),
        None => Budget::unlimited(),
    };

    let result = catch_unwind(AssertUnwindSafe(|| {
        if inject_panic {
            panic!("injected panic (stream {stream_idx}, shard {shard})");
        }
        if let Some(failures) = transient {
            if failures > 0 {
                // The scheduler runs each shard exactly once — a
                // transient fault therefore surfaces as a hard failure.
                return Err(format!(
                    "injected transient fault ({failures} failures requested)"
                ));
            }
        }
        match &input {
            std::borrow::Cow::Borrowed(_) => {
                let view = shared_view.as_ref().map_err(String::clone)?;
                Ok(sharded.run_shard(shard, view, &budget))
            }
            // Corrupted bytes diverge from the shared framing; build a
            // private view so the fault stays confined to this shard.
            std::borrow::Cow::Owned(corrupted) => {
                let view = InputView::new(corrupted, sharded.symbol_bits(), sharded.stride())
                    .map_err(|e| format!("input framing: {e}"))?;
                Ok(sharded.run_shard(shard, &view, &budget))
            }
        }
    }));

    let elapsed = start.elapsed();
    let outcome = match result {
        Ok(Ok((events, RunOutcome::Completed))) => JobOutcome::Ok(events),
        Ok(Ok((_, RunOutcome::Interrupted { .. }))) => JobOutcome::TimedOut { elapsed },
        Ok(Err(error)) => JobOutcome::Failed { error },
        Err(payload) => {
            let message = panic_message(payload.as_ref());
            sunder_telemetry::counter_add("scheduler_shard_panics_total", &[], 1);
            JobOutcome::Panicked { message }
        }
    };
    ShardRun {
        shard,
        outcome,
        elapsed,
    }
}

/// Runs one whole stream: every shard isolated, then the merge.
fn run_stream(
    pipeline: &CompiledPipeline,
    stream_idx: usize,
    bytes: &[u8],
    opts: &BatchOptions,
    worker: usize,
    stolen: bool,
) -> StreamResult {
    let start = Instant::now();
    let _job = sunder_telemetry::span("scheduler.job")
        .field("stream", stream_idx as u64)
        .field("worker", worker as u64)
        .field("stolen", u64::from(stolen));
    let num_shards = pipeline.num_shards();
    // Frame the symbols once per stream, not once per shard: every shard
    // reads the same view, so re-unpacking per shard is pure overhead.
    let shared_view = InputView::new(
        bytes,
        pipeline.sharded.symbol_bits(),
        pipeline.sharded.stride(),
    )
    .map_err(|e| format!("input framing: {e}"));
    let plan_empty = opts.plan.is_empty();
    let mut shard_runs = Vec::with_capacity(num_shards);
    for shard in 0..num_shards {
        let flat = stream_idx * num_shards + shard;
        // `Vec::new()` does not allocate: the common fault-free batch
        // stays allocation-free here.
        let faults: Vec<FaultKind> = if plan_empty {
            Vec::new()
        } else {
            opts.plan.faults_for(flat).cloned().collect()
        };
        shard_runs.push(run_shard_isolated(
            &pipeline.sharded,
            shard,
            stream_idx,
            bytes,
            &shared_view,
            &faults,
            opts.deadline,
        ));
    }
    let merged = if shard_runs.iter().all(|r| r.outcome.value().is_some()) {
        let traces: Vec<Vec<ReportEvent>> = shard_runs
            .iter()
            .map(|r| r.outcome.value().cloned().unwrap_or_default())
            .collect();
        Some(ShardedEngine::merge(traces))
    } else {
        None
    };
    StreamResult {
        stream: stream_idx,
        worker,
        stolen,
        shard_runs,
        merged,
        elapsed: start.elapsed(),
    }
}

/// Round-robin deal of `streams` stream indices onto `workers` queues
/// (stream `i` goes to worker `i mod workers`).
fn deal_queues(streams: usize, workers: usize) -> Vec<Mutex<VecDeque<usize>>> {
    (0..workers)
        .map(|w| Mutex::new((w..streams).step_by(workers).collect()))
        .collect()
}

/// One worker's drain loop: own queue first (front), then steal from a
/// victim's back. Shared verbatim by the scoped-thread and pooled paths
/// so both schedules stay observably identical.
#[allow(clippy::too_many_arguments)]
fn drain_worker(
    w: usize,
    workers: usize,
    pipeline: &CompiledPipeline,
    streams: &[Vec<u8>],
    opts: &BatchOptions,
    queues: &[Mutex<VecDeque<usize>>],
    steals: &AtomicU64,
    results: &[Mutex<Option<StreamResult>>],
) {
    // Intern the per-worker label handles once: each record below is an
    // atomic on a pre-resolved cell, not a string allocation plus a
    // registry lookup under the global lock.
    let labels_value = w.to_string();
    let labels: [(&'static str, &str); 1] = [("worker", labels_value.as_str())];
    let depth_gauge = sunder_telemetry::gauge_handle("scheduler_queue_depth", &labels);
    let steals_total = sunder_telemetry::counter_handle("scheduler_steals_total", &labels);
    loop {
        let mut claimed: Option<(usize, bool)> = None;
        {
            let mut own = queues[w].lock().unwrap();
            if let Some(s) = own.pop_front() {
                claimed = Some((s, false));
            }
            depth_gauge.set(own.len() as f64);
        }
        if claimed.is_none() {
            for step in 1..workers {
                let victim = (w + step) % workers;
                if let Some(s) = queues[victim].lock().unwrap().pop_back() {
                    steals.fetch_add(1, Ordering::Relaxed);
                    steals_total.add(1);
                    claimed = Some((s, true));
                    break;
                }
            }
        }
        let Some((stream_idx, stolen)) = claimed else {
            break;
        };
        let result = run_stream(pipeline, stream_idx, &streams[stream_idx], opts, w, stolen);
        *results[stream_idx].lock().unwrap() = Some(result);
    }
}

/// Drains the filled result slots into submission order.
fn collect_results(results: &[Mutex<Option<StreamResult>>]) -> Vec<StreamResult> {
    results
        .iter()
        .map(|slot| {
            slot.lock()
                .unwrap()
                .take()
                .expect("every queued stream must have been executed")
        })
        .collect()
}

/// Runs `streams` against `pipeline` across `opts.workers` work-stealing
/// worker threads. Results come back indexed by stream, so the report is
/// deterministic for any worker count (modulo the `worker`/`stolen`
/// bookkeeping fields, which record the actual schedule).
pub fn run_batch(
    pipeline: &CompiledPipeline,
    streams: &[Vec<u8>],
    opts: &BatchOptions,
) -> BatchReport {
    let started = Instant::now();
    let workers = effective_workers(opts, streams);
    let queues = deal_queues(streams.len(), workers);
    let steals = AtomicU64::new(0);
    let results: Vec<Mutex<Option<StreamResult>>> =
        streams.iter().map(|_| Mutex::new(None)).collect();

    if workers <= 1 {
        drain_worker(
            0, workers, pipeline, streams, opts, &queues, &steals, &results,
        );
    } else {
        std::thread::scope(|scope| {
            for w in 0..workers {
                let (queues, steals, results) = (&queues, &steals, &results);
                scope.spawn(move || {
                    drain_worker(w, workers, pipeline, streams, opts, queues, steals, results);
                });
            }
        });
    }

    BatchReport {
        streams: collect_results(&results),
        workers,
        shards: pipeline.num_shards(),
        steals: steals.load(Ordering::Relaxed),
        wall: started.elapsed(),
    }
}

/// One published batch: everything a pool helper needs, behind `Arc` so
/// helpers outlive the caller's stack frame without borrowing it.
#[derive(Debug)]
struct PoolJob {
    pipeline: Arc<CompiledPipeline>,
    streams: Arc<Vec<Vec<u8>>>,
    opts: BatchOptions,
    workers: usize,
    queues: Vec<Mutex<VecDeque<usize>>>,
    steals: AtomicU64,
    results: Vec<Mutex<Option<StreamResult>>>,
}

#[derive(Debug)]
struct PoolState {
    /// Bumped once per published batch; helpers run a job at most once.
    epoch: u64,
    job: Option<Arc<PoolJob>>,
    /// Helpers currently draining the published job.
    active: usize,
    shutdown: bool,
}

#[derive(Debug)]
struct PoolShared {
    state: Mutex<PoolState>,
    work: Condvar,
    done: Condvar,
}

/// A persistent team of helper threads for [`run_batch_pooled`].
///
/// `run_batch` spawns and joins `workers - 1` threads per batch; at
/// multi-stream service rates that spawn/join tax dominates short
/// batches. The pool keeps helpers parked on a condvar instead: a batch
/// is published as an epoch bump, the caller participates as worker 0,
/// and helpers go back to sleep when the queues drain. Batches are
/// serialized — the pool runs one at a time.
#[derive(Debug)]
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    /// Serializes concurrent `run_batch_pooled` callers.
    batch: Mutex<()>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `helpers` parked helper threads (worker indices `1..=helpers`;
    /// the submitting thread is always worker 0).
    pub fn new(helpers: usize) -> WorkerPool {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
                active: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let threads = (0..helpers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || pool_helper(&shared, i + 1))
            })
            .collect();
        WorkerPool {
            shared,
            batch: Mutex::new(()),
            threads,
        }
    }

    /// Helper threads in the pool (max workers per batch is this + 1).
    pub fn helpers(&self) -> usize {
        self.threads.len()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Helper thread body: wait for an epoch bump, join the drain as worker
/// `index`, report completion, park again.
fn pool_helper(shared: &PoolShared, index: usize) {
    let mut last_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != last_epoch {
                    last_epoch = st.epoch;
                    // A batch may want fewer workers than the pool has;
                    // surplus helpers skip this epoch entirely.
                    let claimed = match &st.job {
                        Some(job) if index < job.workers => Some(Arc::clone(job)),
                        _ => None,
                    };
                    if claimed.is_some() {
                        st.active += 1;
                    }
                    break claimed;
                }
                st = shared.work.wait(st).unwrap();
            }
        };
        let Some(job) = job else { continue };
        drain_worker(
            index,
            job.workers,
            &job.pipeline,
            &job.streams,
            &job.opts,
            &job.queues,
            &job.steals,
            &job.results,
        );
        let mut st = shared.state.lock().unwrap();
        st.active -= 1;
        if st.active == 0 {
            shared.done.notify_all();
        }
    }
}

/// [`run_batch`] over a persistent [`WorkerPool`]: identical scheduling
/// discipline and an identical report, but no thread spawn/join per
/// batch. The calling thread always participates as worker 0; at most
/// `pool.helpers()` helpers join it.
pub fn run_batch_pooled(
    pool: &WorkerPool,
    pipeline: &Arc<CompiledPipeline>,
    streams: &Arc<Vec<Vec<u8>>>,
    opts: &BatchOptions,
) -> BatchReport {
    let _serial = pool.batch.lock().unwrap();
    let started = Instant::now();
    let workers = effective_workers(opts, streams).min(pool.helpers() + 1);
    let job = Arc::new(PoolJob {
        pipeline: Arc::clone(pipeline),
        streams: Arc::clone(streams),
        opts: opts.clone(),
        workers,
        queues: deal_queues(streams.len(), workers),
        steals: AtomicU64::new(0),
        results: streams.iter().map(|_| Mutex::new(None)).collect(),
    });
    if workers > 1 {
        let mut st = pool.shared.state.lock().unwrap();
        st.epoch += 1;
        st.job = Some(Arc::clone(&job));
        drop(st);
        pool.shared.work.notify_all();
    }
    drain_worker(
        0,
        workers,
        &job.pipeline,
        &job.streams,
        &job.opts,
        &job.queues,
        &job.steals,
        &job.results,
    );
    if workers > 1 {
        let mut st = pool.shared.state.lock().unwrap();
        while st.active > 0 {
            st = pool.shared.done.wait(st).unwrap();
        }
        // Unpublish so a helper waking late (next epoch) can't rerun it.
        st.job = None;
    }
    BatchReport {
        streams: collect_results(&job.results),
        workers,
        shards: job.pipeline.num_shards(),
        steals: job.steals.load(Ordering::Relaxed),
        wall: started.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{CompiledPipeline, ShardSpec};
    use sunder_automata::regex::compile_rule_set;
    use sunder_oracle::PipelineConfig;
    use sunder_resilience::Fault;
    use sunder_sim::EngineKind;

    fn pipeline(config: PipelineConfig, shards: usize) -> CompiledPipeline {
        let nfa = compile_rule_set(&["ab+c", ".*net", "[0-9]{3}", "xy"]).unwrap();
        CompiledPipeline::compile(
            &nfa,
            config,
            ShardSpec::MaxShards(shards),
            EngineKind::Adaptive,
        )
        .unwrap()
    }

    fn streams(n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| format!("s{i} ab{}c 123net xy {i}", "b".repeat(i % 5)).into_bytes())
            .collect()
    }

    #[test]
    fn batch_results_are_schedule_independent() {
        let p = pipeline(PipelineConfig::Identity, 3);
        let inputs = streams(9);
        let one = run_batch(&p, &inputs, &BatchOptions::with_workers(1));
        let four = run_batch(
            &p,
            &inputs,
            &BatchOptions::with_workers(4).without_serial_cutoff(),
        );
        assert_eq!(one.ok_count(), 9);
        assert_eq!(four.ok_count(), 9);
        for (a, b) in one.streams.iter().zip(&four.streams) {
            assert_eq!(a.stream, b.stream);
            assert_eq!(a.merged, b.merged, "stream {}", a.stream);
        }
    }

    #[test]
    fn merged_matches_monolithic_per_stream() {
        use sunder_automata::input::InputView;
        use sunder_sim::TraceSink;
        let p = pipeline(PipelineConfig::Stride2, 4);
        let inputs = streams(4);
        let report = run_batch(
            &p,
            &inputs,
            &BatchOptions::with_workers(2).without_serial_cutoff(),
        );
        for s in &report.streams {
            let view =
                InputView::new(&inputs[s.stream], p.nfa.symbol_bits(), p.nfa.stride()).unwrap();
            let mut engine = EngineKind::Adaptive.build(&p.nfa);
            let mut trace = TraceSink::new();
            engine.run(&view, &mut trace);
            assert_eq!(
                s.merged.as_ref().unwrap(),
                &trace.events,
                "stream {}",
                s.stream
            );
        }
    }

    #[test]
    fn panicking_shard_is_attributed_and_isolated() {
        let p = pipeline(PipelineConfig::Identity, 4);
        let shards = p.num_shards();
        assert!(shards >= 2);
        let inputs = streams(6);
        // Stream 2, shard 1 panics; everything else must be clean.
        let victim_flat = 2 * shards + 1;
        let opts = BatchOptions {
            workers: 3,
            plan: FaultPlan::new(
                7,
                vec![Fault {
                    item: victim_flat,
                    kind: FaultKind::Panic,
                }],
            ),
            deadline: None,
            serial_cutoff: 0,
        };
        let clean = run_batch(
            &p,
            &inputs,
            &BatchOptions::with_workers(3).without_serial_cutoff(),
        );
        let faulty = run_batch(&p, &inputs, &opts);
        let victim = &faulty.streams[2];
        assert!(!victim.ok());
        assert_eq!(victim.failed_shards(), vec![(1, "panicked")]);
        match &victim.shard_runs[1].outcome {
            JobOutcome::Panicked { message } => {
                assert!(message.contains("stream 2, shard 1"), "{message}");
            }
            other => panic!("expected panic, got {}", other.status()),
        }
        for (c, f) in clean.streams.iter().zip(&faulty.streams) {
            if f.stream != 2 {
                assert_eq!(c.merged, f.merged, "surviving stream {}", f.stream);
            }
        }
    }

    #[test]
    fn stall_and_transient_faults_are_observable() {
        let p = pipeline(PipelineConfig::Identity, 2);
        let inputs = streams(2);
        let shards = p.num_shards();
        let opts = BatchOptions {
            workers: 1,
            plan: FaultPlan::new(
                1,
                vec![
                    Fault {
                        item: 0, // stream 0, shard 0
                        kind: FaultKind::TransientError { failures: 2 },
                    },
                    Fault {
                        item: shards, // stream 1, shard 0
                        kind: FaultKind::Stall { millis: 5 },
                    },
                ],
            ),
            ..BatchOptions::default()
        };
        let report = run_batch(&p, &inputs, &opts);
        assert_eq!(report.streams[0].failed_shards(), vec![(0, "failed")]);
        assert!(report.streams[1].ok());
        assert!(report.streams[1].shard_runs[0].elapsed >= Duration::from_millis(5));
    }

    #[test]
    fn pooled_batches_match_scoped_batches() {
        let p = Arc::new(pipeline(PipelineConfig::Identity, 3));
        let inputs = Arc::new(streams(9));
        let pool = WorkerPool::new(3);
        let opts = BatchOptions::with_workers(4).without_serial_cutoff();
        let scoped = run_batch(&p, &inputs, &opts);
        for round in 0..3 {
            let pooled = run_batch_pooled(&pool, &p, &inputs, &opts);
            assert_eq!(pooled.workers, 4, "round {round}");
            assert_eq!(pooled.ok_count(), 9, "round {round}");
            for (a, b) in scoped.streams.iter().zip(&pooled.streams) {
                assert_eq!(a.stream, b.stream);
                assert_eq!(a.merged, b.merged, "round {round} stream {}", a.stream);
            }
        }
    }

    #[test]
    fn pool_caps_workers_and_isolates_panics() {
        let p = Arc::new(pipeline(PipelineConfig::Identity, 4));
        let shards = p.num_shards();
        let inputs = Arc::new(streams(6));
        let pool = WorkerPool::new(1); // at most 2 workers, whatever is asked
        let opts = BatchOptions {
            workers: 8,
            plan: FaultPlan::new(
                7,
                vec![Fault {
                    item: shards + 2, // stream 1, shard 2
                    kind: FaultKind::Panic,
                }],
            ),
            deadline: None,
            serial_cutoff: 0,
        };
        let report = run_batch_pooled(&pool, &p, &inputs, &opts);
        assert_eq!(report.workers, 2);
        assert_eq!(report.ok_count(), 5);
        assert_eq!(report.streams[1].failed_shards(), vec![(2, "panicked")]);
    }

    #[test]
    fn corrupt_input_is_confined_to_the_faulted_shard() {
        let p = pipeline(PipelineConfig::Identity, 4);
        let shards = p.num_shards();
        assert!(shards >= 2);
        let inputs = streams(2);
        let opts = BatchOptions {
            workers: 1,
            plan: FaultPlan::new(
                3,
                vec![Fault {
                    item: shards, // stream 1, shard 0
                    kind: FaultKind::CorruptInput { seed: 99 },
                }],
            ),
            ..BatchOptions::default()
        };
        let clean = run_batch(&p, &inputs, &BatchOptions::with_workers(1));
        let faulty = run_batch(&p, &inputs, &opts);
        // Stream 0 and the unfaulted shards of stream 1 see pristine bytes.
        assert_eq!(clean.streams[0].merged, faulty.streams[0].merged);
        for shard in 1..shards {
            let c = clean.streams[1].shard_runs[shard].outcome.value();
            let f = faulty.streams[1].shard_runs[shard].outcome.value();
            assert_eq!(c, f, "shard {shard} must be unaffected");
        }
    }

    #[test]
    fn small_batches_collapse_to_one_worker() {
        let p = pipeline(PipelineConfig::Identity, 2);
        let inputs = streams(5); // a few hundred bytes, far below the cutoff
        let report = run_batch(&p, &inputs, &BatchOptions::with_workers(4));
        assert_eq!(report.workers, 1, "tiny batch must not fan out");
        assert_eq!(report.steals, 0);

        let pool = WorkerPool::new(3);
        let pooled = run_batch_pooled(
            &pool,
            &Arc::new(pipeline(PipelineConfig::Identity, 2)),
            &Arc::new(inputs.clone()),
            &BatchOptions::with_workers(4),
        );
        assert_eq!(pooled.workers, 1, "pooled tiny batch must not fan out");

        // The cutoff is a scheduling decision only: results match a
        // forced-parallel run byte for byte.
        let forced = run_batch(
            &p,
            &inputs,
            &BatchOptions::with_workers(4).without_serial_cutoff(),
        );
        assert_eq!(forced.workers, 4);
        for (a, b) in report.streams.iter().zip(&forced.streams) {
            assert_eq!(a.merged, b.merged, "stream {}", a.stream);
        }
    }

    #[test]
    fn single_worker_never_steals_and_empty_batch_is_fine() {
        let p = pipeline(PipelineConfig::Identity, 2);
        let report = run_batch(&p, &streams(5), &BatchOptions::with_workers(1));
        assert_eq!(report.steals, 0);
        assert_eq!(report.workers, 1);
        let empty = run_batch(&p, &[], &BatchOptions::with_workers(4));
        assert!(empty.streams.is_empty());
    }
}
