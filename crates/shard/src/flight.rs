//! Per-session flight recorder: a bounded ring of recent events that is
//! dumped as a schema-v1 JSON-lines artifact when a session dies badly —
//! a worker panic, a blown chunk deadline, or a chunk over the
//! slow-session threshold.
//!
//! The global telemetry ring (PR 4) answers "what did the whole process
//! do"; under 64 concurrent sessions the events of the one session you
//! care about are interleaved with everyone else's and may have been
//! evicted long before the post-mortem. The flight recorder is the
//! complement: each session keeps its *own* last-N events (chunk sizes,
//! queue waits, service times, error codes), costs a ring slot per event
//! while healthy, and writes one small artifact per casualty — the
//! chaos taxonomy of PR 7 turned into something an operator can open.
//!
//! Artifact format (`sunder-flight` schema version 1): a meta line
//!
//! ```json
//! {"type":"meta","schema":"sunder-flight","version":1,"tenant":"s3",
//!  "session":7,"epoch":1,"reason":"panic","events":12,"dropped":0}
//! ```
//!
//! followed by one `{"type":"event","ts_us":...,"name":...,
//! "fields":{...}}` line per ring entry, oldest first. [`validate_flight`]
//! is the schema gate used by tests and the `obs-smoke` CI job.

use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::time::Instant;

use sunder_telemetry::json::{self, Json};

/// Current flight-recorder artifact schema version.
pub const FLIGHT_SCHEMA_VERSION: u64 = 1;

/// Default ring capacity: enough to hold a burst of chunks around the
/// failure without making a session's footprint noticeable.
pub const DEFAULT_FLIGHT_EVENTS: usize = 128;

/// One recorded event: a name, a timestamp relative to session open,
/// and small string-valued fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Microseconds since the recorder was created.
    pub ts_us: u64,
    /// Event name (`session_open`, `chunk`, `error`, ...).
    pub name: &'static str,
    /// Field pairs, in recording order.
    pub fields: Vec<(&'static str, String)>,
}

/// A bounded per-session event ring.
#[derive(Debug)]
pub struct FlightRecorder {
    started: Instant,
    tenant: String,
    session: u64,
    epoch: u64,
    cap: usize,
    ring: VecDeque<FlightEvent>,
    dropped: u64,
    dumped: bool,
}

impl FlightRecorder {
    /// A recorder for one session, holding at most `cap` events (older
    /// events are evicted, counted in `dropped`).
    pub fn new(tenant: &str, session: u64, epoch: u64, cap: usize) -> FlightRecorder {
        FlightRecorder {
            started: Instant::now(),
            tenant: tenant.to_string(),
            session,
            epoch,
            cap: cap.max(1),
            ring: VecDeque::new(),
            dropped: 0,
            dumped: false,
        }
    }

    /// Records one event into the ring.
    pub fn record(&mut self, name: &'static str, fields: &[(&'static str, String)]) {
        if self.ring.len() >= self.cap {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(FlightEvent {
            ts_us: self.started.elapsed().as_micros() as u64,
            name,
            fields: fields.to_vec(),
        });
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Renders the JSON-lines artifact for this session.
    pub fn dump(&self, reason: &str) -> String {
        let mut out = String::new();
        let meta = Json::Obj(vec![
            ("type".into(), Json::Str("meta".into())),
            ("schema".into(), Json::Str("sunder-flight".into())),
            ("version".into(), Json::Num(FLIGHT_SCHEMA_VERSION as f64)),
            ("tenant".into(), Json::Str(self.tenant.clone())),
            ("session".into(), Json::Num(self.session as f64)),
            ("epoch".into(), Json::Num(self.epoch as f64)),
            ("reason".into(), Json::Str(reason.to_string())),
            ("events".into(), Json::Num(self.ring.len() as f64)),
            ("dropped".into(), Json::Num(self.dropped as f64)),
        ]);
        out.push_str(&meta.render());
        out.push('\n');
        for e in &self.ring {
            let fields = Json::Obj(
                e.fields
                    .iter()
                    .map(|(k, v)| ((*k).to_string(), Json::Str(v.clone())))
                    .collect(),
            );
            let line = Json::Obj(vec![
                ("type".into(), Json::Str("event".into())),
                ("ts_us".into(), Json::Num(e.ts_us as f64)),
                ("name".into(), Json::Str(e.name.to_string())),
                ("fields".into(), fields),
            ]);
            out.push_str(&line.render());
            out.push('\n');
        }
        out
    }

    /// Writes the artifact into `dir` as
    /// `flight-<tenant>-<session>-<reason>.jsonl` (tenant sanitized to
    /// `[A-Za-z0-9_-]`), creating the directory if needed. At most one
    /// artifact is written per session — later triggers are no-ops, so
    /// a slow session that then panics keeps its first post-mortem.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write(&mut self, dir: &Path, reason: &str) -> std::io::Result<Option<PathBuf>> {
        if self.dumped {
            return Ok(None);
        }
        std::fs::create_dir_all(dir)?;
        let tenant: String = self
            .tenant
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        let path = dir.join(format!("flight-{tenant}-{}-{reason}.jsonl", self.session));
        std::fs::write(&path, self.dump(reason))?;
        self.dumped = true;
        sunder_telemetry::counter_add("serve_flight_dumps_total", &[("reason", reason)], 1);
        Ok(Some(path))
    }
}

/// What [`validate_flight`] extracts from a valid artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightSummary {
    /// Schema version (always [`FLIGHT_SCHEMA_VERSION`] today).
    pub version: u64,
    /// Tenant the session belonged to.
    pub tenant: String,
    /// Session (connection) id.
    pub session: u64,
    /// Epoch the session pinned.
    pub epoch: u64,
    /// Why the artifact was dumped (`panic`, `deadline`, `slow`).
    pub reason: String,
    /// Event lines in the artifact.
    pub events: usize,
    /// Events lost to ring eviction before the dump.
    pub dropped: u64,
}

/// Validates a flight-recorder artifact against schema version 1.
///
/// Checks: a `sunder-flight` meta first line with all required keys,
/// every following line a well-formed event with `ts_us`/`name`/`fields`,
/// non-decreasing timestamps, and an event count matching the meta line.
///
/// # Errors
///
/// Returns a message naming the first offending line.
pub fn validate_flight(text: &str) -> Result<FlightSummary, String> {
    let mut lines = text.lines().enumerate();
    let (_, meta_line) = lines.next().ok_or("empty artifact")?;
    let meta = json::parse(meta_line).map_err(|e| format!("meta line: {e}"))?;
    if meta.get("type").and_then(Json::as_str) != Some("meta") {
        return Err("first line is not a meta record".into());
    }
    if meta.get("schema").and_then(Json::as_str) != Some("sunder-flight") {
        return Err("meta schema is not sunder-flight".into());
    }
    let version = meta
        .get("version")
        .and_then(Json::as_u64)
        .ok_or("meta missing version")?;
    if version != FLIGHT_SCHEMA_VERSION {
        return Err(format!("unsupported flight schema version {version}"));
    }
    let summary = FlightSummary {
        version,
        tenant: meta
            .get("tenant")
            .and_then(Json::as_str)
            .ok_or("meta missing tenant")?
            .to_string(),
        session: meta
            .get("session")
            .and_then(Json::as_u64)
            .ok_or("meta missing session")?,
        epoch: meta
            .get("epoch")
            .and_then(Json::as_u64)
            .ok_or("meta missing epoch")?,
        reason: meta
            .get("reason")
            .and_then(Json::as_str)
            .ok_or("meta missing reason")?
            .to_string(),
        events: meta
            .get("events")
            .and_then(Json::as_u64)
            .ok_or("meta missing events")? as usize,
        dropped: meta
            .get("dropped")
            .and_then(Json::as_u64)
            .ok_or("meta missing dropped")?,
    };
    let mut seen = 0usize;
    let mut last_ts = 0u64;
    for (i, line) in lines {
        let lineno = i + 1;
        let obj = json::parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
        if obj.get("type").and_then(Json::as_str) != Some("event") {
            return Err(format!("line {lineno}: not an event record"));
        }
        let ts = obj
            .get("ts_us")
            .and_then(Json::as_u64)
            .ok_or(format!("line {lineno}: event missing ts_us"))?;
        if ts < last_ts {
            return Err(format!("line {lineno}: timestamps go backwards"));
        }
        last_ts = ts;
        if obj.get("name").and_then(Json::as_str).is_none() {
            return Err(format!("line {lineno}: event missing name"));
        }
        match obj.get("fields") {
            Some(Json::Obj(_)) => {}
            _ => return Err(format!("line {lineno}: event missing fields object")),
        }
        seen += 1;
    }
    if seen != summary.events {
        return Err(format!(
            "meta says {} events, artifact has {seen}",
            summary.events
        ));
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_recorder() -> FlightRecorder {
        let mut fr = FlightRecorder::new("s3", 7, 1, 16);
        fr.record("session_open", &[("epoch", "1".into())]);
        fr.record(
            "chunk",
            &[
                ("bytes", "48".into()),
                ("service_us", "120".into()),
                ("reports", "2".into()),
            ],
        );
        fr.record("error", &[("kind", "panic".into())]);
        fr
    }

    #[test]
    fn dump_round_trips_through_validator() {
        let fr = sample_recorder();
        let text = fr.dump("panic");
        let summary = validate_flight(&text).unwrap();
        assert_eq!(summary.version, FLIGHT_SCHEMA_VERSION);
        assert_eq!(summary.tenant, "s3");
        assert_eq!(summary.session, 7);
        assert_eq!(summary.epoch, 1);
        assert_eq!(summary.reason, "panic");
        assert_eq!(summary.events, 3);
        assert_eq!(summary.dropped, 0);
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut fr = FlightRecorder::new("t", 0, 1, 4);
        for i in 0..10u32 {
            fr.record("chunk", &[("seq", i.to_string())]);
        }
        assert_eq!(fr.len(), 4);
        let text = fr.dump("slow");
        let summary = validate_flight(&text).unwrap();
        assert_eq!(summary.events, 4);
        assert_eq!(summary.dropped, 6);
        // Oldest-first: the surviving events are the last four recorded.
        assert!(text.contains(r#""seq":"6""#));
        assert!(!text.contains(r#""seq":"5""#));
    }

    #[test]
    fn write_creates_one_sanitized_artifact_per_session() {
        let dir = std::env::temp_dir().join(format!("sunder-flight-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut fr = FlightRecorder::new("s3/../evil", 9, 2, 8);
        fr.record("session_open", &[]);
        let path = fr.write(&dir, "deadline").unwrap().unwrap();
        assert_eq!(
            path.file_name().unwrap().to_str().unwrap(),
            "flight-s3____evil-9-deadline.jsonl"
        );
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(validate_flight(&text).unwrap().reason, "deadline");
        // Second trigger is a no-op: the first post-mortem wins.
        assert!(fr.write(&dir, "panic").unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn validator_rejects_malformed_artifacts() {
        let good = sample_recorder().dump("panic");
        for (mangle, why) in [
            ("".to_string(), "empty"),
            ("not json\n".to_string(), "bad meta json"),
            (
                good.replace("sunder-flight", "other-schema"),
                "wrong schema",
            ),
            (
                good.replace("\"version\":1", "\"version\":99"),
                "bad version",
            ),
            (
                good.replace("\"events\":3", "\"events\":7"),
                "count mismatch",
            ),
            (
                good.replace("\"type\":\"event\"", "\"type\":\"wat\""),
                "bad event type",
            ),
        ] {
            assert!(validate_flight(&mangle).is_err(), "should reject: {why}");
        }
    }
}
