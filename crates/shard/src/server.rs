//! The `sunder serve` daemon: a resilient streaming match service.
//!
//! One [`MatchServer`] owns a TCP listener, a [`PipelineCache`], and the
//! current pattern-DB epoch. Each accepted connection becomes one
//! [`StreamSession`] driven by two threads:
//!
//! * a **reader** that parses length-prefixed frames off the socket and
//!   pushes them into a *bounded* work queue — when the session's worker
//!   falls behind, the push blocks, which stops the reader, which fills
//!   the kernel socket buffer, which stalls the sender: end-to-end
//!   backpressure with no unbounded buffering anywhere
//!   (`serve_backpressure_stalls_total` counts the stalls);
//! * a **worker** that pops work items, feeds the session (each chunk
//!   under its own deadline [`Budget`] wired to the session's
//!   [`CancelToken`]), and writes replies. Every chunk runs inside
//!   `catch_unwind`, so a panicking automaton (or an injected
//!   [`FaultKind::Panic`]) poisons exactly one session: the client gets
//!   an `Error` frame, the fault is attributed in telemetry, and every
//!   other session keeps streaming.
//!
//! **Admission control** happens in two steps: a global session cap at
//! accept time (`ERR_BUSY`) and a per-tenant quota at `Hello`
//! (`ERR_QUOTA`). **Hot reload** swaps the epoch atomically: new
//! sessions pin the new pipeline; in-flight sessions finish on the
//! `Arc` they pinned at open. **Graceful drain** stops accepting,
//! waits for in-flight sessions up to a hard deadline, then cancels
//! their budgets and shuts their sockets down.
//!
//! Server-side fault injection reuses [`FaultPlan`]: worker-level
//! directives (`panic ITEM`, `stall ITEM MS`) are matched against the
//! trailing integer of the *tenant name* (`tenant "s7"` → plan item 7),
//! so injection is deterministic no matter the order connections land.

use std::collections::{HashMap, VecDeque};
use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sunder_automata::{anml, AutomataError, Nfa};
use sunder_oracle::PipelineConfig;
use sunder_resilience::{Budget, CancelToken, FaultKind, FaultPlan};
use sunder_sim::EngineKind;

use crate::cache::{PipelineCache, ShardSpec};
use crate::frame::{
    decode_client, read_raw, ClientFrame, FrameError, ServerFrame, DEFAULT_MAX_FRAME_BYTES,
    ERR_BUSY, ERR_DEADLINE, ERR_INTERNAL, ERR_PANIC, ERR_PROTOCOL, ERR_QUOTA, ERR_RELOAD,
    ERR_SHUTDOWN, ERR_VERSION, PROTOCOL_VERSION,
};
use crate::session::{SessionError, StreamSession};

/// Tuning and robustness knobs for a [`MatchServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Pipeline configuration compiled for every pattern DB.
    pub config: PipelineConfig,
    /// Sharding spec for compiled pipelines.
    pub spec: ShardSpec,
    /// Per-shard engine kind.
    pub engine: EngineKind,
    /// Global cap on concurrently open sessions (`ERR_BUSY` beyond it).
    pub max_sessions: usize,
    /// Per-tenant cap on concurrently open sessions (`ERR_QUOTA`).
    pub per_tenant_sessions: usize,
    /// Bounded work-queue depth per session (backpressure threshold).
    pub queue_depth: usize,
    /// Cap on a frame's declared length.
    pub max_frame_bytes: u32,
    /// Per-chunk execution deadline (`ERR_DEADLINE` when tripped).
    pub chunk_deadline: Option<Duration>,
    /// Hard deadline for [`MatchServer::drain`].
    pub drain_deadline: Duration,
    /// Server-side injected faults, keyed by tenant trailing integer.
    pub fault_plan: FaultPlan,
    /// Observability listener address (`/metrics`, `/healthz`,
    /// `/readyz`, `/statusz`); `None` disables the listener.
    pub obs_addr: Option<String>,
    /// Where flight-recorder post-mortems land; `None` disables the
    /// per-session recorder entirely.
    pub flight_recorder_dir: Option<std::path::PathBuf>,
    /// Flight-recorder ring capacity (events per session).
    pub flight_events: usize,
    /// Per-tenant chunk-service SLO: chunks slower than this burn
    /// `serve_slo_violations_total{tenant}`.
    pub chunk_slo: Duration,
    /// Slow-session threshold: a single chunk over this dumps the
    /// session's flight recorder (reason `slow`).
    pub slow_chunk: Option<Duration>,
    /// How often the obs snapshot thread diffs counters into
    /// `*_per_sec` rate gauges.
    pub snapshot_interval: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            config: PipelineConfig::Identity,
            spec: ShardSpec::MaxShards(4),
            engine: EngineKind::Adaptive,
            max_sessions: 256,
            per_tenant_sessions: 64,
            queue_depth: 8,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            chunk_deadline: None,
            drain_deadline: Duration::from_secs(5),
            fault_plan: FaultPlan::none(),
            obs_addr: None,
            flight_recorder_dir: None,
            flight_events: crate::flight::DEFAULT_FLIGHT_EVENTS,
            chunk_slo: Duration::from_millis(100),
            slow_chunk: None,
            snapshot_interval: Duration::from_secs(1),
        }
    }
}

/// One hot-reload generation of the pattern DB.
#[derive(Debug)]
pub struct LoadedDb {
    /// Monotonic reload generation (first load is epoch 1).
    pub epoch: u64,
    /// The compiled pipeline sessions of this epoch pin.
    pub pipeline: Arc<crate::cache::CompiledPipeline>,
}

/// What [`MatchServer::drain`] observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Sessions that finished on their own within the deadline.
    pub drained: usize,
    /// Sessions forcibly cancelled at the deadline.
    pub forced: usize,
    /// Wall-clock time the drain took.
    pub duration: Duration,
}

/// Items flowing from a session's reader to its worker.
enum Work {
    Frame(ClientFrame),
    /// Reader-side failure (frame error); worker reports and closes.
    Bad(FrameError),
    /// Socket EOF or transport error: no more input ever.
    Eof,
}

/// The bounded reader→worker queue. Pushing past `depth` blocks the
/// reader (that *is* the backpressure) and counts a stall. Every item
/// is timestamped at enqueue so the worker can attribute queue wait to
/// the tenant's latency histogram.
struct WorkQueue {
    items: Mutex<VecDeque<(Work, Instant)>>,
    depth: usize,
    cv: Condvar,
    /// Pre-interned: the push path runs per frame.
    stalls: sunder_telemetry::CounterHandle,
}

impl WorkQueue {
    fn new(depth: usize) -> WorkQueue {
        WorkQueue {
            items: Mutex::new(VecDeque::new()),
            depth: depth.max(1),
            cv: Condvar::new(),
            stalls: sunder_telemetry::counter_handle("serve_backpressure_stalls_total", &[]),
        }
    }

    fn push(&self, item: Work) {
        let enqueued = Instant::now();
        let mut q = self.items.lock().unwrap();
        if q.len() >= self.depth {
            self.stalls.add(1);
            while q.len() >= self.depth {
                q = self.cv.wait(q).unwrap();
            }
        }
        q.push_back((item, enqueued));
        self.cv.notify_all();
    }

    /// Pops the next item plus how long it sat in the queue.
    fn pop(&self) -> (Work, Duration) {
        let mut q = self.items.lock().unwrap();
        loop {
            if let Some((item, enqueued)) = q.pop_front() {
                self.cv.notify_all();
                return (item, enqueued.elapsed());
            }
            q = self.cv.wait(q).unwrap();
        }
    }
}

/// Per-connection registry entry so drain can reach into live sessions.
pub(crate) struct ConnHandle {
    cancel: CancelToken,
    sock: TcpStream,
}

pub(crate) struct ServerInner {
    pub(crate) cfg: ServerConfig,
    pub(crate) cache: PipelineCache,
    pub(crate) db: Mutex<Arc<LoadedDb>>,
    pub(crate) next_epoch: AtomicU64,
    pub(crate) draining: std::sync::atomic::AtomicBool,
    /// True while a hot reload is compiling the next epoch; `/readyz`
    /// reports 503 for the window.
    pub(crate) reloading: std::sync::atomic::AtomicBool,
    pub(crate) active: AtomicUsize,
    pub(crate) tenants: Mutex<HashMap<String, usize>>,
    pub(crate) conns: Mutex<HashMap<u64, ConnHandle>>,
    pub(crate) next_conn: AtomicU64,
    /// Sessions ever accepted (telemetry-independent, for `/statusz`).
    pub(crate) sessions_started: AtomicU64,
    /// Frames currently sitting in reader→worker queues, server-wide.
    pub(crate) queued: AtomicUsize,
    /// When the server started (uptime in `/statusz`).
    pub(crate) started: Instant,
}

impl ServerInner {
    pub(crate) fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    pub(crate) fn is_reloading(&self) -> bool {
        self.reloading.load(Ordering::Acquire)
    }

    pub(crate) fn epoch(&self) -> u64 {
        self.db.lock().unwrap().epoch
    }
}

/// A running streaming match server. Dropping it drains with the
/// configured deadline.
pub struct MatchServer {
    inner: Arc<ServerInner>,
    addr: SocketAddr,
    accept: Option<JoinHandle<Vec<JoinHandle<()>>>>,
    obs: Option<crate::obs::ObsHandle>,
    drained: bool,
}

impl std::fmt::Debug for MatchServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MatchServer")
            .field("addr", &self.addr)
            .field("active", &self.inner.active.load(Ordering::Relaxed))
            .field("epoch", &self.epoch())
            .finish()
    }
}

impl MatchServer {
    /// Compiles `nfa` as epoch 1 and starts listening on `addr`
    /// (use port 0 to let the OS pick; see [`MatchServer::local_addr`]).
    ///
    /// # Errors
    ///
    /// Compilation failures and socket errors, as strings (the caller is
    /// the CLI).
    pub fn start(addr: &str, nfa: &Nfa, cfg: ServerConfig) -> Result<MatchServer, String> {
        let cache = PipelineCache::new(cfg.spec, cfg.engine);
        let pipeline = cache
            .get_or_compile(nfa, cfg.config)
            .map_err(|e| format!("compile pattern DB: {e}"))?;
        let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("set nonblocking: {e}"))?;
        let local = listener.local_addr().map_err(|e| e.to_string())?;
        let inner = Arc::new(ServerInner {
            cfg,
            cache,
            db: Mutex::new(Arc::new(LoadedDb { epoch: 1, pipeline })),
            next_epoch: AtomicU64::new(2),
            draining: std::sync::atomic::AtomicBool::new(false),
            reloading: std::sync::atomic::AtomicBool::new(false),
            active: AtomicUsize::new(0),
            tenants: Mutex::new(HashMap::new()),
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
            sessions_started: AtomicU64::new(0),
            queued: AtomicUsize::new(0),
            started: Instant::now(),
        });
        let obs = match &inner.cfg.obs_addr {
            Some(addr) => Some(crate::obs::start_obs(&inner, addr)?),
            None => None,
        };
        let accept_inner = Arc::clone(&inner);
        let accept = std::thread::Builder::new()
            .name("serve-accept".into())
            .spawn(move || accept_loop(&accept_inner, &listener))
            .map_err(|e| format!("spawn accept loop: {e}"))?;
        Ok(MatchServer {
            inner,
            addr: local,
            accept: Some(accept),
            obs,
            drained: false,
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The current pattern-DB epoch.
    pub fn epoch(&self) -> u64 {
        self.inner.db.lock().unwrap().epoch
    }

    /// Sessions currently open.
    pub fn active_sessions(&self) -> usize {
        self.inner.active.load(Ordering::Relaxed)
    }

    /// The pipeline cache (hit/miss counters survive reloads).
    pub fn cache(&self) -> &PipelineCache {
        &self.inner.cache
    }

    /// The observability listener's address, when one is running.
    pub fn obs_addr(&self) -> Option<SocketAddr> {
        self.obs.as_ref().map(crate::obs::ObsHandle::addr)
    }

    /// The live `/statusz` JSON document — the single source of truth
    /// shared by the HTTP endpoint and the stdin `status` command.
    pub fn status_json(&self) -> String {
        crate::obs::status_json(&self.inner).render()
    }

    /// Direct access to server internals for in-crate tests (readiness
    /// flag manipulation without racing a real drain or reload).
    #[cfg(test)]
    pub(crate) fn inner_for_tests(&self) -> Arc<ServerInner> {
        Arc::clone(&self.inner)
    }

    /// Hot-reloads the pattern DB from `nfa`, returning the new epoch.
    /// In-flight sessions finish on the pipeline they pinned at open.
    ///
    /// # Errors
    ///
    /// Compilation failures; the current epoch stays live on error.
    pub fn reload(&self, nfa: &Nfa) -> Result<u64, AutomataError> {
        reload_db(&self.inner, nfa)
    }

    /// Hot-reloads the pattern DB from a compiled `.sdb` artifact —
    /// mapped and validated, never recompiled. The artifact must have
    /// been compiled with this server's exact pipeline configuration,
    /// sharding spec, and engine kind; any mismatch (or any validation
    /// failure) is refused and the current epoch stays live, including
    /// for in-flight sessions.
    ///
    /// # Errors
    ///
    /// Validation rejections and parameter mismatches, as strings (the
    /// caller is the CLI).
    pub fn reload_artifact(&self, path: &std::path::Path) -> Result<u64, String> {
        reload_db_artifact(&self.inner, path)
    }

    /// Stops accepting, waits for in-flight sessions up to the
    /// configured drain deadline, then cancels the stragglers' budgets
    /// and shuts their sockets down. Idempotent.
    pub fn drain(&mut self) -> DrainReport {
        let started = Instant::now();
        let _span = sunder_telemetry::span("serve.drain");
        self.inner.draining.store(true, Ordering::Release);
        let deadline = started + self.inner.cfg.drain_deadline;
        let at_start = self.inner.active.load(Ordering::Acquire);
        while self.inner.active.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let stragglers = self.inner.active.load(Ordering::Acquire);
        if stragglers > 0 {
            // Hard deadline: cancel in-flight chunk budgets and yank the
            // sockets so blocked reads/writes unblock immediately.
            for conn in self.inner.conns.lock().unwrap().values() {
                conn.cancel.cancel();
                let _ = conn.sock.shutdown(Shutdown::Both);
            }
        }
        let mut workers = Vec::new();
        if let Some(accept) = self.accept.take() {
            workers = accept.join().unwrap_or_default();
        }
        for w in workers {
            let _ = w.join();
        }
        // The obs listener answers (`/readyz` 503) for the whole drain
        // window; it goes down with the last worker.
        if let Some(mut obs) = self.obs.take() {
            obs.shutdown();
        }
        self.drained = true;
        let duration = started.elapsed();
        sunder_telemetry::instant(
            "serve.drained",
            &[
                ("sessions_at_start", (at_start as u64).into()),
                ("forced", (stragglers as u64).into()),
                ("duration_us", (duration.as_micros() as u64).into()),
            ],
        );
        DrainReport {
            drained: at_start.saturating_sub(stragglers),
            forced: stragglers,
            duration,
        }
    }
}

impl Drop for MatchServer {
    fn drop(&mut self) {
        if !self.drained {
            self.drain();
        }
    }
}

fn reload_db_artifact(inner: &ServerInner, path: &std::path::Path) -> Result<u64, String> {
    inner.reloading.store(true, Ordering::Release);
    let result = (|| {
        let mapped =
            sunder_artifact::MappedDb::open(path).map_err(|e| format!("load artifact: {e}"))?;
        if mapped.config() != inner.cfg.config {
            return Err(format!(
                "artifact config {} does not match server config {}",
                mapped.config(),
                inner.cfg.config
            ));
        }
        if mapped.spec() != inner.cfg.spec.params() {
            return Err(format!(
                "artifact sharding spec \"{}\" does not match server spec \"{}\"",
                mapped.spec(),
                inner.cfg.spec.key_text()
            ));
        }
        if mapped.engine() != inner.cfg.engine {
            return Err(format!(
                "artifact engine {} does not match server engine {}",
                mapped.engine().name(),
                inner.cfg.engine.name()
            ));
        }
        let pipeline = Arc::new(crate::cache::CompiledPipeline::from(mapped.into_parts()));
        let epoch = inner.next_epoch.fetch_add(1, Ordering::Relaxed);
        *inner.db.lock().unwrap() = Arc::new(LoadedDb { epoch, pipeline });
        sunder_telemetry::counter_add("serve_reloads_total", &[("source", "artifact")], 1);
        sunder_telemetry::instant("serve.reloaded", &[("epoch", epoch.into())]);
        Ok(epoch)
    })();
    inner.reloading.store(false, Ordering::Release);
    result
}

fn reload_db(inner: &ServerInner, nfa: &Nfa) -> Result<u64, AutomataError> {
    // `/readyz` reports 503 while the next epoch compiles: a scraping
    // load balancer stops routing new streams to a server mid-swap.
    inner.reloading.store(true, Ordering::Release);
    let result = (|| {
        let pipeline = inner.cache.get_or_compile(nfa, inner.cfg.config)?;
        let epoch = inner.next_epoch.fetch_add(1, Ordering::Relaxed);
        *inner.db.lock().unwrap() = Arc::new(LoadedDb { epoch, pipeline });
        sunder_telemetry::counter_add("serve_reloads_total", &[], 1);
        sunder_telemetry::instant("serve.reloaded", &[("epoch", epoch.into())]);
        Ok(epoch)
    })();
    inner.reloading.store(false, Ordering::Release);
    result
}

/// Accepts until drain; returns the connection thread handles so drain
/// can join them.
fn accept_loop(inner: &Arc<ServerInner>, listener: &TcpListener) -> Vec<JoinHandle<()>> {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    while !inner.is_draining() {
        match listener.accept() {
            Ok((sock, _peer)) => {
                if inner.is_draining() {
                    refuse(&sock, ERR_SHUTDOWN, "server is draining");
                    continue;
                }
                if inner.active.load(Ordering::Acquire) >= inner.cfg.max_sessions {
                    sunder_telemetry::counter_add("serve_rejected_total", &[("reason", "busy")], 1);
                    refuse(&sock, ERR_BUSY, "session cap reached");
                    continue;
                }
                inner.active.fetch_add(1, Ordering::AcqRel);
                let conn_inner = Arc::clone(inner);
                let handle = std::thread::Builder::new()
                    .name("serve-conn".into())
                    .spawn(move || serve_connection(&conn_inner, sock))
                    .expect("spawn connection thread");
                conns.push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    conns
}

fn refuse(sock: &TcpStream, code: u16, message: &str) {
    let mut w = BufWriter::new(sock);
    let _ = ServerFrame::Error {
        code,
        message: message.to_string(),
    }
    .write_to(&mut w);
    let _ = w.flush();
    let _ = sock.shutdown(Shutdown::Both);
}

/// The trailing integer of a tenant name (`"s17"` → 17), used to key
/// server-side fault-plan items deterministically under concurrent
/// accepts.
fn tenant_item(tenant: &str) -> Option<usize> {
    let digits: String = tenant
        .chars()
        .rev()
        .take_while(char::is_ascii_digit)
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    digits.parse().ok()
}

/// Worker-level faults the server acts out on a session's first chunk.
#[derive(Default)]
struct InjectedFaults {
    panic: bool,
    stall: Option<u64>,
}

fn injected_for(plan: &FaultPlan, tenant: &str) -> InjectedFaults {
    let mut out = InjectedFaults::default();
    let Some(item) = tenant_item(tenant) else {
        return out;
    };
    for kind in plan.faults_for(item) {
        match kind {
            FaultKind::Panic => out.panic = true,
            FaultKind::Stall { millis } => out.stall = Some(*millis),
            // Connection-level faults are the *client's* to act out.
            _ => {}
        }
    }
    out
}

fn session_fault(tenant: &str, kind: &str) {
    sunder_telemetry::counter_add("serve_session_faults_total", &[("kind", kind)], 1);
    sunder_telemetry::instant(
        "serve.session_fault",
        &[("tenant", tenant.into()), ("kind", kind.into())],
    );
}

/// Per-session observability: label handles interned once at session
/// open (per-chunk recording is an atomic or an uncontended lock, never
/// a string allocation), the SLO burn counter, and the optional flight
/// recorder.
struct SessionObs {
    service_us: sunder_telemetry::HistogramHandle,
    queue_wait_us: sunder_telemetry::HistogramHandle,
    slo_violations: sunder_telemetry::CounterHandle,
    chunks_total: sunder_telemetry::CounterHandle,
    bytes_total: sunder_telemetry::CounterHandle,
    reports_total: sunder_telemetry::CounterHandle,
    chunk_slo: Duration,
    slow_chunk: Option<Duration>,
    flight: Option<crate::flight::FlightRecorder>,
    flight_dir: Option<std::path::PathBuf>,
}

impl SessionObs {
    fn new(cfg: &ServerConfig, tenant: &str, session: u64, epoch: u64) -> SessionObs {
        let mut flight = cfg
            .flight_recorder_dir
            .as_ref()
            .map(|_| crate::flight::FlightRecorder::new(tenant, session, epoch, cfg.flight_events));
        if let Some(fr) = &mut flight {
            fr.record(
                "session_open",
                &[("tenant", tenant.to_string()), ("epoch", epoch.to_string())],
            );
        }
        SessionObs {
            service_us: sunder_telemetry::histogram_handle(
                "serve_chunk_service_us",
                &[("tenant", tenant)],
            ),
            queue_wait_us: sunder_telemetry::histogram_handle(
                "serve_queue_wait_us",
                &[("tenant", tenant)],
            ),
            slo_violations: sunder_telemetry::counter_handle(
                "serve_slo_violations_total",
                &[("tenant", tenant)],
            ),
            chunks_total: sunder_telemetry::counter_handle("serve_chunks_total", &[]),
            bytes_total: sunder_telemetry::counter_handle("serve_bytes_total", &[]),
            reports_total: sunder_telemetry::counter_handle("serve_reports_total", &[]),
            chunk_slo: cfg.chunk_slo,
            slow_chunk: cfg.slow_chunk,
            flight,
            flight_dir: cfg.flight_recorder_dir.clone(),
        }
    }

    /// Accounts one served chunk; dumps the flight recorder when the
    /// chunk crossed the slow-session threshold.
    fn chunk(&mut self, bytes: usize, wait: Duration, service: Duration, reports: usize) {
        let service_us = service.as_micros() as u64;
        self.chunks_total.add(1);
        self.bytes_total.add(bytes as u64);
        self.reports_total.add(reports as u64);
        self.service_us.record(service_us);
        self.queue_wait_us.record(wait.as_micros() as u64);
        if service > self.chunk_slo {
            self.slo_violations.add(1);
        }
        if let Some(fr) = &mut self.flight {
            fr.record(
                "chunk",
                &[
                    ("bytes", bytes.to_string()),
                    ("wait_us", wait.as_micros().to_string()),
                    ("service_us", service_us.to_string()),
                    ("reports", reports.to_string()),
                ],
            );
            if self.slow_chunk.is_some_and(|t| service > t) {
                self.dump("slow");
            }
        }
    }

    /// Records a terminal event; `dump_reason` writes the post-mortem.
    fn fault(&mut self, kind: &str, dump_reason: Option<&'static str>) {
        if let Some(fr) = &mut self.flight {
            fr.record("error", &[("kind", kind.to_string())]);
        }
        if let Some(reason) = dump_reason {
            self.dump(reason);
        }
    }

    fn event(&mut self, name: &'static str, fields: &[(&'static str, String)]) {
        if let Some(fr) = &mut self.flight {
            fr.record(name, fields);
        }
    }

    fn dump(&mut self, reason: &str) {
        if let (Some(fr), Some(dir)) = (&mut self.flight, &self.flight_dir) {
            if let Err(e) = fr.write(dir, reason) {
                sunder_telemetry::instant(
                    "serve.flight_write_failed",
                    &[("error", e.to_string().into())],
                );
            }
        }
    }
}

/// Runs one connection to completion: handshake, reader-thread spawn,
/// worker loop. Always decrements the active count and deregisters on
/// the way out.
fn serve_connection(inner: &Arc<ServerInner>, sock: TcpStream) {
    let conn_id = inner.next_conn.fetch_add(1, Ordering::Relaxed);
    let cancel = CancelToken::new();
    if let Ok(clone) = sock.try_clone() {
        inner.conns.lock().unwrap().insert(
            conn_id,
            ConnHandle {
                cancel: cancel.clone(),
                sock: clone,
            },
        );
    }
    sunder_telemetry::counter_add("serve_sessions_total", &[], 1);
    inner.sessions_started.fetch_add(1, Ordering::Relaxed);
    let tenant = run_session(inner, &sock, &cancel, conn_id);
    if let Some(tenant) = tenant {
        let mut tenants = inner.tenants.lock().unwrap();
        if let Some(n) = tenants.get_mut(&tenant) {
            *n -= 1;
            if *n == 0 {
                tenants.remove(&tenant);
            }
        }
    }
    inner.conns.lock().unwrap().remove(&conn_id);
    let _ = sock.shutdown(Shutdown::Both);
    inner.active.fetch_sub(1, Ordering::AcqRel);
}

/// The session proper. Returns the tenant name once admitted (so the
/// caller can release the quota), `None` if admission failed.
fn run_session(
    inner: &Arc<ServerInner>,
    sock: &TcpStream,
    cancel: &CancelToken,
    conn_id: u64,
) -> Option<String> {
    let mut reader = BufReader::new(sock.try_clone().ok()?);
    let writer = Arc::new(Mutex::new(BufWriter::new(sock.try_clone().ok()?)));
    let max_frame = inner.cfg.max_frame_bytes;

    let send = |frame: &ServerFrame| -> bool {
        let mut w = writer.lock().unwrap();
        frame.write_to(&mut *w).and_then(|()| w.flush()).is_ok()
    };

    // Handshake: the first frame must be a well-formed Hello.
    let tenant = match read_raw(&mut reader, max_frame) {
        Ok(Some(body)) => match decode_client(&body) {
            Ok(ClientFrame::Hello { tenant, .. }) => tenant,
            Ok(_) => {
                send(&ServerFrame::Error {
                    code: ERR_PROTOCOL,
                    message: "expected Hello".into(),
                });
                return None;
            }
            Err(e @ FrameError::UnknownVersion(_)) => {
                send(&ServerFrame::Error {
                    code: ERR_VERSION,
                    message: e.to_string(),
                });
                return None;
            }
            Err(e) => {
                send(&ServerFrame::Error {
                    code: ERR_PROTOCOL,
                    message: e.to_string(),
                });
                return None;
            }
        },
        Ok(None) => return None,
        Err(e) => {
            send(&ServerFrame::Error {
                code: ERR_PROTOCOL,
                message: e.to_string(),
            });
            return None;
        }
    };

    // Tenant quota.
    {
        let mut tenants = inner.tenants.lock().unwrap();
        let n = tenants.entry(tenant.clone()).or_insert(0);
        if *n >= inner.cfg.per_tenant_sessions {
            drop(tenants);
            sunder_telemetry::counter_add("serve_rejected_total", &[("reason", "quota")], 1);
            send(&ServerFrame::Error {
                code: ERR_QUOTA,
                message: format!("tenant {tenant:?} is at its session quota"),
            });
            return None;
        }
        *n += 1;
    }

    // Pin the current epoch for the whole session.
    let db = Arc::clone(&inner.db.lock().unwrap());
    let mut session = StreamSession::new(Arc::clone(&db.pipeline), db.epoch);
    if !send(&ServerFrame::HelloAck {
        version: PROTOCOL_VERSION,
        epoch: db.epoch,
    }) {
        return Some(tenant);
    }
    sunder_telemetry::instant(
        "serve.session_open",
        &[
            ("tenant", tenant.as_str().into()),
            ("epoch", db.epoch.into()),
        ],
    );

    let faults = injected_for(&inner.cfg.fault_plan, &tenant);
    let mut obs = SessionObs::new(&inner.cfg, &tenant, conn_id, db.epoch);

    // Reader thread: socket → bounded queue. Scoped so a dead worker
    // path can't leak it past the connection.
    let queue = Arc::new(WorkQueue::new(inner.cfg.queue_depth));
    std::thread::scope(|scope| {
        let reader_queue = Arc::clone(&queue);
        let reader_inner = Arc::clone(inner);
        scope.spawn(move || {
            let push = |work: Work| {
                reader_queue.push(work);
                reader_inner.queued.fetch_add(1, Ordering::Relaxed);
            };
            loop {
                match read_raw(&mut reader, max_frame) {
                    Ok(Some(body)) => match decode_client(&body) {
                        Ok(frame) => {
                            let finish = matches!(frame, ClientFrame::Finish);
                            push(Work::Frame(frame));
                            if finish {
                                break; // protocol: nothing follows Finish
                            }
                        }
                        Err(e) => {
                            push(Work::Bad(e));
                            break;
                        }
                    },
                    Ok(None) => {
                        push(Work::Eof);
                        break;
                    }
                    Err(e) => {
                        push(Work::Bad(e));
                        break;
                    }
                }
            }
        });

        // Worker loop: queue → session → socket.
        worker_loop(
            inner,
            &mut session,
            &tenant,
            &faults,
            &queue,
            cancel,
            &send,
            &mut obs,
        );
        // Unblock the socket so the reader thread (possibly mid-read)
        // exits before the scope joins it.
        let _ = sock.shutdown(Shutdown::Read);
    });
    Some(tenant)
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    inner: &Arc<ServerInner>,
    session: &mut StreamSession,
    tenant: &str,
    faults: &InjectedFaults,
    queue: &WorkQueue,
    cancel: &CancelToken,
    send: &dyn Fn(&ServerFrame) -> bool,
    obs: &mut SessionObs,
) {
    let mut first_chunk = true;
    loop {
        let (work, wait) = queue.pop();
        inner.queued.fetch_sub(1, Ordering::Relaxed);
        match work {
            Work::Frame(ClientFrame::Chunk(bytes)) => {
                if first_chunk {
                    first_chunk = false;
                    if let Some(millis) = faults.stall {
                        std::thread::sleep(Duration::from_millis(millis));
                    }
                }
                let mut budget = Budget::with_cancel(cancel.clone()).check_every(64);
                if let Some(limit) = inner.cfg.chunk_deadline {
                    budget = budget.deadline(limit);
                }
                let inject_panic = faults.panic && session.chunks() == 0;
                let started = Instant::now();
                let result = catch_unwind(AssertUnwindSafe(|| {
                    if inject_panic {
                        panic!("injected panic: tenant {tenant}");
                    }
                    session.feed(&bytes, &budget)
                }));
                let service = started.elapsed();
                match result {
                    Ok(Ok(reports)) => {
                        obs.chunk(bytes.len(), wait, service, reports.len());
                        if !send(&ServerFrame::Reports(reports)) {
                            return;
                        }
                    }
                    Ok(Err(e)) => {
                        obs.chunk(bytes.len(), wait, service, 0);
                        let (code, kind, dump) = match &e {
                            SessionError::Interrupted(_) => {
                                (ERR_DEADLINE, "deadline", Some("deadline"))
                            }
                            _ => (ERR_INTERNAL, "internal", None),
                        };
                        session_fault(tenant, kind);
                        obs.fault(kind, dump);
                        send(&ServerFrame::Error {
                            code,
                            message: e.to_string(),
                        });
                        return;
                    }
                    Err(_) => {
                        obs.chunk(bytes.len(), wait, service, 0);
                        session_fault(tenant, "panic");
                        obs.fault("panic", Some("panic"));
                        send(&ServerFrame::Error {
                            code: ERR_PANIC,
                            message: "session worker panicked (isolated)".into(),
                        });
                        return;
                    }
                }
            }
            Work::Frame(ClientFrame::Finish) => {
                match catch_unwind(AssertUnwindSafe(|| {
                    let mut budget = Budget::with_cancel(cancel.clone()).check_every(64);
                    if let Some(limit) = inner.cfg.chunk_deadline {
                        budget = budget.deadline(limit);
                    }
                    session.finish(&budget)
                })) {
                    Ok(Ok((tail, summary))) => {
                        obs.reports_total.add(tail.len() as u64);
                        obs.event(
                            "finish",
                            &[
                                ("chunks", summary.chunks.to_string()),
                                ("bytes", summary.bytes.to_string()),
                                ("reports", summary.reports.to_string()),
                            ],
                        );
                        if send(&ServerFrame::Reports(tail)) {
                            send(&ServerFrame::Done {
                                chunks: summary.chunks,
                                bytes: summary.bytes,
                                reports: summary.reports,
                                epoch: summary.epoch,
                            });
                        }
                    }
                    Ok(Err(e)) => {
                        let (code, kind, dump) = match &e {
                            SessionError::Interrupted(_) => {
                                (ERR_DEADLINE, "deadline", Some("deadline"))
                            }
                            _ => (ERR_INTERNAL, "internal", None),
                        };
                        session_fault(tenant, kind);
                        obs.fault(kind, dump);
                        send(&ServerFrame::Error {
                            code,
                            message: e.to_string(),
                        });
                    }
                    Err(_) => {
                        session_fault(tenant, "panic");
                        obs.fault("panic", Some("panic"));
                        send(&ServerFrame::Error {
                            code: ERR_PANIC,
                            message: "session worker panicked (isolated)".into(),
                        });
                    }
                }
                return;
            }
            Work::Frame(ClientFrame::Reload(text)) => match anml::parse(&text) {
                Ok(nfa) => match reload_db(inner, &nfa) {
                    Ok(epoch) => {
                        obs.event("reload", &[("epoch", epoch.to_string())]);
                        if !send(&ServerFrame::Reloaded { epoch }) {
                            return;
                        }
                    }
                    Err(e) => {
                        send(&ServerFrame::Error {
                            code: ERR_RELOAD,
                            message: format!("reload failed: {e}"),
                        });
                        return;
                    }
                },
                Err(e) => {
                    send(&ServerFrame::Error {
                        code: ERR_RELOAD,
                        message: format!("reload failed: {e}"),
                    });
                    return;
                }
            },
            Work::Frame(ClientFrame::Hello { .. }) => {
                send(&ServerFrame::Error {
                    code: ERR_PROTOCOL,
                    message: "duplicate Hello".into(),
                });
                return;
            }
            Work::Bad(e) => {
                // A truncated frame IS a mid-frame hangup — on the wire
                // it is indistinguishable from a deliberate disconnect,
                // so it shares the disconnect attribution.
                let kind = match e {
                    FrameError::Truncated => "disconnect",
                    _ => "protocol",
                };
                session_fault(tenant, kind);
                obs.fault(kind, None);
                let code = match e {
                    FrameError::UnknownVersion(_) => ERR_VERSION,
                    _ => ERR_PROTOCOL,
                };
                send(&ServerFrame::Error {
                    code,
                    message: e.to_string(),
                });
                return;
            }
            Work::Eof => {
                // Client hung up without Finish: a mid-stream disconnect.
                if !session.is_finished() {
                    session_fault(tenant, "disconnect");
                    obs.fault("disconnect", None);
                }
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_item_parses_trailing_integer() {
        assert_eq!(tenant_item("s17"), Some(17));
        assert_eq!(tenant_item("7"), Some(7));
        assert_eq!(tenant_item("tenant-003"), Some(3));
        assert_eq!(tenant_item("alpha"), None);
        assert_eq!(tenant_item(""), None);
    }

    #[test]
    fn work_queue_blocks_at_depth_and_drains_in_order() {
        let q = Arc::new(WorkQueue::new(2));
        let producer = Arc::clone(&q);
        let handle = std::thread::spawn(move || {
            for i in 0..8u64 {
                producer.push(Work::Frame(ClientFrame::Chunk(vec![i as u8])));
            }
            producer.push(Work::Eof);
        });
        let mut got = Vec::new();
        loop {
            match q.pop().0 {
                Work::Frame(ClientFrame::Chunk(b)) => got.push(b[0]),
                Work::Eof => break,
                _ => unreachable!(),
            }
            // Slow consumer: the producer must block, not drop or grow.
            std::thread::sleep(Duration::from_millis(1));
        }
        handle.join().unwrap();
        assert_eq!(got, (0..8).collect::<Vec<u8>>());
    }
}
