//! The `sunder serve` wire protocol: length-prefixed frames over TCP.
//!
//! Every frame is `[u32 BE length][u8 opcode][payload]`, where `length`
//! counts the opcode byte plus the payload (so the minimum legal length
//! is 1). The parser is written to be hostile-input safe: zero-length
//! frames, lengths above the server's configured cap, truncated bodies,
//! unknown opcodes, and unknown protocol versions all surface as typed
//! [`FrameError`]s — never panics, never unbounded allocation (the
//! length is validated against the cap *before* the body buffer is
//! allocated).
//!
//! ## Client → server
//!
//! | opcode | frame | payload |
//! |--------|-------|---------|
//! | `0x01` | `Hello` | `u16 version`, `u16 tenant_len`, tenant bytes |
//! | `0x02` | `Chunk` | raw input bytes |
//! | `0x03` | `Finish` | empty |
//! | `0x04` | `Reload` | ANML text of the replacement rule automaton |
//!
//! ## Server → client
//!
//! | opcode | frame | payload |
//! |--------|-------|---------|
//! | `0x81` | `HelloAck` | `u16 version`, `u64 epoch` |
//! | `0x82` | `Reports` | repeated `(u64 position, u32 rule)` |
//! | `0x83` | `Done` | `u64 chunks`, `u64 bytes`, `u64 reports`, `u64 epoch` |
//! | `0x84` | `Error` | `u16 code`, UTF-8 message |
//! | `0x85` | `Reloaded` | `u64 epoch` |
//!
//! A session is: `Hello` → `HelloAck`, then any number of `Chunk` →
//! `Reports` exchanges (a chunk completing zero reports still gets an
//! empty `Reports`, so the client can pace itself), then `Finish` →
//! `Reports` (the padded tail) followed by `Done`. `Reload` may arrive
//! instead of `Chunk` on any connection; the server answers `Reloaded`
//! with the new epoch. Fatal problems answer `Error` and close.

use std::io::{Read, Write};

/// Protocol version this build speaks.
pub const PROTOCOL_VERSION: u16 = 1;

/// Default cap on a frame's declared length (opcode + payload), bytes.
pub const DEFAULT_MAX_FRAME_BYTES: u32 = 16 * 1024 * 1024;

/// `Error` frame code: the server is at its session cap.
pub const ERR_BUSY: u16 = 1;
/// `Error` frame code: the tenant is over its session quota.
pub const ERR_QUOTA: u16 = 2;
/// `Error` frame code: malformed or protocol-violating frame.
pub const ERR_PROTOCOL: u16 = 3;
/// `Error` frame code: unsupported protocol version in `Hello`.
pub const ERR_VERSION: u16 = 4;
/// `Error` frame code: the chunk blew its execution deadline.
pub const ERR_DEADLINE: u16 = 5;
/// `Error` frame code: the session worker panicked (isolated).
pub const ERR_PANIC: u16 = 6;
/// `Error` frame code: a `Reload` payload failed to compile.
pub const ERR_RELOAD: u16 = 7;
/// `Error` frame code: internal execution failure.
pub const ERR_INTERNAL: u16 = 8;
/// `Error` frame code: the server is draining and refused the work.
pub const ERR_SHUTDOWN: u16 = 9;

/// A parsed client → server frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientFrame {
    /// Session open: protocol version + tenant name.
    Hello {
        /// Protocol version the client speaks.
        version: u16,
        /// Tenant the session bills against (quota key).
        tenant: String,
    },
    /// One chunk of stream input.
    Chunk(Vec<u8>),
    /// End of stream: flush the tail, answer `Done`.
    Finish,
    /// Hot-reload the pattern DB from this ANML text.
    Reload(String),
}

/// A parsed server → client frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerFrame {
    /// Session accepted.
    HelloAck {
        /// Protocol version the server speaks.
        version: u16,
        /// Pipeline epoch the session pinned.
        epoch: u64,
    },
    /// Reports completed by the last chunk (original coordinates).
    Reports(Vec<(u64, u32)>),
    /// End-of-stream accounting.
    Done {
        /// Chunks the session fed.
        chunks: u64,
        /// Bytes the session fed.
        bytes: u64,
        /// Reports over the whole stream.
        reports: u64,
        /// Pipeline epoch the session executed on.
        epoch: u64,
    },
    /// Fatal session error; the server closes after sending it.
    Error {
        /// One of the `ERR_*` codes.
        code: u16,
        /// Human-readable detail.
        message: String,
    },
    /// A `Reload` succeeded; new sessions pin this epoch.
    Reloaded {
        /// The new pipeline epoch.
        epoch: u64,
    },
}

/// Why a frame failed to parse.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Declared length 0 (a frame must at least carry its opcode).
    ZeroLength,
    /// Declared length exceeds the configured cap.
    Oversized {
        /// The declared length.
        declared: u32,
        /// The cap it exceeded.
        max: u32,
    },
    /// The connection closed mid-frame.
    Truncated,
    /// Opcode not in the protocol table.
    UnknownOpcode(u8),
    /// `Hello` declared a protocol version this build does not speak.
    UnknownVersion(u16),
    /// The payload did not decode for its opcode.
    BadPayload(&'static str),
    /// Transport error.
    Io(std::io::ErrorKind),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::ZeroLength => f.write_str("zero-length frame"),
            FrameError::Oversized { declared, max } => {
                write!(f, "frame length {declared} exceeds cap {max}")
            }
            FrameError::Truncated => f.write_str("connection closed mid-frame"),
            FrameError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            FrameError::UnknownVersion(v) => write!(
                f,
                "unsupported protocol version {v} (this build speaks {PROTOCOL_VERSION})"
            ),
            FrameError::BadPayload(what) => write!(f, "bad payload: {what}"),
            FrameError::Io(kind) => write!(f, "transport error: {kind}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> FrameError {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            FrameError::Truncated
        } else {
            FrameError::Io(e.kind())
        }
    }
}

/// Reads one raw frame body (opcode + payload) off `r`, enforcing the
/// length cap *before* allocating. `Ok(None)` is a clean EOF at a frame
/// boundary — the peer hung up between frames, not inside one.
///
/// # Errors
///
/// [`FrameError::ZeroLength`], [`FrameError::Oversized`],
/// [`FrameError::Truncated`], or a transport error.
pub fn read_raw(r: &mut impl Read, max_frame_bytes: u32) -> Result<Option<Vec<u8>>, FrameError> {
    let mut len_buf = [0u8; 4];
    // A clean EOF before any length byte is a normal hangup.
    match r.read(&mut len_buf[..1]) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) => return Err(e.into()),
    }
    r.read_exact(&mut len_buf[1..])?;
    let len = u32::from_be_bytes(len_buf);
    if len == 0 {
        return Err(FrameError::ZeroLength);
    }
    if len > max_frame_bytes {
        return Err(FrameError::Oversized {
            declared: len,
            max: max_frame_bytes,
        });
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

fn take_u16(body: &[u8], at: usize) -> Result<u16, FrameError> {
    body.get(at..at + 2)
        .map(|b| u16::from_be_bytes([b[0], b[1]]))
        .ok_or(FrameError::BadPayload("short u16 field"))
}

fn take_u32(body: &[u8], at: usize) -> Result<u32, FrameError> {
    body.get(at..at + 4)
        .map(|b| u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
        .ok_or(FrameError::BadPayload("short u32 field"))
}

fn take_u64(body: &[u8], at: usize) -> Result<u64, FrameError> {
    body.get(at..at + 8)
        .map(|b| u64::from_be_bytes(b.try_into().expect("slice of 8")))
        .ok_or(FrameError::BadPayload("short u64 field"))
}

/// Decodes a raw body (as returned by [`read_raw`]) into a client frame.
///
/// # Errors
///
/// [`FrameError::UnknownOpcode`], [`FrameError::UnknownVersion`], or
/// [`FrameError::BadPayload`].
pub fn decode_client(body: &[u8]) -> Result<ClientFrame, FrameError> {
    let (&opcode, payload) = body
        .split_first()
        .expect("read_raw rejects zero-length frames");
    match opcode {
        0x01 => {
            let version = take_u16(payload, 0)?;
            if version != PROTOCOL_VERSION {
                return Err(FrameError::UnknownVersion(version));
            }
            let tenant_len = take_u16(payload, 2)? as usize;
            let tenant = payload
                .get(4..4 + tenant_len)
                .ok_or(FrameError::BadPayload("tenant name truncated"))?;
            let tenant = std::str::from_utf8(tenant)
                .map_err(|_| FrameError::BadPayload("tenant name not UTF-8"))?;
            Ok(ClientFrame::Hello {
                version,
                tenant: tenant.to_string(),
            })
        }
        0x02 => Ok(ClientFrame::Chunk(payload.to_vec())),
        0x03 => {
            if !payload.is_empty() {
                return Err(FrameError::BadPayload("Finish carries no payload"));
            }
            Ok(ClientFrame::Finish)
        }
        0x04 => {
            let anml = std::str::from_utf8(payload)
                .map_err(|_| FrameError::BadPayload("Reload payload not UTF-8"))?;
            Ok(ClientFrame::Reload(anml.to_string()))
        }
        other => Err(FrameError::UnknownOpcode(other)),
    }
}

/// Decodes a raw body into a server frame (used by clients and tests).
///
/// # Errors
///
/// [`FrameError::UnknownOpcode`] or [`FrameError::BadPayload`].
pub fn decode_server(body: &[u8]) -> Result<ServerFrame, FrameError> {
    let (&opcode, payload) = body
        .split_first()
        .expect("read_raw rejects zero-length frames");
    match opcode {
        0x81 => Ok(ServerFrame::HelloAck {
            version: take_u16(payload, 0)?,
            epoch: take_u64(payload, 2)?,
        }),
        0x82 => {
            if !payload.len().is_multiple_of(12) {
                return Err(FrameError::BadPayload(
                    "Reports payload not 12-byte records",
                ));
            }
            let mut reports = Vec::with_capacity(payload.len() / 12);
            for rec in payload.chunks_exact(12) {
                reports.push((take_u64(rec, 0)?, take_u32(rec, 8)?));
            }
            Ok(ServerFrame::Reports(reports))
        }
        0x83 => Ok(ServerFrame::Done {
            chunks: take_u64(payload, 0)?,
            bytes: take_u64(payload, 8)?,
            reports: take_u64(payload, 16)?,
            epoch: take_u64(payload, 24)?,
        }),
        0x84 => {
            let code = take_u16(payload, 0)?;
            let message = std::str::from_utf8(&payload[2..])
                .map_err(|_| FrameError::BadPayload("Error message not UTF-8"))?
                .to_string();
            Ok(ServerFrame::Error { code, message })
        }
        0x85 => Ok(ServerFrame::Reloaded {
            epoch: take_u64(payload, 0)?,
        }),
        other => Err(FrameError::UnknownOpcode(other)),
    }
}

fn write_frame(w: &mut impl Write, opcode: u8, payload: &[u8]) -> std::io::Result<()> {
    let len = 1 + payload.len() as u32;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(&[opcode])?;
    w.write_all(payload)
}

impl ClientFrame {
    /// Serializes the frame (length prefix included) onto `w`.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        match self {
            ClientFrame::Hello { version, tenant } => {
                let mut p = Vec::with_capacity(4 + tenant.len());
                p.extend_from_slice(&version.to_be_bytes());
                p.extend_from_slice(&(tenant.len() as u16).to_be_bytes());
                p.extend_from_slice(tenant.as_bytes());
                write_frame(w, 0x01, &p)
            }
            ClientFrame::Chunk(bytes) => write_frame(w, 0x02, bytes),
            ClientFrame::Finish => write_frame(w, 0x03, &[]),
            ClientFrame::Reload(anml) => write_frame(w, 0x04, anml.as_bytes()),
        }
    }
}

impl ServerFrame {
    /// Serializes the frame (length prefix included) onto `w`.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        match self {
            ServerFrame::HelloAck { version, epoch } => {
                let mut p = Vec::with_capacity(10);
                p.extend_from_slice(&version.to_be_bytes());
                p.extend_from_slice(&epoch.to_be_bytes());
                write_frame(w, 0x81, &p)
            }
            ServerFrame::Reports(reports) => {
                let mut p = Vec::with_capacity(reports.len() * 12);
                for (pos, rule) in reports {
                    p.extend_from_slice(&pos.to_be_bytes());
                    p.extend_from_slice(&rule.to_be_bytes());
                }
                write_frame(w, 0x82, &p)
            }
            ServerFrame::Done {
                chunks,
                bytes,
                reports,
                epoch,
            } => {
                let mut p = Vec::with_capacity(32);
                for v in [chunks, bytes, reports, epoch] {
                    p.extend_from_slice(&v.to_be_bytes());
                }
                write_frame(w, 0x83, &p)
            }
            ServerFrame::Error { code, message } => {
                let mut p = Vec::with_capacity(2 + message.len());
                p.extend_from_slice(&code.to_be_bytes());
                p.extend_from_slice(message.as_bytes());
                write_frame(w, 0x84, &p)
            }
            ServerFrame::Reloaded { epoch } => write_frame(w, 0x85, &epoch.to_be_bytes()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn round_trip_client(frame: ClientFrame) {
        let mut buf = Vec::new();
        frame.write_to(&mut buf).unwrap();
        let body = read_raw(&mut Cursor::new(&buf), DEFAULT_MAX_FRAME_BYTES)
            .unwrap()
            .expect("one frame present");
        assert_eq!(decode_client(&body).unwrap(), frame);
    }

    fn round_trip_server(frame: ServerFrame) {
        let mut buf = Vec::new();
        frame.write_to(&mut buf).unwrap();
        let body = read_raw(&mut Cursor::new(&buf), DEFAULT_MAX_FRAME_BYTES)
            .unwrap()
            .expect("one frame present");
        assert_eq!(decode_server(&body).unwrap(), frame);
    }

    #[test]
    fn every_frame_round_trips() {
        round_trip_client(ClientFrame::Hello {
            version: PROTOCOL_VERSION,
            tenant: "tenant-7".into(),
        });
        round_trip_client(ClientFrame::Chunk(b"payload bytes".to_vec()));
        round_trip_client(ClientFrame::Chunk(Vec::new()));
        round_trip_client(ClientFrame::Finish);
        round_trip_client(ClientFrame::Reload("<anml/>".into()));
        round_trip_server(ServerFrame::HelloAck {
            version: PROTOCOL_VERSION,
            epoch: 3,
        });
        round_trip_server(ServerFrame::Reports(vec![(0, 1), (u64::MAX, u32::MAX)]));
        round_trip_server(ServerFrame::Reports(Vec::new()));
        round_trip_server(ServerFrame::Done {
            chunks: 5,
            bytes: 1024,
            reports: 9,
            epoch: 2,
        });
        round_trip_server(ServerFrame::Error {
            code: ERR_PROTOCOL,
            message: "bad frame".into(),
        });
        round_trip_server(ServerFrame::Reloaded { epoch: 4 });
    }

    #[test]
    fn zero_length_frame_is_rejected() {
        let bytes = 0u32.to_be_bytes();
        let err = read_raw(&mut Cursor::new(&bytes[..]), 1024).unwrap_err();
        assert_eq!(err, FrameError::ZeroLength);
    }

    #[test]
    fn oversized_frame_is_rejected_before_allocation() {
        // Declares 4 GiB − 1; must error from the length alone without
        // trying to read (or allocate) the body.
        let bytes = u32::MAX.to_be_bytes();
        let err = read_raw(&mut Cursor::new(&bytes[..]), 1024).unwrap_err();
        assert_eq!(
            err,
            FrameError::Oversized {
                declared: u32::MAX,
                max: 1024
            }
        );
    }

    #[test]
    fn truncated_frames_are_detected() {
        // Length says 10, body has 3 bytes.
        let mut buf = 10u32.to_be_bytes().to_vec();
        buf.extend_from_slice(&[0x02, 1, 2]);
        let err = read_raw(&mut Cursor::new(&buf), 1024).unwrap_err();
        assert_eq!(err, FrameError::Truncated);
        // Truncated inside the length prefix itself.
        let err = read_raw(&mut Cursor::new(&[0u8, 0][..]), 1024).unwrap_err();
        assert_eq!(err, FrameError::Truncated);
    }

    #[test]
    fn clean_eof_at_frame_boundary_is_none() {
        assert_eq!(read_raw(&mut Cursor::new(&[][..]), 1024).unwrap(), None);
    }

    #[test]
    fn unknown_opcode_is_typed() {
        assert_eq!(
            decode_client(&[0x7F]).unwrap_err(),
            FrameError::UnknownOpcode(0x7F)
        );
        assert_eq!(
            decode_server(&[0x01]).unwrap_err(),
            FrameError::UnknownOpcode(0x01)
        );
    }

    #[test]
    fn unknown_version_is_typed() {
        let mut buf = Vec::new();
        ClientFrame::Hello {
            version: PROTOCOL_VERSION,
            tenant: "t".into(),
        }
        .write_to(&mut buf)
        .unwrap();
        buf[5] = 0xFF; // clobber the version's high byte
        let body = read_raw(&mut Cursor::new(&buf), 1024).unwrap().unwrap();
        assert!(matches!(
            decode_client(&body),
            Err(FrameError::UnknownVersion(v)) if v != PROTOCOL_VERSION
        ));
    }

    #[test]
    fn malformed_payloads_are_typed_not_panics() {
        // Hello too short for its declared tenant length.
        let hello = [0x01, 0x00, 0x01, 0x00, 0x10, b'x'];
        assert!(matches!(
            decode_client(&hello),
            Err(FrameError::BadPayload(_))
        ));
        // Finish with a stray payload byte.
        assert!(matches!(
            decode_client(&[0x03, 0xAA]),
            Err(FrameError::BadPayload(_))
        ));
        // Reload with invalid UTF-8.
        assert!(matches!(
            decode_client(&[0x04, 0xFF, 0xFE]),
            Err(FrameError::BadPayload(_))
        ));
        // Reports with a ragged record.
        assert!(matches!(
            decode_server(&[0x82, 1, 2, 3]),
            Err(FrameError::BadPayload(_))
        ));
    }
}
