//! `sunder-shard`: the sharded multi-stream execution service.
//!
//! The paper's scalability claim is spatial: throughput grows with
//! subarray count because the automaton is partitioned across them and
//! reporting never round-trips to the host. This crate is the software
//! analogue of that axis, built from three pieces:
//!
//! * a **compiled-pipeline cache** ([`PipelineCache`]) — content-addressed
//!   by a hash of the automaton, the pipeline configuration, and the
//!   sharding spec, so repeated stream submissions skip the FlexAmata /
//!   striding / partitioning work entirely;
//! * a **work-stealing stream scheduler** ([`run_batch`]) — N independent
//!   input streams across M worker threads, per-shard panic isolation
//!   into [`sunder_resilience::JobOutcome`], fault injection via
//!   [`sunder_resilience::FaultPlan`] keyed by
//!   `stream × num_shards + shard`;
//! * the **equivalence gate** ([`verify_stream`]) — sharded execution
//!   must be report-trace-identical to monolithic execution; the
//!   throughput bench refuses to report a point that fails it.
//!
//! [`BatchService`] ties them together:
//!
//! ```
//! use sunder_automata::regex::compile_rule_set;
//! use sunder_oracle::PipelineConfig;
//! use sunder_shard::{BatchOptions, BatchService, ShardSpec};
//! use sunder_sim::EngineKind;
//!
//! let service = BatchService::new(ShardSpec::MaxShards(4), EngineKind::Adaptive);
//! let nfa = compile_rule_set(&["ab+c", "[0-9]{3}"])?;
//! let streams = vec![b"zabbc 007".to_vec(), b"123 abc".to_vec()];
//! let report = service.submit(
//!     &nfa,
//!     PipelineConfig::Nibble,
//!     &streams,
//!     &BatchOptions::with_workers(2),
//! )?;
//! assert_eq!(report.ok_count(), 2);
//! assert_eq!(service.cache().misses(), 1); // next submit will hit
//! # Ok::<(), sunder_automata::AutomataError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod chaos;
pub mod flight;
pub mod frame;
pub mod obs;
pub mod scheduler;
pub mod server;
pub mod session;

pub use cache::{pipeline_key, CompiledPipeline, PipelineCache, PipelineKey, ShardSpec};
pub use chaos::{run_chaos, ChaosOptions, SessionOutcome};
pub use flight::{validate_flight, FlightRecorder, FlightSummary, FLIGHT_SCHEMA_VERSION};
pub use frame::{ClientFrame, FrameError, ServerFrame, PROTOCOL_VERSION};
pub use obs::{http_get, ObsHandle};
pub use scheduler::{
    run_batch, run_batch_pooled, BatchOptions, BatchReport, ShardRun, StreamResult, WorkerPool,
    SERIAL_CUTOFF_BYTES,
};
pub use server::{DrainReport, MatchServer, ServerConfig};
pub use session::{expected_reports, SessionError, SessionSummary, StreamSession, SymbolFramer};

use std::sync::Arc;

use sunder_automata::input::InputView;
use sunder_automata::{AutomataError, Nfa};
use sunder_oracle::PipelineConfig;
use sunder_sim::{EngineKind, ReportEvent, TraceSink};

/// A long-lived batch service: one pipeline cache, many submissions.
///
/// With [`BatchService::with_pool`] the service also owns a persistent
/// [`WorkerPool`], so repeated submissions reuse parked helper threads
/// instead of spawning and joining `workers - 1` threads per batch.
#[derive(Debug)]
pub struct BatchService {
    cache: PipelineCache,
    pool: Option<WorkerPool>,
}

impl BatchService {
    /// A service compiling pipelines with the given sharding spec and
    /// per-shard engine kind.
    pub fn new(spec: ShardSpec, engine: EngineKind) -> BatchService {
        BatchService {
            cache: PipelineCache::new(spec, engine),
            pool: None,
        }
    }

    /// Like [`BatchService::new`], plus a persistent pool of `helpers`
    /// worker threads shared by all submissions (the submitting thread
    /// itself is always worker 0, so up to `helpers + 1` workers run).
    pub fn with_pool(spec: ShardSpec, engine: EngineKind, helpers: usize) -> BatchService {
        BatchService {
            cache: PipelineCache::new(spec, engine),
            pool: Some(WorkerPool::new(helpers)),
        }
    }

    /// The underlying cache (hit/miss counters, size).
    pub fn cache(&self) -> &PipelineCache {
        &self.cache
    }

    /// The persistent worker pool, when this service owns one.
    pub fn pool(&self) -> Option<&WorkerPool> {
        self.pool.as_ref()
    }

    /// Compiles (or fetches) the pipeline for `nfa` under `config` and
    /// runs `streams` through it.
    ///
    /// # Errors
    ///
    /// Propagates pipeline compilation failures; per-stream execution
    /// failures are captured inside the [`BatchReport`] instead.
    pub fn submit(
        &self,
        nfa: &Nfa,
        config: PipelineConfig,
        streams: &[Vec<u8>],
        opts: &BatchOptions,
    ) -> Result<BatchReport, AutomataError> {
        let pipeline = self.cache.get_or_compile(nfa, config)?;
        match &self.pool {
            Some(pool) if opts.workers > 1 => {
                let streams = Arc::new(streams.to_vec());
                Ok(run_batch_pooled(pool, &pipeline, &streams, opts))
            }
            _ => Ok(run_batch(&pipeline, streams, opts)),
        }
    }

    /// [`BatchService::submit`] without copying the stream bytes: the
    /// shared `streams` are handed to the pool (or borrowed by the
    /// scoped-thread path) as-is. This is the hot path for callers that
    /// submit the same streams repeatedly, like the throughput bench.
    ///
    /// # Errors
    ///
    /// Propagates pipeline compilation failures.
    pub fn submit_arc(
        &self,
        nfa: &Nfa,
        config: PipelineConfig,
        streams: &Arc<Vec<Vec<u8>>>,
        opts: &BatchOptions,
    ) -> Result<BatchReport, AutomataError> {
        let pipeline = self.cache.get_or_compile(nfa, config)?;
        match &self.pool {
            Some(pool) if opts.workers > 1 => Ok(run_batch_pooled(pool, &pipeline, streams, opts)),
            _ => Ok(run_batch(&pipeline, streams, opts)),
        }
    }
}

/// Runs `input` through the pipeline's transformed automaton on a single
/// monolithic engine, returning the reference trace sharded execution
/// must reproduce byte-identically.
///
/// # Errors
///
/// Returns input framing errors.
pub fn monolithic_trace(
    pipeline: &CompiledPipeline,
    kind: EngineKind,
    input: &[u8],
) -> Result<Vec<ReportEvent>, AutomataError> {
    let view = InputView::new(input, pipeline.nfa.symbol_bits(), pipeline.nfa.stride())?;
    let mut engine = kind.build(&pipeline.nfa);
    let mut trace = TraceSink::new();
    engine.run(&view, &mut trace);
    Ok(trace.events)
}

/// The sharded-vs-monolithic trace-equality gate for one stream: `true`
/// iff the stream completed and its merged trace is byte-identical to a
/// monolithic run of the same transformed automaton.
///
/// # Errors
///
/// Returns input framing errors from the monolithic run.
pub fn verify_stream(
    pipeline: &CompiledPipeline,
    result: &StreamResult,
    input: &[u8],
) -> Result<bool, AutomataError> {
    let Some(merged) = &result.merged else {
        return Ok(false);
    };
    let expected = monolithic_trace(pipeline, pipeline.sharded.kind(), input)?;
    Ok(*merged == expected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sunder_automata::regex::compile_rule_set;

    #[test]
    fn service_caches_across_submissions_and_verifies() {
        let service = BatchService::new(ShardSpec::MaxShards(3), EngineKind::Adaptive);
        let nfa = compile_rule_set(&["ab", ".*xy", "[0-9]{2}"]).unwrap();
        let streams = vec![b"ab 12 xy".to_vec(), b"zzabzz".to_vec()];
        for round in 0..3 {
            let report = service
                .submit(
                    &nfa,
                    PipelineConfig::Stride2,
                    &streams,
                    &BatchOptions::with_workers(2),
                )
                .unwrap();
            assert_eq!(report.ok_count(), 2, "round {round}");
            let pipeline = service
                .cache()
                .get_or_compile(&nfa, PipelineConfig::Stride2)
                .unwrap();
            for s in &report.streams {
                assert!(verify_stream(&pipeline, s, &streams[s.stream]).unwrap());
            }
        }
        assert_eq!(service.cache().misses(), 1);
        assert!(service.cache().hits() >= 2);
    }
}
