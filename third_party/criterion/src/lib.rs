//! Offline drop-in subset of the `criterion` API.
//!
//! The build environment has no network access, so the workspace vendors
//! the surface its benches use: [`Criterion::benchmark_group`], groups
//! with `sample_size`/`throughput`/`bench_function`/`bench_with_input`,
//! [`Bencher::iter`], [`BenchmarkId`], [`Throughput`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is a plain wall-clock sampler: each benchmark is warmed up,
//! then timed over `sample_size` samples whose iteration counts are
//! calibrated to a small per-sample budget; the mean and min ns/iter (and
//! derived throughput) are printed. No statistics machinery, no plots.
//! When invoked with `--test` (as `cargo test --benches` does), each
//! benchmark body runs exactly once, untimed.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Per-sample measurement budget. Small so full `cargo bench` runs stay
/// in seconds; raise `sample_size` for steadier numbers.
const SAMPLE_BUDGET: Duration = Duration::from_millis(10);

/// Units for derived throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
    /// The benchmark processes this many elements per iteration.
    Elements(u64),
}

/// A benchmark name with an attached parameter, e.g. `snort/8`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

impl From<BenchmarkId> for BenchmarkId1 {
    fn from(id: BenchmarkId) -> Self {
        BenchmarkId1(id)
    }
}

/// Internal newtype so `bench_function` can take `&str` or `BenchmarkId`.
#[doc(hidden)]
pub struct BenchmarkId1(BenchmarkId);

impl From<&str> for BenchmarkId1 {
    fn from(s: &str) -> Self {
        BenchmarkId1(s.into())
    }
}

/// The timing loop handle passed to benchmark closures.
pub struct Bencher {
    mode: Mode,
    /// Mean ns/iter and min ns/iter from the last `iter` call.
    result: Option<(f64, f64)>,
}

enum Mode {
    /// Calibrate and measure.
    Measure { sample_size: usize },
    /// Run the body once (test mode).
    Test,
}

impl Bencher {
    /// Times the closure, storing mean/min ns-per-iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        match self.mode {
            Mode::Test => {
                std::hint::black_box(f());
            }
            Mode::Measure { sample_size } => {
                // Warm-up and calibration: find an iteration count that
                // fills the per-sample budget.
                let mut iters: u64 = 1;
                loop {
                    let start = Instant::now();
                    for _ in 0..iters {
                        std::hint::black_box(f());
                    }
                    let elapsed = start.elapsed();
                    if elapsed >= SAMPLE_BUDGET || iters >= 1 << 20 {
                        break;
                    }
                    // Aim directly for the budget, growing at least 2x.
                    let scale = SAMPLE_BUDGET.as_secs_f64() / elapsed.as_secs_f64().max(1e-9);
                    iters = (iters.saturating_mul(2)).max((iters as f64 * scale) as u64 + 1);
                }

                let mut total = Duration::ZERO;
                let mut min = f64::INFINITY;
                for _ in 0..sample_size.max(1) {
                    let start = Instant::now();
                    for _ in 0..iters {
                        std::hint::black_box(f());
                    }
                    let elapsed = start.elapsed();
                    total += elapsed;
                    min = min.min(elapsed.as_nanos() as f64 / iters as f64);
                }
                let mean = total.as_nanos() as f64 / (sample_size.max(1) as u64 * iters) as f64;
                self.result = Some((mean, min));
            }
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Declares how much work one iteration performs, enabling derived
    /// throughput output.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId1>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let BenchmarkId1(id) = id.into();
        self.run(&id.id, &mut |b| f(b));
        self
    }

    /// Benchmarks a closure against a borrowed input.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId1>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let BenchmarkId1(id) = id.into();
        self.run(&id.id, &mut |b| f(b, input));
        self
    }

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let label = format!("{}/{}", self.name, id);
        let mut bencher = Bencher {
            mode: if self.criterion.test_mode {
                Mode::Test
            } else {
                Mode::Measure {
                    sample_size: self.sample_size,
                }
            },
            result: None,
        };
        f(&mut bencher);
        if self.criterion.test_mode {
            println!("{label}: ok (test mode)");
            return;
        }
        match bencher.result {
            Some((mean, min)) => {
                let thr = match self.throughput {
                    Some(Throughput::Bytes(bytes)) => {
                        let gib = bytes as f64 / mean * 1e9 / (1u64 << 30) as f64;
                        format!("  {gib:.3} GiB/s")
                    }
                    Some(Throughput::Elements(n)) => {
                        let meps = n as f64 / mean * 1e9 / 1e6;
                        format!("  {meps:.3} Melem/s")
                    }
                    None => String::new(),
                };
                println!("{label}: mean {mean:.1} ns/iter (min {min:.1}){thr}");
            }
            None => println!("{label}: no measurement (b.iter never called)"),
        }
    }

    /// Ends the group (output already printed per benchmark).
    pub fn finish(self) {}
}

/// The benchmark manager handed to `criterion_group!` targets.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test --benches` runs harness = false benches with
        // `--test`; `cargo bench` passes `--bench`. Run bodies once,
        // untimed, in test mode.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            throughput: None,
            criterion: self,
        }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId1>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("criterion");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// Declares a group function that runs each listed benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_times_a_closure() {
        let mut c = Criterion { test_mode: false };
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.throughput(Throughput::Bytes(1024));
        let mut ran = false;
        group.bench_function("accumulate", |b| {
            ran = true;
            b.iter(|| (0..100u64).sum::<u64>())
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion { test_mode: true };
        let mut group = c.benchmark_group("g");
        let mut count = 0u32;
        group.bench_function(BenchmarkId::new("f", 1), |b| b.iter(|| count += 1));
        group.finish();
        assert_eq!(count, 1);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("snort", 8).id, "snort/8");
    }
}
