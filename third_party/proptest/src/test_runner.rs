//! Case execution: configuration, the deterministic RNG, and the error
//! type the `prop_assert*` macros return.

use std::fmt;

/// How many cases each property runs (the only upstream field this
/// repository uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases required before a property passes.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a property case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// An assertion failed: the property is falsified.
    Fail(String),
    /// The case was discarded by `prop_assume!` and should not count.
    Reject(String),
}

impl TestCaseError {
    /// A falsification with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A discarded case with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "case rejected: {m}"),
        }
    }
}

/// Deterministic generator feeding strategies (xoshiro256** seeded from
/// the test name, so every run of a given test draws the same cases).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Seeds from a raw 64-bit value.
    pub fn from_seed(seed: u64) -> Self {
        let mut key = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut key);
        }
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        TestRng { s }
    }

    /// Seeds from a test name (FNV-1a over the bytes).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self::from_seed(h)
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, n)`. `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::for_test("alpha");
        let mut b = TestRng::for_test("alpha");
        let mut c = TestRng::for_test("beta");
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = TestRng::from_seed(9);
        for _ in 0..1000 {
            let x = rng.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
