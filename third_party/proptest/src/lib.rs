//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal property-testing engine with the same surface the repository's
//! tests use: the [`proptest!`] macro (with `proptest_config`), the
//! [`Strategy`](strategy::Strategy) trait with `prop_map`, `any::<T>()`,
//! `prop::collection::vec`, `prop::sample::select`, `prop::bool::weighted`,
//! [`prop_oneof!`], and the `prop_assert*` / [`prop_assume!`] macros.
//!
//! Differences from upstream: case generation is deterministic (seeded from
//! the test name, so failures reproduce exactly) and there is no shrinking —
//! a failing case reports the full generated inputs instead.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod bool;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Namespace mirror so `prop::collection::vec(..)` etc. resolve the way
/// upstream's prelude exposes them.
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
    pub use crate::sample;
}

/// The glob-import surface test files rely on.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests.
///
/// Supports the upstream form used in this repository: an optional
/// `#![proptest_config(...)]` header followed by `#[test] fn name(arg in
/// strategy, ...) { body }` items. Each test draws `cases` inputs from its
/// strategies and runs the body; `prop_assert*` failures panic with the
/// generated inputs attached.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let mut __accepted: u32 = 0;
                let mut __attempts: u32 = 0;
                while __accepted < __config.cases {
                    __attempts += 1;
                    if __attempts > __config.cases.saturating_mul(16).max(1024) {
                        panic!(
                            "proptest {}: too many rejected cases ({} accepted of {} wanted)",
                            stringify!($name), __accepted, __config.cases
                        );
                    }
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let __inputs: ::std::string::String =
                        [$(format!("{} = {:?}", stringify!($arg), &$arg)),+].join(", ");
                    let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || { $body ::core::result::Result::Ok(()) })();
                    match __result {
                        ::core::result::Result::Ok(()) => __accepted += 1,
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                            panic!(
                                "proptest case {} failed: {}\n  inputs: {}",
                                stringify!($name), __msg, __inputs
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// `assert!` that fails the current property case (with formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` that fails the current property case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` == `{:?}`", __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "{}: `{:?}` != `{:?}`", format!($($fmt)+), __l, __r
        );
    }};
}

/// `assert_ne!` that fails the current property case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, "assertion failed: `{:?}` != `{:?}`", __l, __r);
    }};
}

/// Discards the current case (does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Weighted (or unweighted) union of strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $( (($weight) as u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $( (1u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
}
