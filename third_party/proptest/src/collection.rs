//! Collection strategies (`prop::collection::vec`).

use std::fmt::Debug;
use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Debug,
{
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        assert!(self.size.start < self.size.end, "empty size range");
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A `Vec` whose length is drawn from `size` and whose elements are drawn
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_bounds() {
        let mut rng = TestRng::from_seed(6);
        let s = vec(0u8..10, 2..7);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }
}
