//! Sampling strategies (`prop::sample::select`).

use std::fmt::Debug;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The strategy returned by [`select`].
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone + Debug> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.options[rng.below(self.options.len() as u64) as usize].clone()
    }
}

/// Picks uniformly from a non-empty list of options.
pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select requires at least one option");
    Select { options }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_hits_every_option() {
        let mut rng = TestRng::from_seed(7);
        let s = select(vec![2usize, 4, 8]);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(s.generate(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }
}
