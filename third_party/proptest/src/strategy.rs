//! The [`Strategy`] trait and the combinators this repository uses:
//! integer ranges, tuples, [`Just`], `prop_map`, boxing, and the
//! weighted union behind `prop_oneof!`.

use std::fmt::Debug;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike upstream there is no value tree / shrinking: `generate` draws a
/// finished value directly from the RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V: Debug> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u128 + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )+};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Weighted union of same-valued strategies (built by `prop_oneof!`).
pub struct OneOf<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V: Debug> OneOf<V> {
    /// Builds a union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! requires a positive total weight");
        OneOf { arms, total }
    }
}

impl<V: Debug> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights summed to total")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..500 {
            let x = (3u8..9).generate(&mut rng);
            assert!((3..9).contains(&x));
            let y = (10u64..=10).generate(&mut rng);
            assert_eq!(y, 10);
        }
    }

    #[test]
    fn map_and_tuples_compose() {
        let mut rng = TestRng::from_seed(2);
        let s = (0u8..4, 0u16..100).prop_map(|(a, b)| u32::from(a) + u32::from(b));
        for _ in 0..100 {
            assert!(s.generate(&mut rng) < 104);
        }
    }

    #[test]
    fn oneof_respects_zero_weight() {
        let mut rng = TestRng::from_seed(3);
        let s = OneOf::new(vec![(0, Just(1u8).boxed()), (5, Just(2u8).boxed())]);
        for _ in 0..100 {
            assert_eq!(s.generate(&mut rng), 2);
        }
    }

    #[test]
    fn oneof_hits_every_positive_arm() {
        let mut rng = TestRng::from_seed(4);
        let s = OneOf::new(vec![
            (1, Just(0u8).boxed()),
            (1, Just(1u8).boxed()),
            (1, Just(2u8).boxed()),
        ]);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
