//! `any::<T>()` — the canonical whole-domain strategy for primitives.

use std::fmt::Debug;
use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws a uniformly distributed value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_covers_small_domain() {
        let mut rng = TestRng::from_seed(5);
        let s = any::<bool>();
        let draws: Vec<bool> = (0..64).map(|_| s.generate(&mut rng)).collect();
        assert!(draws.contains(&true) && draws.contains(&false));
    }
}
