//! Boolean strategies (`prop::bool::weighted`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The strategy returned by [`weighted`].
pub struct Weighted {
    probability: f64,
}

impl Strategy for Weighted {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.unit_f64() < self.probability
    }
}

/// `true` with the given probability (clamped to `[0, 1]`).
pub fn weighted(probability: f64) -> Weighted {
    Weighted {
        probability: probability.clamp(0.0, 1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extremes_are_constant() {
        let mut rng = TestRng::from_seed(8);
        let always = weighted(1.0);
        let never = weighted(0.0);
        for _ in 0..100 {
            assert!(always.generate(&mut rng));
            assert!(!never.generate(&mut rng));
        }
    }

    #[test]
    fn mid_probability_mixes() {
        let mut rng = TestRng::from_seed(9);
        let s = weighted(0.35);
        let trues = (0..1000).filter(|_| s.generate(&mut rng)).count();
        assert!((150..550).contains(&trues), "trues = {trues}");
    }
}
