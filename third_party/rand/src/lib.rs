//! Offline drop-in subset of the `rand` 0.9 API.
//!
//! The build environment has no network access, so the workspace vendors
//! the minimal surface it actually uses: [`rngs::StdRng`] seeded through
//! [`SeedableRng::seed_from_u64`], and [`Rng::random_range`] /
//! [`Rng::random`] over the primitive integer types. The generator is
//! xoshiro256** seeded via SplitMix64 — deterministic for a given seed,
//! which is all the workload generators require.

#![forbid(unsafe_code)]

/// A random number generator: a source of uniformly distributed `u64`s
/// plus convenience samplers layered on top.
pub trait Rng {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Samples a value from the standard distribution of `T` (uniform for
    /// integers, fair coin for `bool`).
    fn random<T>(&mut self) -> T
    where
        T: Standard,
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

/// Types an RNG can be reproducibly constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64 key expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

/// Types with a standard (uniform) distribution for [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one value from the standard distribution.
    fn sample_standard<R: Rng>(rng: &mut R) -> Self;
}

macro_rules! impl_uint_sampling {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi - lo) as u128 + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }

        impl Standard for $t {
            fn sample_standard<R: Rng>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

impl_uint_sampling!(u8, u16, u32, u64, usize);

impl Standard for bool {
    fn sample_standard<R: Rng>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Concrete generator types.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard deterministic generator: xoshiro256** with SplitMix64
    /// key expansion. Statistically solid and fast; NOT cryptographic.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut key = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut key);
            }
            // An all-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero outputs in a row, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_sampling_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u8 = rng.random_range(10..=20);
            assert!((10..=20).contains(&x));
            let y: usize = rng.random_range(0..3);
            assert!(y < 3);
        }
    }

    #[test]
    fn range_sampling_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[rng.random_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bool_standard_is_not_constant() {
        let mut rng = StdRng::seed_from_u64(3);
        let draws: Vec<bool> = (0..64).map(|_| rng.random()).collect();
        assert!(draws.contains(&true) && draws.contains(&false));
    }
}
