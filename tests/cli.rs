//! End-to-end tests of the `sunder` CLI binary.

use std::io::Write;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sunder"))
}

fn write_temp(name: &str, contents: &[u8]) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("sunder-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{}-{name}", std::process::id()));
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(contents).unwrap();
    path
}

#[test]
fn help_prints_usage() {
    let out = bin().arg("--help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn unknown_command_fails() {
    let out = bin().arg("explode").output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn run_reports_matches() {
    let rules = write_temp("rules.txt", b"# comment line\ncat\ndog[0-9]\n");
    let input = write_temp("input.bin", b"the cat met dog7 and another cat");
    let out = bin()
        .args(["run", "--rules"])
        .arg(&rules)
        .arg("--input")
        .arg(&input)
        .args(["--fifo", "--summarize"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("reports: 3"), "{stdout}");
    assert!(stdout.contains("matched_rules: 0,1"), "{stdout}");
    assert!(stdout.contains("summarized_rules: 0,1"), "{stdout}");
    assert!(stdout.contains("overhead: 1.0000"), "{stdout}");
}

#[test]
fn trace_mode_lists_cycle_rule_pairs() {
    let rules = write_temp("trace-rules.txt", b"ab\n");
    let input = write_temp("trace-input.bin", b"abab");
    let out = bin()
        .args(["run", "--rules"])
        .arg(&rules)
        .arg("--input")
        .arg(&input)
        .args(["--trace", "--rate", "8"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    // 8-bit rate: one byte per cycle; matches end at cycles 1 and 3.
    assert_eq!(
        stdout.trim().lines().collect::<Vec<_>>(),
        vec!["1\t0", "3\t0"]
    );
}

#[test]
fn compile_then_run_precompiled_program() {
    let rules = write_temp("c-rules.txt", b"net[0-9]+\n");
    let program = write_temp("program.saml", b"");
    let out = bin()
        .args(["compile", "--rules"])
        .arg(&rules)
        .args(["--rate", "16", "-o"])
        .arg(&program)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&program).unwrap();
    assert!(text.starts_with("automaton bits=4 stride=4"));

    let input = write_temp("c-input.bin", b"net42 online");
    let out = bin()
        .args(["run", "--program"])
        .arg(&program)
        .arg("--input")
        .arg(&input)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("matched_rules: 0"), "{stdout}");
}

#[test]
fn stats_prints_both_static_and_transform() {
    let rules = write_temp("s-rules.txt", b"abc\nxyz\n");
    let out = bin().args(["run", "--rules"]).output().unwrap();
    assert!(!out.status.success()); // missing --input

    let out = bin()
        .args(["stats", "--rules"])
        .arg(&rules)
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("static: 6 states"), "{stdout}");
    assert!(stdout.contains("transform overheads:"), "{stdout}");
}

#[test]
fn bench_command_reports_measured_stats() {
    let out = bin()
        .args(["bench", "--benchmark", "bro217", "--small"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("benchmark: Bro217"), "{stdout}");
    assert!(stdout.contains("measured:"), "{stdout}");
}

#[test]
fn bad_rate_is_rejected() {
    let rules = write_temp("r-rules.txt", b"a\n");
    let out = bin()
        .args(["compile", "--rules"])
        .arg(&rules)
        .args(["--rate", "12"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown rate"));
}

#[test]
fn serve_daemon_takes_stdin_commands_and_drains() {
    use std::process::Stdio;
    let rules = write_temp("serve-rules.txt", b"ab+c\n[0-9]{3}\n");
    let rules2 = write_temp("serve-rules2.txt", b"ab+c\n[0-9]{3}\nq{2}\n");
    let mut child = bin()
        .args(["serve", "--rules"])
        .arg(&rules)
        .args(["--addr", "127.0.0.1:0", "--shards", "2"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    let mut stdin = child.stdin.take().unwrap();
    write!(stdin, "status\nreload {}\nstatus\nquit\n", rules2.display()).unwrap();
    drop(stdin);
    let out = child.wait_with_output().unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{stderr}");
    assert!(stderr.contains("listening on 127.0.0.1:"), "{stderr}");
    assert!(stderr.contains("now epoch 2"), "{stderr}");
    assert!(stderr.contains("drained: 0 finished, 0 forced"), "{stderr}");
    // `status` prints the /statusz JSON document on stdout — one line
    // per invocation, epoch advancing across the reload.
    let stdout = String::from_utf8_lossy(&out.stdout);
    let docs: Vec<&str> = stdout.lines().filter(|l| l.starts_with('{')).collect();
    assert_eq!(docs.len(), 2, "{stdout}");
    assert!(docs[0].contains("\"epoch\":1"), "{stdout}");
    assert!(docs[1].contains("\"epoch\":2"), "{stdout}");
    assert!(docs[0].contains("\"active\":0"), "{stdout}");
}

#[test]
fn serve_chaos_clean_run_exits_zero() {
    let rules = write_temp("chaos-rules.txt", b"ab+c\n[0-9]{3}\n");
    let out = bin()
        .args(["serve-chaos", "--rules"])
        .arg(&rules)
        .args(["--sessions", "4", "--config", "stride2", "--shards", "2"])
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "{stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for i in 0..4 {
        assert!(stdout.contains(&format!("s{i}\tcompleted\tok")), "{stdout}");
    }
    assert!(
        stderr.contains("0 divergence(s), 0 unattributed"),
        "{stderr}"
    );
}

#[test]
fn serve_chaos_attributes_faults_and_exits_three() {
    let rules = write_temp("chaos3-rules.txt", b"ab+c\n[0-9]{3}\n");
    let plan = write_temp("chaos3.plan", b"panic 1\nmalformed-frame 2 3\n");
    let artifact = write_temp("chaos3.jsonl", b"");
    let out = bin()
        .args(["serve-chaos", "--rules"])
        .arg(&rules)
        .args(["--sessions", "4", "--fault-plan"])
        .arg(&plan)
        .arg("--artifact")
        .arg(&artifact)
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(3), "{stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("s1\terrored\tattributed"), "{stdout}");
    assert!(stdout.contains("s2\terrored\tattributed"), "{stdout}");
    assert!(stdout.contains("s0\tcompleted\tok"), "{stdout}");
    assert!(stderr.contains("2 attributed victim(s)"), "{stderr}");
    // The artifact is a valid telemetry JSONL with session attribution.
    let text = std::fs::read_to_string(&artifact).unwrap();
    assert!(text.contains("serve.session_fault"), "{text}");
    assert!(text.contains("chaos.session_outcome"), "{text}");
}

#[test]
fn serve_chaos_usage_error_exits_two() {
    let out = bin()
        .args(["serve-chaos", "--rules", "/nonexistent/rules.txt"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("error:"));
}
