//! End-to-end tests of the `sunder` CLI binary.

use std::io::Write;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sunder"))
}

fn write_temp(name: &str, contents: &[u8]) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("sunder-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{}-{name}", std::process::id()));
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(contents).unwrap();
    path
}

#[test]
fn help_prints_usage() {
    let out = bin().arg("--help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn unknown_command_fails() {
    let out = bin().arg("explode").output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn run_reports_matches() {
    let rules = write_temp("rules.txt", b"# comment line\ncat\ndog[0-9]\n");
    let input = write_temp("input.bin", b"the cat met dog7 and another cat");
    let out = bin()
        .args(["run", "--rules"])
        .arg(&rules)
        .arg("--input")
        .arg(&input)
        .args(["--fifo", "--summarize"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("reports: 3"), "{stdout}");
    assert!(stdout.contains("matched_rules: 0,1"), "{stdout}");
    assert!(stdout.contains("summarized_rules: 0,1"), "{stdout}");
    assert!(stdout.contains("overhead: 1.0000"), "{stdout}");
}

#[test]
fn trace_mode_lists_cycle_rule_pairs() {
    let rules = write_temp("trace-rules.txt", b"ab\n");
    let input = write_temp("trace-input.bin", b"abab");
    let out = bin()
        .args(["run", "--rules"])
        .arg(&rules)
        .arg("--input")
        .arg(&input)
        .args(["--trace", "--rate", "8"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    // 8-bit rate: one byte per cycle; matches end at cycles 1 and 3.
    assert_eq!(
        stdout.trim().lines().collect::<Vec<_>>(),
        vec!["1\t0", "3\t0"]
    );
}

#[test]
fn compile_then_run_precompiled_program() {
    let rules = write_temp("c-rules.txt", b"net[0-9]+\n");
    let program = write_temp("program.saml", b"");
    let out = bin()
        .args(["compile", "--rules"])
        .arg(&rules)
        .args(["--rate", "16", "-o"])
        .arg(&program)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&program).unwrap();
    assert!(text.starts_with("automaton bits=4 stride=4"));

    let input = write_temp("c-input.bin", b"net42 online");
    let out = bin()
        .args(["run", "--program"])
        .arg(&program)
        .arg("--input")
        .arg(&input)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("matched_rules: 0"), "{stdout}");
}

#[test]
fn stats_prints_both_static_and_transform() {
    let rules = write_temp("s-rules.txt", b"abc\nxyz\n");
    let out = bin().args(["run", "--rules"]).output().unwrap();
    assert!(!out.status.success()); // missing --input

    let out = bin()
        .args(["stats", "--rules"])
        .arg(&rules)
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("static: 6 states"), "{stdout}");
    assert!(stdout.contains("transform overheads:"), "{stdout}");
}

#[test]
fn bench_command_reports_measured_stats() {
    let out = bin()
        .args(["bench", "--benchmark", "bro217", "--small"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("benchmark: Bro217"), "{stdout}");
    assert!(stdout.contains("measured:"), "{stdout}");
}

#[test]
fn bad_rate_is_rejected() {
    let rules = write_temp("r-rules.txt", b"a\n");
    let out = bin()
        .args(["compile", "--rules"])
        .arg(&rules)
        .args(["--rate", "12"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown rate"));
}
