//! Differential testing of the regex compiler: pairs of syntactically
//! different but semantically equivalent patterns must compile to automata
//! with identical report behavior on arbitrary inputs.

use proptest::prelude::*;

use sunder::automata::regex::compile_regex;
use sunder::sim::run_trace;

/// Runs a pattern over an input and returns the match-end positions.
fn ends(pattern: &str, input: &[u8]) -> Vec<u64> {
    let nfa = compile_regex(pattern, 0).expect("pattern must compile");
    let mut v: Vec<u64> = run_trace(&nfa, input)
        .expect("run")
        .cycle_id_pairs()
        .into_iter()
        .map(|(c, _)| c)
        .collect();
    v.sort_unstable();
    v.dedup();
    v
}

fn assert_equivalent(a: &str, b: &str, input: &[u8]) {
    assert_eq!(
        ends(a, input),
        ends(b, input),
        "{a:?} and {b:?} diverged on {input:?}"
    );
}

/// Inputs over a tiny alphabet (plus the x/y delimiters some patterns
/// use) so counted/alternation structure is actually exercised.
fn abc_input() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(
        prop::sample::select(vec![b'a', b'b', b'c', b'x', b'y']),
        0..30,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn counted_equals_expanded(input in abc_input()) {
        assert_equivalent("a{3}", "aaa", &input);
        assert_equivalent("a{1,3}b", "(a|aa|aaa)b", &input);
        assert_equivalent("a{2,}b", "aaa*b", &input);
        assert_equivalent("(ab){2}", "abab", &input);
    }

    #[test]
    fn plus_equals_self_star(input in abc_input()) {
        assert_equivalent("a+", "aa*", &input);
        assert_equivalent("(ab)+c", "ab(ab)*c", &input);
    }

    #[test]
    fn optional_expansions(input in abc_input()) {
        assert_equivalent("ab?c", "(abc|ac)", &input);
        assert_equivalent("a(b|c)?a", "(aa|aba|aca)", &input);
    }

    #[test]
    fn alternation_is_commutative_and_associative(input in abc_input()) {
        assert_equivalent("ab|bc", "bc|ab", &input);
        assert_equivalent("(a|b)|c", "a|(b|c)", &input);
    }

    #[test]
    fn class_equals_alternation(input in abc_input()) {
        assert_equivalent("[abc]", "a|b|c", &input);
        assert_equivalent("x[ab]y", "(xay|xby)", &input);
        assert_equivalent("[a-c]{2}", "[abc][abc]", &input);
    }

    #[test]
    fn distribution_over_concatenation(input in abc_input()) {
        assert_equivalent("a(b|c)", "ab|ac", &input);
        assert_equivalent("(b|c)a", "ba|ca", &input);
    }

    #[test]
    fn star_unrolling(input in abc_input()) {
        assert_equivalent("ab*", "a|ab+", &input);
        assert_equivalent("a(ba)*", "(ab)*a", &input);
    }

    #[test]
    fn negated_class_complement(input in abc_input()) {
        // Over the {a,b,c,x,y} input alphabet, [^a] behaves like [bcxy].
        assert_equivalent("x[^a]y", "x[bcxy]y", &input);
    }
}

#[test]
fn anchored_vs_unanchored_differ() {
    // Sanity that the harness would catch a difference.
    assert_ne!(ends("ab", b"xab"), ends("^ab", b"xab"));
}
