//! Calibration checks: every synthetic benchmark's measured dynamic
//! behavior matches the generator's expectation, and the static profile
//! tracks the paper's Table 1 at full state scale.

use sunder::automata::stats::StaticStats;
use sunder::sim::{DynamicStatsSink, Simulator};
use sunder::{Benchmark, InputView, Scale};

fn measure(
    bench: Benchmark,
    scale: Scale,
) -> (sunder::workloads::Workload, sunder::sim::DynamicStats) {
    let w = bench.build(scale);
    let view = InputView::new(&w.input, 8, 1).unwrap();
    let mut sim = Simulator::new(&w.nfa);
    let mut sink = DynamicStatsSink::new();
    sim.run(&view, &mut sink);
    let stats = sink.finish();
    (w, stats)
}

#[test]
fn plant_based_benchmarks_hit_expectations_exactly() {
    let scale = Scale {
        state_fraction: 0.02,
        input_len: 20_000,
    };
    for bench in Benchmark::ALL {
        let (w, stats) = measure(bench, scale);
        if !w.exact_expectation {
            continue; // hot-class benchmarks are statistical
        }
        assert_eq!(
            stats.reports, w.expected_reports,
            "{bench}: reports vs plants"
        );
        assert_eq!(
            stats.report_cycles, w.expected_report_cycles,
            "{bench}: report cycles vs plants"
        );
    }
}

#[test]
fn hot_class_benchmarks_hit_expectations_statistically() {
    let scale = Scale {
        state_fraction: 0.02,
        input_len: 50_000,
    };
    for bench in Benchmark::ALL {
        let (w, stats) = measure(bench, scale);
        if w.exact_expectation {
            continue;
        }
        let rep_err = stats.reports as f64 / w.expected_reports as f64;
        assert!(
            (0.95..1.05).contains(&rep_err),
            "{bench}: reports {} vs expected {}",
            stats.reports,
            w.expected_reports
        );
        let rc_err = stats.report_cycles as f64 / w.expected_report_cycles as f64;
        assert!(
            (0.95..1.05).contains(&rc_err),
            "{bench}: report cycles {} vs expected {}",
            stats.report_cycles,
            w.expected_report_cycles
        );
    }
}

#[test]
fn static_profiles_track_table1_at_full_state_scale() {
    for bench in Benchmark::ALL {
        // Full states, tiny input: the static profile is input-independent.
        let w = bench.build(Scale {
            state_fraction: 1.0,
            input_len: 512,
        });
        let paper = bench.paper();
        let s = StaticStats::of(&w.nfa);
        let state_err = s.states as f64 / paper.states as f64;
        assert!(
            (0.93..1.07).contains(&state_err),
            "{bench}: {} states vs paper {}",
            s.states,
            paper.states
        );
        let rs_err = s.report_states as f64 / paper.report_states as f64;
        assert!(
            (0.90..1.10).contains(&rs_err),
            "{bench}: {} report states vs paper {}",
            s.report_states,
            paper.report_states
        );
    }
}

#[test]
fn report_behavior_families_are_distinct() {
    // The suite must cover the paper's behavioral taxonomy (Section 3):
    // dense bursts (SPM), frequent sparse (Snort), infrequent (Dotstar).
    let scale = Scale {
        state_fraction: 0.02,
        input_len: 50_000,
    };
    let (_, spm) = measure(Benchmark::Spm, scale);
    let (_, snort) = measure(Benchmark::Snort, scale);
    let (_, dotstar) = measure(Benchmark::Dotstar03, scale);

    assert!(
        spm.reports_per_report_cycle() > 20.0,
        "SPM must burst ({} rep/rc)",
        spm.reports_per_report_cycle()
    );
    assert!(
        snort.report_cycle_percent() > 90.0,
        "Snort must report nearly every cycle ({}%)",
        snort.report_cycle_percent()
    );
    assert!(dotstar.reports <= 1, "Dotstar must stay quiet");
}

#[test]
fn inputs_are_deterministic_per_benchmark() {
    let scale = Scale::tiny();
    let a = Benchmark::Fermi.build(scale);
    let b = Benchmark::Fermi.build(scale);
    assert_eq!(a.input, b.input);
    assert_eq!(a.nfa, b.nfa);
    let c = Benchmark::Tcp.build(scale);
    assert_ne!(a.input, c.input);
}
