//! Executable versions of the paper's worked examples (Figures 1 and 3):
//! the exact automata from the figures, built and run through the pipeline
//! the figures illustrate.

use sunder::automata::classic::ClassicNfa;
use sunder::sim::run_trace;
use sunder::transform::{double_stride, to_nibble_automaton};
use sunder::{Nfa, StartKind, Ste, SymbolSet};

fn sym(c: u8) -> SymbolSet {
    SymbolSet::singleton(8, u16::from(c))
}

/// Figure 1 (right): the homogeneous NFA over {A,T,C,G} with
/// STE0=[A], STE1=[C], STE2=[T], STE3=[G] (reporting), edges
/// STE0→{STE0,STE1,STE2}, STE1→STE3, STE2→STE3.
fn figure1_homogeneous() -> Nfa {
    let mut nfa = Nfa::new(8);
    let s0 = nfa.add_state(Ste::new(sym(b'A')).start(StartKind::AllInput));
    let s1 = nfa.add_state(Ste::new(sym(b'C')));
    let s2 = nfa.add_state(Ste::new(sym(b'T')));
    let s3 = nfa.add_state(Ste::new(sym(b'G')).report(0));
    nfa.add_edge(s0, s0);
    nfa.add_edge(s0, s1);
    nfa.add_edge(s0, s2);
    nfa.add_edge(s1, s3);
    nfa.add_edge(s2, s3);
    nfa
}

#[test]
fn figure1_walkthrough() {
    // The paper's walkthrough: with STE0 active and input 'C', the match
    // vector ANDed with the potential-next-state vector activates
    // {STE0, STE1} (column ordering in the figure differs from state
    // numbering). End to end, the language is A+ then (C|T) then G.
    let nfa = figure1_homogeneous();
    assert_eq!(
        run_trace(&nfa, b"ACG").unwrap().cycle_id_pairs(),
        vec![(2, 0)]
    );
    assert_eq!(
        run_trace(&nfa, b"AATG").unwrap().cycle_id_pairs(),
        vec![(3, 0)]
    );
    assert_eq!(
        run_trace(&nfa, b"AAACG").unwrap().cycle_id_pairs(),
        vec![(4, 0)]
    );
    assert!(run_trace(&nfa, b"AG").unwrap().events.is_empty());
    assert!(run_trace(&nfa, b"CG").unwrap().events.is_empty());
    // Four symbols ⇒ only four one-hot rows would be needed on hardware;
    // the 8-bit encoding still works identically.
}

#[test]
fn figure1_classic_to_homogeneous() {
    // Figure 1 (left) draws the same language as a classic NFA; the
    // conversion must accept the same strings.
    let mut classic = ClassicNfa::new(8, false);
    let q0 = classic.add_state();
    let q1 = classic.add_state();
    let q2 = classic.add_state();
    classic.mark_start(q0);
    classic.mark_accepting(q2, 0);
    classic.add_edge(q0, q0, sym(b'A'));
    classic.add_edge(q0, q1, sym(b'C'));
    classic.add_edge(q0, q1, sym(b'T'));
    classic.add_edge(q1, q2, sym(b'G'));
    let homog = classic.to_homogeneous();
    // The conversion needs one homogeneous state per incoming label class.
    assert!(homog.validate().is_ok());
    // Hmm: classic q0 self-loop on A requires q0's variant; C and T into
    // q1 share one variant each; G into q2.
    let t = |input: &[u8]| run_trace(&homog, input).unwrap().events.len();
    assert_eq!(t(b"ACG"), 1);
    assert_eq!(t(b"ATG"), 1);
    assert_eq!(t(b"AAACG"), 1);
    assert_eq!(t(b"AG"), 0);
}

/// Figure 3 (a): the 8-bit automaton accepting A|BC.
fn figure3_original() -> Nfa {
    let mut nfa = Nfa::new(8);
    let a = nfa.add_state(Ste::new(sym(b'A')).start(StartKind::StartOfData).report(0));
    let b = nfa.add_state(Ste::new(sym(b'B')).start(StartKind::StartOfData));
    let c = nfa.add_state(Ste::new(sym(b'C')).report(0));
    nfa.add_edge(b, c);
    let _ = a;
    nfa
}

#[test]
fn figure3_nibble_transformation() {
    // (b)/(c): FlexAmata merges the shared high-nibble prefix of A (0x41)
    // and B (0x42) — both have high nibble 0x4 — and splits on the low
    // nibble; C (0x43) gets its own chain.
    let nfa = figure3_original();
    let nib = to_nibble_automaton(&nfa).unwrap();
    assert_eq!(nib.symbol_bits(), 4);
    assert_eq!(nib.start_period(), 2);
    // A|B share one high-nibble start state after cross-state merging:
    // states = hi{4} (for A), lo{1}, hi{4} (for B), lo{2}, hi{4}+lo{3} for
    // C; global prefix merging collapses the identical hi states.
    assert!(
        nib.num_states() <= 6,
        "prefix merging should keep this small, got {}",
        nib.num_states()
    );

    // Language preserved.
    let positions = |input: &[u8]| {
        run_trace(&nib, input)
            .unwrap()
            .position_id_pairs(1)
            .into_iter()
            .map(|(p, _)| (p - 1) / 2)
            .collect::<Vec<u64>>()
    };
    assert_eq!(positions(b"A"), vec![0]);
    assert_eq!(positions(b"BC"), vec![1]);
    assert!(positions(b"BA").is_empty());
}

#[test]
fn figure3_temporal_striding_to_16_bit() {
    // (d): the 4-bit automaton strided to 16-bit processing consumes a
    // vector of four nibbles (= 2 bytes) per cycle.
    let nfa = figure3_original();
    let nib = to_nibble_automaton(&nfa).unwrap();
    let two = double_stride(&nib); // 8-bit: "A" fits one vector
    let four = double_stride(&two); // 16-bit: "BC" fits one vector
    assert_eq!(four.stride(), 4);
    assert_eq!(four.bits_per_cycle(), 16);

    let hits = |nfa: &Nfa, input: &[u8]| {
        run_trace(nfa, input)
            .unwrap()
            .position_id_pairs(nfa.stride())
    };
    // "BC" completes at nibble position 3 (cycle 0 of the 16-bit machine).
    assert_eq!(hits(&four, b"BC"), vec![(3, 0)]);
    // "A" completes at nibble position 1, mid-vector: only a Tail
    // composite with don't-care padding can report it.
    assert_eq!(hits(&four, b"AX"), vec![(1, 0)]);
    assert_eq!(hits(&four, b"A"), vec![(1, 0)]);
    assert!(hits(&four, b"XC").is_empty());
}
