//! Mutation smoke tests for the conformance oracle: deliberately corrupt
//! a transformed automaton and assert the checker catches every class of
//! injected bug. A conformance layer that cannot detect a planted
//! divergence is worse than none — these tests are the oracle's own
//! oracle.

use sunder::automata::regex::{compile_regex, compile_rule_set};
use sunder::automata::ReportInfo;
use sunder::oracle::check::check_workload;
use sunder::oracle::fuzz::{parse_reproducer, render_reproducer, run_fuzz, Failure, FuzzOptions};
use sunder::oracle::{
    check_pipelines, compare_transformed, oracle_trace, Divergence, PipelineConfig,
};
use sunder::sim::EngineKind;
use sunder::{Benchmark, Scale};

#[test]
fn clean_pipelines_conform() {
    let nfa = compile_rule_set(&["ab+c", "x[^a]y", "(ab|bc){2}"]).unwrap();
    check_pipelines(&nfa, b"abbc xby xay ababbcbc").unwrap();
}

#[test]
fn one_suite_workload_conforms_end_to_end() {
    // The full 19-benchmark sweep runs in the release-mode `conformance`
    // binary; one representative workload keeps debug test time bounded.
    let w = Benchmark::Bro217.build(Scale {
        state_fraction: 0.01,
        input_len: 1500,
    });
    check_workload(&w).unwrap();
}

/// Injected bug class 1: a report attached to a mid-symbol (high-nibble)
/// state. The checker must flag the misaligned position rather than
/// silently rounding it to an original symbol.
#[test]
fn detects_report_on_high_nibble_state() {
    let nfa = compile_regex("ab", 0).unwrap();
    let expected = oracle_trace(&nfa, b"abab").unwrap();
    let config = PipelineConfig::Nibble;
    let (mut transformed, map) = config.apply(&nfa).unwrap();

    // Find a state that never reports — in the nibble chain that is a
    // high-nibble state — and make it report.
    let victim = transformed
        .states()
        .find(|(_, s)| !s.is_reporting())
        .map(|(id, _)| id)
        .expect("nibble chains contain non-reporting states");
    transformed.state_mut(victim).add_report(ReportInfo::new(9));

    let err = compare_transformed(
        &expected,
        &transformed,
        map,
        config,
        EngineKind::Sparse,
        b"abab",
    )
    .unwrap_err();
    assert!(
        err.detail.contains("misaligned") || !err.spurious.is_empty(),
        "high-nibble report not caught: {err}"
    );
}

/// Injected bug class 2: a strided report offset shifted by one vector
/// lane — the exact mistake the striding transform's offset bookkeeping
/// guards against.
#[test]
fn detects_shifted_stride_offset() {
    let nfa = compile_regex("ab", 0).unwrap();
    let input = b"abab";
    let expected = oracle_trace(&nfa, input).unwrap();
    let config = PipelineConfig::Stride4;
    let (transformed, map) = config.apply(&nfa).unwrap();

    let mut caught = 0;
    for victim in transformed.report_states() {
        let mut mutant = transformed.clone();
        let reports: Vec<ReportInfo> = mutant.state(victim).reports().to_vec();
        mutant.state_mut(victim).clear_reports();
        for r in &reports {
            let shifted = if r.offset == 0 {
                r.offset + 1
            } else {
                r.offset - 1
            };
            mutant
                .state_mut(victim)
                .add_report(ReportInfo::at_offset(r.id, shifted));
        }
        for kind in EngineKind::ALL {
            if compare_transformed(&expected, &mutant, map, config, kind, input).is_err() {
                caught += 1;
            }
        }
    }
    assert!(caught > 0, "no engine caught any shifted report offset");
}

/// Injected bug class 3: dropped reports (a transform that loses a
/// reporting exit). The diff must list them as missing.
#[test]
fn detects_dropped_reports() {
    let nfa = compile_rule_set(&["abc", "bcd"]).unwrap();
    let input = b"abcd abcd";
    let expected = oracle_trace(&nfa, input).unwrap();
    let config = PipelineConfig::Stride2;
    let (mut transformed, map) = config.apply(&nfa).unwrap();

    for victim in transformed.report_states() {
        transformed.state_mut(victim).clear_reports();
    }
    let err = compare_transformed(
        &expected,
        &transformed,
        map,
        config,
        EngineKind::Dense,
        input,
    )
    .unwrap_err();
    assert_eq!(
        err.missing.len(),
        expected.len(),
        "all reports must be missing"
    );
    assert!(err.spurious.is_empty());
}

/// Injected bug class 4: a corrupted charset in the transformed automaton
/// (the nibble decomposition matching the wrong symbols), surfacing as
/// spurious and/or missing reports.
#[test]
fn detects_corrupted_charset() {
    let nfa = compile_regex("ab", 0).unwrap();
    let input = b"ab ax";
    let expected = oracle_trace(&nfa, input).unwrap();
    let config = PipelineConfig::Nibble;
    let (mut transformed, map) = config.apply(&nfa).unwrap();

    // Widen every charset to full: the mutant over-matches.
    let ids: Vec<_> = transformed.states().map(|(id, _)| id).collect();
    for id in ids {
        for cs in transformed.state_mut(id).charsets_mut() {
            *cs = sunder::SymbolSet::full(4);
        }
    }
    let err = compare_transformed(
        &expected,
        &transformed,
        map,
        config,
        EngineKind::Adaptive,
        input,
    )
    .unwrap_err();
    assert!(
        !err.spurious.is_empty(),
        "over-matching mutant not caught: {err}"
    );
}

/// The whole fuzz→shrink→reproduce loop on a planted divergence: the
/// checker wrapped by the fuzzer must catch a mutant automaton, and the
/// reproducer file must replay to the same verdict.
#[test]
fn reproducer_replays_to_same_verdict() {
    let (nfa, input) = {
        let nfa = compile_regex("abc", 2).unwrap();
        (nfa, b"abcabc".to_vec())
    };
    check_pipelines(&nfa, &input).unwrap();

    // Mutate the *original* automaton's report id after taking the
    // oracle trace of the unmutated one — equivalent to a transform that
    // renames report ids.
    let expected = oracle_trace(&nfa, &input).unwrap();
    let config = PipelineConfig::Identity;
    let (mut transformed, map) = config.apply(&nfa).unwrap();
    let victim = transformed.report_states()[0];
    transformed.state_mut(victim).clear_reports();
    transformed.state_mut(victim).add_report(ReportInfo::new(7));
    let divergence = compare_transformed(
        &expected,
        &transformed,
        map,
        config,
        EngineKind::Sparse,
        &input,
    )
    .unwrap_err();
    assert!(!divergence.missing.is_empty() && !divergence.spurious.is_empty());

    let failure = Failure {
        case: 0,
        nfa: transformed.clone(),
        input: input.clone(),
        divergence,
    };
    let text = render_reproducer(&failure);
    let (back_nfa, back_input) = parse_reproducer(&text).unwrap();
    assert_eq!(back_nfa, transformed);
    assert_eq!(back_input, input);
}

#[test]
fn fuzzer_smoke_runs_clean() {
    let outcome = run_fuzz(&FuzzOptions {
        seed: 7,
        cases: 25,
        ..FuzzOptions::default()
    });
    assert_eq!(outcome.cases, 25);
    assert!(
        outcome.failures.is_empty(),
        "pipeline divergence found by fuzzer: {}",
        outcome.failures[0].divergence
    );
}

#[test]
fn divergence_is_a_std_error() {
    fn assert_error<E: std::error::Error>() {}
    assert_error::<Divergence>();
}
