//! Wide-alphabet support: data-mining workloads like SPM have "millions of
//! unique symbols" (paper, Section 2.3), handled by encoding items as
//! 16-bit symbols. The nibble transformation turns each 16-bit state into
//! a depth-4 nibble chain; these tests verify the whole pipeline on 16-bit
//! automata, down to the cycle-level machine.

use sunder::automata::input::InputView;
use sunder::sim::{Simulator, TraceSink};
use sunder::transform::{stride_times, to_nibble_automaton};
use sunder::{Nfa, StartKind, StateId, Ste, SunderConfig, SunderMachine, SymbolSet};
use sunder_transform::Rate;

/// An itemset-mining style automaton: sequences of 16-bit "items".
/// Pattern i = item sequence; the tail reports.
fn itemset_nfa(patterns: &[&[u16]]) -> Nfa {
    let mut nfa = Nfa::new(16);
    for (pid, items) in patterns.iter().enumerate() {
        let mut prev: Option<StateId> = None;
        for (i, &item) in items.iter().enumerate() {
            let mut ste = Ste::new(SymbolSet::singleton(16, item));
            if i == 0 {
                ste = ste.start(StartKind::AllInput);
            }
            if i == items.len() - 1 {
                ste = ste.report(pid as u32);
            }
            let id = nfa.add_state(ste);
            if let Some(p) = prev {
                nfa.add_edge(p, id);
            }
            prev = Some(id);
        }
    }
    nfa
}

/// Encodes 16-bit items as big-endian byte pairs (the InputView layout).
fn encode(items: &[u16]) -> Vec<u8> {
    items.iter().flat_map(|i| i.to_be_bytes()).collect()
}

/// Report (item-index, rule) pairs from a run at any width/stride.
fn item_positions(nfa: &Nfa, bytes: &[u8]) -> Vec<(u64, u32)> {
    let view = InputView::new(bytes, nfa.symbol_bits(), nfa.stride()).unwrap();
    let mut sim = Simulator::new(nfa);
    let mut trace = TraceSink::new();
    sim.run(&view, &mut trace);
    trace
        .position_id_pairs(nfa.stride())
        .into_iter()
        .map(|(pos, id)| match nfa.symbol_bits() {
            16 => (pos, id),
            4 => {
                assert_eq!(pos % 4, 3, "16-bit reports land on the 4th nibble");
                ((pos - 3) / 4, id)
            }
            other => panic!("unexpected width {other}"),
        })
        .collect()
}

const ITEMS: [&[u16]; 3] = [
    &[0x0101, 0xBEEF],         // rule 0
    &[0xBEEF, 0xBEEF, 0x0300], // rule 1
    &[0xFFFF],                 // rule 2
];

fn stream() -> Vec<u8> {
    encode(&[
        0x0101, 0xBEEF, 0xBEEF, 0x0300, 0x7777, 0xFFFF, 0x0101, 0xBEEF,
    ])
}

#[test]
fn sixteen_bit_simulation_finds_itemsets() {
    let nfa = itemset_nfa(&ITEMS);
    let hits = item_positions(&nfa, &stream());
    assert_eq!(hits, vec![(1, 0), (3, 1), (5, 2), (7, 0)]);
}

#[test]
fn nibble_transform_of_16_bit_is_equivalent() {
    let nfa = itemset_nfa(&ITEMS);
    let nib = to_nibble_automaton(&nfa).unwrap();
    assert_eq!(nib.symbol_bits(), 4);
    assert_eq!(nib.start_period(), 4, "16-bit symbols = 4 nibbles");
    assert_eq!(
        item_positions(&nib, &stream()),
        item_positions(&nfa, &stream())
    );
    // Each 16-bit state needs ≤4 nibble states; shared item prefixes
    // (0xBEEF appears in two rules) keep it under the naive 4×.
    assert!(nib.num_states() <= 4 * nfa.num_states());
}

#[test]
fn strided_16_bit_automata_stay_equivalent() {
    let nfa = itemset_nfa(&ITEMS);
    let nib = to_nibble_automaton(&nfa).unwrap();
    let expected = item_positions(&nfa, &stream());
    for doublings in 1..=2 {
        let strided = stride_times(&nib, doublings);
        assert_eq!(strided.start_period(), 4 >> doublings);
        assert_eq!(
            item_positions(&strided, &stream()),
            expected,
            "{doublings} doublings"
        );
    }
}

#[test]
fn machine_executes_16_bit_itemsets() {
    let nfa = itemset_nfa(&ITEMS);
    let nib = to_nibble_automaton(&nfa).unwrap();
    let strided = stride_times(&nib, 2); // 4 nibbles/cycle = one item/cycle
    let mut machine = SunderMachine::new(&strided, SunderConfig::with_rate(Rate::Nibble4)).unwrap();
    let bytes = stream();
    let view = InputView::new(&bytes, 4, 4).unwrap();
    let mut trace = TraceSink::new();
    machine.run(&view, &mut trace);
    let rules: Vec<u32> = trace.events.iter().map(|e| e.info.id).collect();
    assert_eq!(rules, vec![0, 1, 2, 0]);
    assert_eq!(machine.stats().reporting_overhead(), 1.0);
}

#[test]
fn overlapping_items_across_pair_boundaries() {
    // An item sequence may match at any item offset (unanchored); verify
    // odd item positions work through striding.
    let nfa = itemset_nfa(&[&[0xAAAA, 0xBBBB]]);
    let bytes = encode(&[0x1111, 0xAAAA, 0xBBBB, 0xAAAA, 0xBBBB]);
    let nib = to_nibble_automaton(&nfa).unwrap();
    let expected = item_positions(&nfa, &bytes);
    assert_eq!(expected, vec![(2, 0), (4, 0)]);
    for doublings in 1..=2 {
        let strided = stride_times(&nib, doublings);
        assert_eq!(item_positions(&strided, &bytes), expected);
    }
}
