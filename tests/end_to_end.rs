//! Cross-crate integration: the full pipeline from byte patterns to the
//! cycle-level machine agrees with the functional simulator, at every
//! processing rate, on calibrated benchmark workloads.

use sunder::automata::regex::compile_rule_set;
use sunder::sim::{Simulator, TraceSink};
use sunder::transform::transform_to_rate;
use sunder::{Benchmark, Engine, InputView, Rate, Scale, SunderConfig, SunderMachine};

/// Byte-position report pairs from any (width, stride) run.
fn positions(nfa: &sunder::Nfa, input: &[u8]) -> Vec<(u64, u32)> {
    let view = InputView::new(input, nfa.symbol_bits(), nfa.stride()).unwrap();
    let mut sim = Simulator::new(nfa);
    let mut trace = TraceSink::new();
    sim.run(&view, &mut trace);
    trace
        .position_id_pairs(nfa.stride())
        .into_iter()
        .map(|(pos, id)| {
            if nfa.symbol_bits() == 4 {
                assert_eq!(pos % 2, 1, "nibble report at high-nibble position");
                ((pos - 1) / 2, id)
            } else {
                (pos, id)
            }
        })
        .collect()
}

#[test]
fn benchmark_pipeline_equivalence_at_all_rates() {
    // Tiny scales keep this under a second per benchmark while still
    // exercising triggers, hot classes, meshes, and dotstars.
    let scale = Scale {
        state_fraction: 0.01,
        input_len: 2_000,
    };
    for bench in [
        Benchmark::Bro217,
        Benchmark::Snort,
        Benchmark::Dotstar06,
        Benchmark::Hamming,
        Benchmark::Levenshtein,
        Benchmark::Spm,
    ] {
        let w = bench.build(scale);
        let expected = positions(&w.nfa, &w.input);
        for rate in Rate::ALL {
            let strided = transform_to_rate(&w.nfa, rate).unwrap();
            let got = positions(&strided, &w.input);
            assert_eq!(got, expected, "{bench} diverged at {rate}");
        }
    }
}

#[test]
fn machine_equals_simulator_on_benchmarks() {
    let scale = Scale {
        state_fraction: 0.01,
        input_len: 2_000,
    };
    for bench in [Benchmark::Snort, Benchmark::Brill, Benchmark::Ranges05] {
        let w = bench.build(scale);
        let strided = transform_to_rate(&w.nfa, Rate::Nibble4).unwrap();
        let view = InputView::new(&w.input, 4, 4).unwrap();

        let mut sim = Simulator::new(&strided);
        let mut sim_trace = TraceSink::new();
        sim.run(&view, &mut sim_trace);

        let config = SunderConfig::with_rate(Rate::Nibble4).fifo(true);
        let mut machine = SunderMachine::new(&strided, config).unwrap();
        let mut hw_trace = TraceSink::new();
        machine.run(&view, &mut hw_trace);

        let mut a = sim_trace.events;
        let mut b = hw_trace.events;
        a.sort();
        b.sort();
        assert_eq!(a, b, "{bench}: machine vs simulator");
    }
}

#[test]
fn engine_results_are_rate_invariant() {
    let rules = ["ab+c", ".*xyz[0-9]", "^hdr", "tail$?"];
    // '$?' is a literal here ('$' unsupported as anchor) — drop that rule.
    let rules = &rules[..3];
    let input = b"hdr abc abbbc zz xyz7 abc";
    let mut outcomes = Vec::new();
    for rate in Rate::ALL {
        let engine = Engine::builder().rate(rate).build();
        let program = engine.compile_patterns(rules).unwrap();
        let mut session = engine.load(&program).unwrap();
        let outcome = session.run(input).unwrap();
        outcomes.push((outcome.reports, outcome.matched_rules));
    }
    assert_eq!(outcomes[0], outcomes[1]);
    assert_eq!(outcomes[1], outcomes[2]);
    assert!(outcomes[0].0 >= 4);
}

#[test]
fn textual_format_round_trips_through_pipeline() {
    let rules = compile_rule_set(&["net[0-9]+", "host"]).unwrap();
    let text = sunder::automata::anml::serialize(&rules);
    let parsed = sunder::automata::anml::parse(&text).unwrap();
    assert_eq!(rules, parsed);

    // And the parsed automaton still runs through the whole stack.
    let engine = Engine::default();
    let program = engine.compile_nfa(&parsed).unwrap();
    let mut session = engine.load(&program).unwrap();
    let outcome = session.run(b"net42 on host").unwrap();
    assert_eq!(outcome.matched_rules.len(), 2);
}

#[test]
fn strided_serialization_round_trips() {
    let rules = compile_rule_set(&["abc[0-9]"]).unwrap();
    let strided = transform_to_rate(&rules, Rate::Nibble4).unwrap();
    let text = sunder::automata::anml::serialize(&strided);
    let parsed = sunder::automata::anml::parse(&text).unwrap();
    assert_eq!(strided, parsed);
}
