//! Engine equivalence over the full benchmark suite: the sparse, dense
//! bit-parallel, and adaptive engines must produce byte-identical report
//! traces on every suite workload. This is the correctness gate behind
//! the adaptive selector — switching representation mid-stream must never
//! change what is reported, or when.

use sunder::sim::{EngineKind, TraceSink};
use sunder::{Benchmark, InputView, Scale};

/// Small enough to keep the 19 x 3 sweep in test time, large enough to
/// exercise start-period gating, padding, and mid-stream frontier
/// hand-over in the adaptive engine.
const TEST_SCALE: Scale = Scale {
    state_fraction: 0.02,
    input_len: 4096,
};

#[test]
fn engines_agree_on_all_suite_benchmarks() {
    for bench in Benchmark::ALL {
        let w = bench.build(TEST_SCALE);
        let input = InputView::new(&w.input, 8, 1).expect("byte view");

        let mut reference = None;
        for kind in EngineKind::ALL {
            let mut engine = kind.build(&w.nfa);
            let mut sink = TraceSink::new();
            engine.run(&input, &mut sink);
            match &reference {
                None => reference = Some((kind, sink.events)),
                Some((ref_kind, ref_events)) => assert_eq!(
                    ref_events,
                    &sink.events,
                    "{:?} and {:?} diverged on benchmark {}",
                    ref_kind,
                    kind,
                    bench.name()
                ),
            }
        }
        let (_, events) = reference.expect("at least one engine ran");
        assert!(
            events.iter().all(|e| (e.cycle as usize) < w.input.len()),
            "reports past end of input on {}",
            bench.name()
        );
    }
}

/// The adaptive engine must also agree when driven cycle-by-cycle through
/// the `step` API (the suite above uses the batched `run` path).
#[test]
fn adaptive_step_api_matches_run() {
    let bench = Benchmark::Dotstar03;
    let w = bench.build(TEST_SCALE);
    let input = InputView::new(&w.input, 8, 1).expect("byte view");

    let mut run_sink = TraceSink::new();
    EngineKind::Adaptive
        .build(&w.nfa)
        .run(&input, &mut run_sink);

    let mut engine = EngineKind::Adaptive.build(&w.nfa);
    let mut step_sink = TraceSink::new();
    for v in input.iter_ref() {
        engine.step(v.symbols, v.valid, &mut step_sink);
    }
    assert_eq!(run_sink.events, step_sink.events);
}
