//! Property-based tests: for arbitrary homogeneous NFAs and inputs, every
//! stage of the pipeline — nibble transformation, temporal striding, and
//! the cycle-level machine — produces exactly the byte automaton's report
//! stream.

use proptest::prelude::*;

use sunder::sim::{Simulator, TraceSink};
use sunder::transform::{transform_to_rate, Rate};
use sunder::{InputView, Nfa, StartKind, StateId, Ste, SunderConfig, SunderMachine, SymbolSet};

/// A compact description of a random automaton.
#[derive(Debug, Clone)]
struct NfaSpec {
    states: Vec<(u8, u8, u8, bool)>, // (charset kind, lo byte, span, report)
    starts: Vec<(u8, bool)>,         // (state index, anchored)
    edges: Vec<(u8, u8)>,
}

/// Alphabet slice used by random charsets and inputs — small enough that
/// matches actually happen.
const ALPHA_LO: u8 = b'a';
const ALPHA_SPAN: u8 = 6;

fn build_nfa(spec: &NfaSpec) -> Nfa {
    let n = spec.states.len();
    let mut nfa = Nfa::new(8);
    for (i, &(kind, lo, span, report)) in spec.states.iter().enumerate() {
        let lo = ALPHA_LO + lo % ALPHA_SPAN;
        let charset = match kind % 3 {
            0 => SymbolSet::singleton(8, u16::from(lo)),
            1 => SymbolSet::range(
                8,
                u16::from(lo),
                u16::from((lo + span % ALPHA_SPAN).min(ALPHA_LO + ALPHA_SPAN - 1)),
            ),
            _ => SymbolSet::full(8),
        };
        let mut ste = Ste::new(charset);
        if report {
            ste = ste.report(i as u32);
        }
        nfa.add_state(ste);
    }
    for &(s, anchored) in &spec.starts {
        let id = StateId(u32::from(s) % n as u32);
        nfa.state_mut(id).set_start_kind(if anchored {
            StartKind::StartOfData
        } else {
            StartKind::AllInput
        });
    }
    for &(a, b) in &spec.edges {
        nfa.add_edge(
            StateId(u32::from(a) % n as u32),
            StateId(u32::from(b) % n as u32),
        );
    }
    nfa
}

fn nfa_spec() -> impl Strategy<Value = NfaSpec> {
    let states = prop::collection::vec(
        (
            any::<u8>(),
            any::<u8>(),
            any::<u8>(),
            prop::bool::weighted(0.35),
        ),
        1..10,
    );
    let starts = prop::collection::vec((any::<u8>(), prop::bool::weighted(0.2)), 1..4);
    let edges = prop::collection::vec((any::<u8>(), any::<u8>()), 0..18);
    (states, starts, edges).prop_map(|(states, starts, edges)| NfaSpec {
        states,
        starts,
        edges,
    })
}

fn input_bytes() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(ALPHA_LO..ALPHA_LO + ALPHA_SPAN, 0..48)
}

/// Byte-position report set of a run at any width/stride.
fn positions(nfa: &Nfa, input: &[u8]) -> Vec<(u64, u32)> {
    let view = InputView::new(input, nfa.symbol_bits(), nfa.stride()).unwrap();
    let mut sim = Simulator::new(nfa);
    let mut trace = TraceSink::new();
    sim.run(&view, &mut trace);
    trace
        .position_id_pairs(nfa.stride())
        .into_iter()
        .map(|(pos, id)| {
            if nfa.symbol_bits() == 4 {
                ((pos - 1) / 2, id)
            } else {
                (pos, id)
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn transformation_preserves_reports(spec in nfa_spec(), input in input_bytes()) {
        let nfa = build_nfa(&spec);
        prop_assume!(nfa.validate().is_ok());
        let expected = positions(&nfa, &input);
        for rate in Rate::ALL {
            let strided = transform_to_rate(&nfa, rate).unwrap();
            prop_assert!(strided.validate().is_ok());
            let got = positions(&strided, &input);
            prop_assert_eq!(&got, &expected, "rate {}", rate);
        }
    }

    #[test]
    fn machine_matches_simulator(spec in nfa_spec(), input in input_bytes()) {
        let nfa = build_nfa(&spec);
        let strided = transform_to_rate(&nfa, Rate::Nibble4).unwrap();
        prop_assume!(strided.num_states() > 0);
        let view = InputView::new(&input, 4, 4).unwrap();

        let mut sim = Simulator::new(&strided);
        let mut sim_trace = TraceSink::new();
        sim.run(&view, &mut sim_trace);

        let mut machine =
            SunderMachine::new(&strided, SunderConfig::with_rate(Rate::Nibble4)).unwrap();
        let mut hw_trace = TraceSink::new();
        machine.run(&view, &mut hw_trace);

        let mut a = sim_trace.events;
        let mut b = hw_trace.events;
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn minimization_is_semantics_preserving(spec in nfa_spec(), input in input_bytes()) {
        let nfa = build_nfa(&spec);
        let mut minimized = nfa.clone();
        sunder::automata::minimize::merge_equivalent_states(&mut minimized);
        prop_assert!(minimized.validate().is_ok());
        prop_assert!(minimized.num_states() <= nfa.num_states());
        prop_assert_eq!(positions(&minimized, &input), positions(&nfa, &input));
    }

    #[test]
    fn dfa_agrees_with_nfa(spec in nfa_spec(), input in input_bytes()) {
        let nfa = build_nfa(&spec);
        // Reports must be deduplicated per (cycle, id): several NFA states
        // with the same report id collapse into one DFA report.
        let mut expected: Vec<(u64, u32)> = {
            let view = InputView::new(&input, 8, 1).unwrap();
            let mut sim = Simulator::new(&nfa);
            let mut trace = TraceSink::new();
            sim.run(&view, &mut trace);
            trace.events.iter().map(|e| (e.cycle, e.info.id)).collect()
        };
        expected.sort_unstable();
        expected.dedup();
        if let Ok(dfa) = sunder::automata::dfa::Dfa::determinize(&nfa, 1 << 14) {
            let mut got = dfa.scan(&input).unwrap();
            got.sort_unstable();
            prop_assert_eq!(got, expected);
        }
    }

    #[test]
    fn serialization_round_trips(spec in nfa_spec()) {
        let nfa = build_nfa(&spec);
        let text = sunder::automata::anml::serialize(&nfa);
        let parsed = sunder::automata::anml::parse(&text).unwrap();
        prop_assert_eq!(nfa, parsed);
    }
}
